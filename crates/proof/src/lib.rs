//! # atropos-proof
//!
//! An independent RUP/DRAT certificate checker plus a checksummed binary
//! proof format.
//!
//! Every clean verdict the detector emits rests on UNSAT answers from the
//! workspace's own CDCL solver (`atropos_sat`). This crate closes that
//! trust gap: the solver logs DRAT-style events while it runs, the detect
//! layer assembles them into self-contained certificates, and this crate
//! re-verifies each certificate by **reverse unit propagation** — a
//! deliberately separate implementation that shares no code (not even the
//! literal type) with the solver. Literals here are DIMACS-style `i32`s:
//! variable `v` is `v` (positive) or `-v` (negated), never `0`.
//!
//! A certificate is a sequence of [`Step`]s:
//!
//! * [`Step::Input`] — an original problem clause. The inputs embedded in
//!   the certificate *are* the CNF being refuted, making the blob
//!   self-contained (checkable without re-running the encoder).
//! * [`Step::Add`] — a deduced clause. The checker verifies it is RUP:
//!   asserting the negation of every literal and unit-propagating over
//!   the live clause database must yield a conflict.
//! * [`Step::Delete`] — a clause leaving the database. Deletions the
//!   checker cannot match (or that would drop a unit) are ignored —
//!   the lax drat-trim convention; soundness is unaffected because every
//!   database clause is implied by the inputs.
//! * [`Step::Assume`] — one query assumption, installed as a permanent
//!   unit. Assumptions certify `CNF ∧ assumptions ⊢ ⊥`; steps before the
//!   first `Assume` are checked against the CNF alone.
//!
//! A certificate is **accepted** ([`check`]) when every `Add` passes its
//! RUP check and some `Add` is the empty clause (the explicit ⊥ the
//! derivation must reach). The binary format ([`Proof::encode`]) carries
//! a magic header and a trailing FNV-1a checksum so corrupted blobs are
//! rejected before checking begins ([`Proof::decode`]).

#![warn(missing_docs)]

use std::collections::HashMap;

/// One step of a proof certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// An original problem clause (DIMACS literals).
    Input(Vec<i32>),
    /// A deduced clause; must be RUP over the live database.
    Add(Vec<i32>),
    /// A clause removed from the database.
    Delete(Vec<i32>),
    /// A query assumption, installed as a permanent unit.
    Assume(i32),
}

/// A proof certificate: an ordered list of steps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Proof {
    /// The steps, in emission order.
    pub steps: Vec<Step>,
}

/// Why a blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The blob is shorter than the fixed header + checksum.
    Truncated,
    /// The magic header does not match [`MAGIC`].
    BadMagic,
    /// The trailing FNV-1a checksum does not match the payload.
    BadChecksum,
    /// A step tag, length, or literal is malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "proof blob truncated"),
            DecodeError::BadMagic => write!(f, "bad proof magic"),
            DecodeError::BadChecksum => write!(f, "proof checksum mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed proof: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a decoded certificate was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// An `Add` step failed its reverse-unit-propagation check.
    NotRup {
        /// Index of the offending step.
        step: usize,
    },
    /// The proof never derives the empty clause.
    NoEmptyClause,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotRup { step } => write!(f, "step {step} is not RUP"),
            CheckError::NoEmptyClause => write!(f, "proof does not derive the empty clause"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Statistics of one accepted certificate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Steps processed.
    pub steps: usize,
    /// Input clauses loaded.
    pub inputs: usize,
    /// Deduced clauses RUP-verified.
    pub rup_checks: usize,
    /// Deletions honoured (matched in the database).
    pub deletions: usize,
    /// Assumptions installed.
    pub assumptions: usize,
}

/// Magic header of the binary proof format (`ATRPF`, version 1).
pub const MAGIC: &[u8; 8] = b"ATRPF\x01\0\0";

const TAG_INPUT: u8 = 0;
const TAG_ADD: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_ASSUME: u8 = 3;

/// The checksum of the binary format: FNV-1a folded over little-endian
/// `u64` words (then the remainder bytes) instead of single bytes, so
/// checksumming stays a negligible slice of certificate production even
/// for multi-megabyte proofs. Any single flipped byte still lands in
/// exactly one folded word, so corruption detection is preserved.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Plain byte-wise 64-bit FNV-1a — the hash behind [`proof_hash`]. Kept
/// dependency-free on purpose: this crate must stay independent of the
/// solver stack it audits.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fingerprint of an encoded certificate, stored next to cached
/// verdicts so reports can name a proof without embedding it twice.
pub fn proof_hash(blob: &[u8]) -> u64 {
    fnv1a(blob)
}

/// Appends one step's wire encoding (`tag u8, len u32, len × i32`, all
/// little-endian) to `out`.
fn encode_step(out: &mut Vec<u8>, step: &Step) {
    let (tag, lits): (u8, &[i32]) = match step {
        Step::Input(l) => (TAG_INPUT, l),
        Step::Add(l) => (TAG_ADD, l),
        Step::Delete(l) => (TAG_DELETE, l),
        Step::Assume(a) => (TAG_ASSUME, std::slice::from_ref(a)),
    };
    out.push(tag);
    out.extend_from_slice(&(lits.len() as u32).to_le_bytes());
    for &l in lits {
        out.extend_from_slice(&l.to_le_bytes());
    }
}

/// An incremental certificate encoder for producers whose step prefix
/// grows monotonically across many certificates — a solver's cumulative
/// proof log, snapshotted at each UNSAT answer. Steps are encoded once,
/// when pushed; [`ProofWriter::snapshot_with`] then assembles a complete
/// blob (byte-identical to [`Proof::encode`] over the same steps) without
/// re-encoding the shared prefix.
#[derive(Debug, Clone, Default)]
pub struct ProofWriter {
    /// Encoded step section (no header, no checksum).
    body: Vec<u8>,
    /// Steps encoded into `body`.
    steps: u32,
}

impl ProofWriter {
    /// An empty writer.
    pub fn new() -> ProofWriter {
        ProofWriter::default()
    }

    /// Appends one step to the retained prefix.
    pub fn push(&mut self, step: &Step) {
        encode_step(&mut self.body, step);
        self.steps += 1;
    }

    /// Appends an input-clause step without materializing a [`Step`].
    pub fn push_input<I: IntoIterator<Item = i32>>(&mut self, lits: I) {
        self.push_tagged(TAG_INPUT, lits);
    }

    /// Appends a deduced-clause step without materializing a [`Step`].
    pub fn push_add<I: IntoIterator<Item = i32>>(&mut self, lits: I) {
        self.push_tagged(TAG_ADD, lits);
    }

    /// Appends a deletion step without materializing a [`Step`].
    pub fn push_delete<I: IntoIterator<Item = i32>>(&mut self, lits: I) {
        self.push_tagged(TAG_DELETE, lits);
    }

    /// Encodes `tag, len u32, lits` in place, backpatching the length
    /// once the iterator is drained.
    fn push_tagged<I: IntoIterator<Item = i32>>(&mut self, tag: u8, lits: I) {
        self.body.push(tag);
        let at = self.body.len();
        self.body.extend_from_slice(&0u32.to_le_bytes());
        let mut n = 0u32;
        for l in lits {
            self.body.extend_from_slice(&l.to_le_bytes());
            n += 1;
        }
        self.body[at..at + 4].copy_from_slice(&n.to_le_bytes());
        self.steps += 1;
    }

    /// Steps pushed so far.
    pub fn len(&self) -> usize {
        self.steps as usize
    }

    /// True when no step has been pushed.
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// Assembles a complete encoded certificate: the retained prefix plus
    /// `trailer` (not retained), headed and checksummed like
    /// [`Proof::encode`].
    pub fn snapshot_with(&self, trailer: &[Step]) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.body.len() + trailer.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.steps + trailer.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
        for step in trailer {
            encode_step(&mut out, step);
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

impl Proof {
    /// Serializes the certificate: [`MAGIC`], a `u32` step count, each
    /// step as `tag u8, len u32, len × i32` (all little-endian), and a
    /// trailing FNV-1a checksum of everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.steps.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.steps.len() as u32).to_le_bytes());
        for step in &self.steps {
            encode_step(&mut out, step);
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and validates a blob produced by [`Proof::encode`].
    ///
    /// # Errors
    ///
    /// Rejects wrong magic, checksum mismatches (any corrupted payload
    /// byte), truncation, unknown tags, zero literals, and trailing bytes.
    pub fn decode(blob: &[u8]) -> Result<Proof, DecodeError> {
        if blob.len() < MAGIC.len() + 4 + 8 {
            return Err(DecodeError::Truncated);
        }
        if &blob[..MAGIC.len()] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let (payload, sum_bytes) = blob.split_at(blob.len() - 8);
        let declared = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if checksum(payload) != declared {
            return Err(DecodeError::BadChecksum);
        }
        let mut pos = MAGIC.len();
        let take_u32 = |pos: &mut usize| -> Result<u32, DecodeError> {
            let bytes = payload
                .get(*pos..*pos + 4)
                .ok_or(DecodeError::Truncated)?;
            *pos += 4;
            Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
        };
        let count = take_u32(&mut pos)? as usize;
        let mut steps = Vec::with_capacity(count.min(payload.len() / 5));
        for _ in 0..count {
            let tag = *payload.get(pos).ok_or(DecodeError::Truncated)?;
            pos += 1;
            let len = take_u32(&mut pos)? as usize;
            let mut lits = Vec::with_capacity(len);
            for _ in 0..len {
                let l = take_u32(&mut pos)? as i32;
                if l == 0 {
                    return Err(DecodeError::Malformed("zero literal"));
                }
                lits.push(l);
            }
            steps.push(match tag {
                TAG_INPUT => Step::Input(lits),
                TAG_ADD => Step::Add(lits),
                TAG_DELETE => Step::Delete(lits),
                TAG_ASSUME => {
                    if lits.len() != 1 {
                        return Err(DecodeError::Malformed("assume arity"));
                    }
                    Step::Assume(lits[0])
                }
                _ => return Err(DecodeError::Malformed("unknown tag")),
            });
        }
        if pos != payload.len() {
            return Err(DecodeError::Malformed("trailing bytes"));
        }
        Ok(Proof { steps })
    }
}

/// Decodes and checks a blob in one call — the corpus salvage path and the
/// test harnesses' entry point.
///
/// # Errors
///
/// Returns the decode error or the check rejection, stringified (callers
/// only branch on accept/reject; the message is for diagnostics).
pub fn check_blob(blob: &[u8]) -> Result<CheckReport, String> {
    let proof = Proof::decode(blob).map_err(|e| e.to_string())?;
    check(&proof).map_err(|e| e.to_string())
}

/// Verifies a certificate by reverse unit propagation.
///
/// # Errors
///
/// Rejects the first `Add` step that is not RUP over the live database,
/// and certificates that never add the empty clause.
pub fn check(proof: &Proof) -> Result<CheckReport, CheckError> {
    let mut db = Db::default();
    let mut report = CheckReport::default();
    let mut empty_added = false;
    for (idx, step) in proof.steps.iter().enumerate() {
        report.steps += 1;
        match step {
            Step::Input(lits) => {
                report.inputs += 1;
                db.add_clause(lits);
            }
            Step::Add(lits) => {
                if !db.rup(lits) {
                    return Err(CheckError::NotRup { step: idx });
                }
                report.rup_checks += 1;
                if lits.is_empty() {
                    empty_added = true;
                } else {
                    db.add_clause(lits);
                }
            }
            Step::Delete(lits) => {
                report.deletions += usize::from(db.delete_clause(lits));
            }
            Step::Assume(a) => {
                report.assumptions += 1;
                db.assume(*a);
            }
        }
    }
    if empty_added {
        Ok(report)
    } else {
        Err(CheckError::NoEmptyClause)
    }
}

/// Truth value of a literal under the current assignment.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Undef,
    True,
    False,
}

/// The checker's clause database: two-watched-literal unit propagation
/// with a persistent root trail (inputs, deduced units, assumptions) and
/// rollback-able scratch assignments for RUP checks.
#[derive(Default)]
struct Db {
    /// `None` = deleted. Clauses are stored normalized (sorted, deduped).
    clauses: Vec<Option<Vec<i32>>>,
    /// Live clause indices by normalized content, for deletion matching.
    by_content: HashMap<Vec<i32>, Vec<usize>>,
    /// Watch lists indexed by watched-literal encoding; entries may be
    /// stale (deleted or re-watched clauses) and are dropped on traversal.
    watches: Vec<Vec<usize>>,
    /// Assignment per variable index (1-based DIMACS variables).
    assign: Vec<Val>,
    trail: Vec<i32>,
    prop_head: usize,
    /// A conflict reached by *persistent* propagation (root or assumption
    /// level) — the formula plus assumptions is refuted from here on.
    conflict: bool,
}

fn widx(l: i32) -> usize {
    let v = l.unsigned_abs() as usize;
    2 * v + usize::from(l < 0)
}

impl Db {
    fn ensure_var(&mut self, l: i32) {
        let v = l.unsigned_abs() as usize;
        if self.assign.len() <= v {
            self.assign.resize(v + 1, Val::Undef);
        }
        let w = widx(l).max(widx(-l));
        if self.watches.len() <= w {
            self.watches.resize_with(w + 1, Vec::new);
        }
    }

    fn val(&self, l: i32) -> Val {
        match self.assign[l.unsigned_abs() as usize] {
            Val::Undef => Val::Undef,
            Val::True => {
                if l > 0 {
                    Val::True
                } else {
                    Val::False
                }
            }
            Val::False => {
                if l > 0 {
                    Val::False
                } else {
                    Val::True
                }
            }
        }
    }

    /// Pushes `l` as true. Caller guarantees `l` is currently undefined.
    fn push(&mut self, l: i32) {
        self.assign[l.unsigned_abs() as usize] = if l > 0 { Val::True } else { Val::False };
        self.trail.push(l);
    }

    /// Propagates from the current head; returns `false` on conflict (the
    /// head is left where the conflict was found).
    fn propagate(&mut self) -> bool {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            // Clauses watching ¬p may have become unit or false.
            let mut ws = std::mem::take(&mut self.watches[widx(-p)]);
            let mut keep = 0;
            let mut conflict = false;
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                i += 1;
                if conflict {
                    // Keep un-traversed entries verbatim so the watch
                    // lists survive the rolled-back scratch conflict.
                    ws[keep] = ci;
                    keep += 1;
                    continue;
                }
                let Some(clause) = self.clauses[ci].as_ref() else {
                    continue; // stale entry for a deleted clause
                };
                // Find a replacement watch: a non-false literal other
                // than the two current watches (positions 0 and 1 by the
                // convention below).
                let (w0, w1) = (clause[0], clause[1]);
                let other = if w0 == -p { w1 } else { w0 };
                if self.val(other) == Val::True {
                    ws[keep] = ci;
                    keep += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..clause.len() {
                    if self.val(clause[k]) != Val::False {
                        let clause = self.clauses[ci].as_mut().expect("live");
                        let new_watch = clause[k];
                        // Keep watches at positions 0/1.
                        if clause[0] == -p {
                            clause.swap(0, k);
                        } else {
                            clause.swap(1, k);
                        }
                        self.watches[widx(new_watch)].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // No replacement: the clause is unit (other) or false.
                ws[keep] = ci;
                keep += 1;
                match self.val(other) {
                    Val::Undef => self.push(other),
                    Val::False => conflict = true,
                    Val::True => {}
                }
            }
            ws.truncate(keep);
            self.watches[widx(-p)] = ws;
            if conflict {
                return false;
            }
        }
        true
    }

    /// Installs a normalized clause and performs persistent propagation
    /// of any resulting units. Empty or all-false clauses set the
    /// persistent conflict flag.
    fn add_clause(&mut self, lits: &[i32]) {
        let Some(norm) = normalize(lits) else {
            return; // tautology: never propagates, safe to skip
        };
        for &l in &norm {
            self.ensure_var(l);
        }
        if self.conflict {
            return;
        }
        // Order a clause so the two most-assignable literals lead: true
        // or undefined literals first — required for the watch invariant
        // under the already-established persistent assignment.
        let mut clause = norm.clone();
        clause.sort_by_key(|&l| match self.val(l) {
            Val::True | Val::Undef => 0,
            Val::False => 1,
        });
        match clause.len() {
            0 => {
                self.conflict = true;
            }
            1 => match self.val(clause[0]) {
                Val::False => {
                    self.conflict = true;
                }
                Val::Undef => {
                    self.push(clause[0]);
                    self.conflict = !self.propagate();
                }
                Val::True => {}
            },
            _ => {
                if self.val(clause[0]) == Val::False {
                    // Every literal false under the persistent trail.
                    self.conflict = true;
                    return;
                }
                if self.val(clause[1]) == Val::False && self.val(clause[0]) == Val::Undef {
                    // Unit under the persistent trail: propagate now;
                    // the watches stay valid because clause[1..] are all
                    // false only while clause[0] is true.
                    self.push(clause[0]);
                }
                let ci = self.clauses.len();
                self.watches[widx(clause[0])].push(ci);
                self.watches[widx(clause[1])].push(ci);
                self.clauses.push(Some(clause));
                self.by_content.entry(norm).or_default().push(ci);
                if !self.propagate() {
                    self.conflict = true;
                }
            }
        }
    }

    /// Deletes one clause matching `lits` (normalized). Unit and empty
    /// deletions are ignored (drat-trim convention — they may be reasons
    /// of the persistent trail). Returns whether a clause was removed.
    fn delete_clause(&mut self, lits: &[i32]) -> bool {
        let Some(norm) = normalize(lits) else {
            return false;
        };
        if norm.len() < 2 {
            return false;
        }
        let Some(indices) = self.by_content.get_mut(&norm) else {
            return false;
        };
        let Some(ci) = indices.pop() else {
            return false;
        };
        if indices.is_empty() {
            self.by_content.remove(&norm);
        }
        self.clauses[ci] = None; // watch entries go stale; dropped lazily
        true
    }

    /// Installs a query assumption as a permanent unit (no clause).
    fn assume(&mut self, a: i32) {
        self.ensure_var(a);
        if self.conflict {
            return;
        }
        match self.val(a) {
            Val::False => self.conflict = true,
            Val::True => {}
            Val::Undef => {
                self.push(a);
                self.conflict = !self.propagate();
            }
        }
    }

    /// Reverse-unit-propagation check: asserting the negation of every
    /// literal of `lits` on top of the persistent trail must conflict.
    /// Scratch assignments are rolled back; persistent state (including
    /// watch positions, which stay valid under un-assignment) survives.
    fn rup(&mut self, lits: &[i32]) -> bool {
        if self.conflict {
            return true; // ⊥ already derived; anything follows
        }
        let Some(norm) = normalize(lits) else {
            return true; // tautologies are trivially implied
        };
        for &l in &norm {
            self.ensure_var(l);
        }
        let mark = self.trail.len();
        let mut proved = false;
        for &l in &norm {
            match self.val(l) {
                Val::True => {
                    proved = true; // ¬l contradicts the trail immediately
                    break;
                }
                Val::False => {}
                Val::Undef => self.push(-l),
            }
        }
        if !proved {
            proved = !self.propagate();
        }
        // Roll back the scratch assignments.
        for &l in &self.trail[mark..] {
            self.assign[l.unsigned_abs() as usize] = Val::Undef;
        }
        self.trail.truncate(mark);
        self.prop_head = mark;
        proved
    }
}

/// Sorts by variable then sign, dedups; `None` for tautologies.
fn normalize(lits: &[i32]) -> Option<Vec<i32>> {
    let mut v = lits.to_vec();
    v.sort_unstable_by_key(|&l| (l.unsigned_abs(), l < 0));
    v.dedup();
    for w in v.windows(2) {
        if w[0] == -w[1] {
            return None;
        }
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepts(steps: Vec<Step>) -> bool {
        check(&Proof { steps }).is_ok()
    }

    #[test]
    fn trivial_contradiction_checks() {
        assert!(accepts(vec![
            Step::Input(vec![1]),
            Step::Input(vec![-1]),
            Step::Add(vec![]),
        ]));
    }

    #[test]
    fn resolution_chain_checks() {
        // (1 2)(1 -2)(-1 2)(-1 -2) refuted via RUP lemmas 1 and the
        // empty clause.
        assert!(accepts(vec![
            Step::Input(vec![1, 2]),
            Step::Input(vec![1, -2]),
            Step::Input(vec![-1, 2]),
            Step::Input(vec![-1, -2]),
            Step::Add(vec![1]),
            Step::Add(vec![]),
        ]));
    }

    #[test]
    fn non_rup_lemma_is_rejected() {
        let r = check(&Proof {
            steps: vec![
                Step::Input(vec![1, 2]),
                Step::Add(vec![1]), // not implied by (1 ∨ 2)
                Step::Add(vec![]),
            ],
        });
        assert_eq!(r, Err(CheckError::NotRup { step: 1 }));
    }

    #[test]
    fn missing_empty_clause_is_rejected() {
        let r = check(&Proof {
            steps: vec![
                Step::Input(vec![1]),
                Step::Input(vec![-1]),
                // conflict is derivable, but never claimed
            ],
        });
        assert_eq!(r, Err(CheckError::NoEmptyClause));
    }

    #[test]
    fn early_empty_clause_is_rejected() {
        let r = check(&Proof {
            steps: vec![
                Step::Add(vec![]),
                Step::Input(vec![1]),
                Step::Input(vec![-1]),
            ],
        });
        assert_eq!(r, Err(CheckError::NotRup { step: 0 }));
    }

    #[test]
    fn assumptions_scope_the_refutation() {
        // (−1 ∨ 2) is satisfiable; under assumptions 1 and −2 it is not.
        assert!(accepts(vec![
            Step::Input(vec![-1, 2]),
            Step::Assume(1),
            Step::Assume(-2),
            Step::Add(vec![]),
        ]));
        // Without the assumptions the same proof must fail.
        assert!(!accepts(vec![Step::Input(vec![-1, 2]), Step::Add(vec![])]));
    }

    #[test]
    fn failed_core_clause_checks_before_assumptions() {
        // The detect-layer trailer shape: Add(¬core) is RUP over the CNF
        // alone, then the core literals are assumed, then ⊥.
        assert!(accepts(vec![
            Step::Input(vec![-1, -2]),
            Step::Add(vec![-1, -2]), // ¬core, trivially RUP (subsumed)
            Step::Assume(1),
            Step::Assume(2),
            Step::Add(vec![]),
        ]));
    }

    #[test]
    fn deletion_of_a_needed_clause_breaks_later_rup() {
        // Neither binary clause propagates at root, so the deletion is
        // the only difference between the two runs. (Consequences already
        // on the persistent trail are *not* retracted by deletions — the
        // drat-trim convention.)
        assert!(accepts(vec![
            Step::Input(vec![1, 2]),
            Step::Input(vec![1, -2]),
            Step::Add(vec![1]),
            Step::Input(vec![-1]),
            Step::Add(vec![]),
        ]));
        assert_eq!(
            check(&Proof {
                steps: vec![
                    Step::Input(vec![1, 2]),
                    Step::Input(vec![1, -2]),
                    Step::Delete(vec![1, 2]),
                    Step::Add(vec![1]), // no longer derivable
                    Step::Input(vec![-1]),
                    Step::Add(vec![]),
                ],
            }),
            Err(CheckError::NotRup { step: 3 })
        );
    }

    #[test]
    fn unmatched_and_unit_deletions_are_ignored() {
        assert!(accepts(vec![
            Step::Input(vec![1]),
            Step::Delete(vec![1]),     // unit: ignored
            Step::Delete(vec![5, 6]),  // never added: ignored
            Step::Input(vec![-1]),
            Step::Add(vec![]),
        ]));
    }

    #[test]
    fn tautologies_are_inert() {
        assert!(accepts(vec![
            Step::Input(vec![1, -1]),
            Step::Add(vec![2, -2]),
            Step::Input(vec![1]),
            Step::Input(vec![-1]),
            Step::Add(vec![]),
        ]));
    }

    #[test]
    fn encode_decode_round_trips() {
        let proof = Proof {
            steps: vec![
                Step::Input(vec![1, -2, 3]),
                Step::Add(vec![-3]),
                Step::Delete(vec![1, -2, 3]),
                Step::Assume(2),
                Step::Add(vec![]),
            ],
        };
        let blob = proof.encode();
        assert_eq!(Proof::decode(&blob).unwrap(), proof);
        assert_eq!(proof_hash(&blob), fnv1a(&blob));
    }

    #[test]
    fn corrupted_blob_is_rejected() {
        let blob = Proof {
            steps: vec![Step::Input(vec![1]), Step::Add(vec![])],
        }
        .encode();
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(Proof::decode(&bad).is_err(), "flipped byte {i} accepted");
        }
        let mut truncated = blob.clone();
        truncated.pop();
        assert!(Proof::decode(&truncated).is_err());
    }

    #[test]
    fn zero_literal_is_malformed() {
        // Hand-build a payload with a zero literal and a valid checksum.
        let mut payload = MAGIC.to_vec();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(TAG_INPUT);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0i32.to_le_bytes());
        let sum = checksum(&payload);
        payload.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Proof::decode(&payload),
            Err(DecodeError::Malformed("zero literal"))
        );
    }
}
