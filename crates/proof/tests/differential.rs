//! Differential fuzz of the certificate pipeline: random CNFs are solved
//! by both the arena solver and the retained reference implementation with
//! proof logging on; every UNSAT verdict must yield a certificate this
//! crate's independent checker accepts, and mutated certificates
//! (corrupted bytes, a dropped final empty clause, a reordered empty
//! clause) must be rejected.
//!
//! The `Lit` → DIMACS bridge is deliberately re-implemented here: the
//! checker library itself must stay independent of the solver stack, so
//! the only shared vocabulary is the `i32` literal convention.

use atropos_proof::{check, check_blob, proof_hash, Proof, Step};
use atropos_sat::{reference, Lit, ProofEvent, SolveResult, Var};
use proptest::prelude::*;

fn to_dimacs_lit(l: Lit) -> i32 {
    let v = l.var().0 as i32 + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

fn to_steps(events: &[ProofEvent]) -> Vec<Step> {
    events
        .iter()
        .map(|e| match e {
            ProofEvent::Input(l) => Step::Input(l.iter().copied().map(to_dimacs_lit).collect()),
            ProofEvent::Add(l) => Step::Add(l.iter().copied().map(to_dimacs_lit).collect()),
            ProofEvent::Delete(l) => Step::Delete(l.iter().copied().map(to_dimacs_lit).collect()),
        })
        .collect()
}

/// Assembles the full certificate for an UNSAT answer: the cumulative
/// event log, then the trailer — `Add(¬core)` justified by the final
/// conflict analysis, one `Assume` per failed assumption, and the empty
/// clause. A root refutation (empty core) needs only the empty clause.
fn certificate(events: &[ProofEvent], core: &[Lit]) -> Proof {
    let mut steps = to_steps(events);
    if !core.is_empty() {
        steps.push(Step::Add(
            core.iter().map(|&l| to_dimacs_lit(!l)).collect(),
        ));
        for &l in core {
            steps.push(Step::Assume(to_dimacs_lit(l)));
        }
    }
    steps.push(Step::Add(vec![]));
    Proof { steps }
}

fn to_clauses(raw: &[Vec<(u32, bool)>], num_vars: usize) -> Vec<Vec<Lit>> {
    raw.iter()
        .map(|c| {
            c.iter()
                .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                .collect()
        })
        .collect()
}

fn arena_solver(num_vars: usize, clauses: &[Vec<Lit>]) -> atropos_sat::solver::Solver {
    let mut s = atropos_sat::solver::Solver::new();
    s.set_proof_logging(true);
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

fn reference_solver(num_vars: usize, clauses: &[Vec<Lit>]) -> reference::Solver {
    let mut s = reference::Solver::new();
    s.set_proof_logging(true);
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

/// All three mutation classes must turn an accepted certificate into a
/// rejected one.
fn assert_mutations_rejected(proof: &Proof) {
    // Corrupted payload byte: the checksum catches every single-byte flip.
    let blob = proof.encode();
    let mut corrupt = blob.clone();
    let mid = blob.len() / 2;
    corrupt[mid] ^= 0x20;
    assert!(
        check_blob(&corrupt).is_err(),
        "corrupted byte {mid} accepted"
    );
    assert_ne!(proof_hash(&corrupt), proof_hash(&blob));

    // Dropped final step: the empty clause is the proof's conclusion;
    // without an explicit (checked) `Add([])` the certificate is void.
    let mut dropped = proof.clone();
    let last = dropped.steps.pop();
    assert_eq!(last, Some(Step::Add(vec![])));
    assert!(check(&dropped).is_err(), "dropped conclusion accepted");

    // Reordered: the empty clause moved to the front is not yet RUP.
    let mut reordered = proof.clone();
    let conclusion = reordered.steps.pop().unwrap();
    reordered.steps.insert(0, conclusion);
    assert!(check(&reordered).is_err(), "reordered conclusion accepted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Root-level solving: every UNSAT verdict from either solver yields
    /// a certificate the checker accepts — and that survives the binary
    /// round-trip but not mutation.
    #[test]
    fn root_refutations_certify(
        num_vars in 1usize..12,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..12, any::<bool>()), 1..4),
            0..40,
        ),
    ) {
        let clauses = to_clauses(&raw, num_vars);
        let mut arena = arena_solver(num_vars, &clauses);
        let mut refr = reference_solver(num_vars, &clauses);
        let a = arena.solve();
        let r = refr.solve();
        prop_assert_eq!(a.is_sat(), r.is_sat(), "verdicts diverge");
        if !a.is_sat() {
            for (name, events) in [
                ("arena", arena.proof_events()),
                ("reference", refr.proof_events()),
            ] {
                let proof = certificate(events, &[]);
                let report = check(&proof);
                prop_assert!(report.is_ok(), "{} proof rejected: {:?}", name, report);
                let blob = proof.encode();
                prop_assert!(check_blob(&blob).is_ok(), "{} blob rejected", name);
                prop_assert_eq!(&Proof::decode(&blob).unwrap(), &proof);
                assert_mutations_rejected(&proof);
            }
        }
    }

    /// Incremental solving under assumption sequences: each UNSAT call's
    /// cumulative log plus the failed-core trailer certifies, in both
    /// implementations, across retained learnts and re-entrant solves.
    #[test]
    fn assumption_refutations_certify(
        num_vars in 1usize..10,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 1..4),
            0..30,
        ),
        raw_assumption_sets in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 0..5),
            1..4,
        ),
    ) {
        let clauses = to_clauses(&raw, num_vars);
        let mut arena = arena_solver(num_vars, &clauses);
        let mut refr = reference_solver(num_vars, &clauses);
        for set in &raw_assumption_sets {
            let assumptions: Vec<Lit> = set
                .iter()
                .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                .collect();
            let a = arena.solve_with_assumptions(&assumptions);
            let r = refr.solve_with_assumptions(&assumptions);
            prop_assert_eq!(a.is_sat(), r.is_sat(), "verdicts diverge");
            if a.is_sat() {
                continue;
            }
            let arena_proof =
                certificate(arena.proof_events(), arena.failed_assumptions());
            let ref_proof =
                certificate(refr.proof_events(), refr.failed_assumptions());
            for (name, proof) in [("arena", &arena_proof), ("reference", &ref_proof)] {
                let report = check(proof);
                prop_assert!(report.is_ok(), "{} proof rejected: {:?}", name, report);
                prop_assert!(check_blob(&proof.encode()).is_ok(), "{} blob rejected", name);
                assert_mutations_rejected(proof);
            }
        }
    }

    /// Pool-style lemma import keeps certificates valid: clauses retained
    /// by one implementation, imported into the other (which RUP-gates and
    /// logs them), never break a subsequent refutation's certificate.
    #[test]
    fn imported_learnts_keep_certificates_valid(
        num_vars in 2usize..10,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 2..4),
            5..30,
        ),
        probe in prop::collection::vec((0u32..10, any::<bool>()), 1..4),
    ) {
        let clauses = to_clauses(&raw, num_vars);
        let probe: Vec<Lit> = probe
            .iter()
            .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
            .collect();
        let mut donor = arena_solver(num_vars, &clauses);
        let donor_sat = donor.solve_with_assumptions(&probe).is_sat();
        let lemmas = donor.retained_learnts(num_vars);

        let mut seeded = arena_solver(num_vars, &clauses);
        seeded.import_learnts(lemmas.iter().map(Vec::as_slice));
        let s = seeded.solve_with_assumptions(&probe);
        prop_assert_eq!(s.is_sat(), donor_sat, "seeding changed the verdict");
        if !s.is_sat() {
            let proof =
                certificate(seeded.proof_events(), seeded.failed_assumptions());
            let report = check(&proof);
            prop_assert!(report.is_ok(), "seeded proof rejected: {:?}", report);
        }

        let mut seeded_ref = reference_solver(num_vars, &clauses);
        seeded_ref.import_learnts(lemmas.iter().map(Vec::as_slice));
        let s = seeded_ref.solve_with_assumptions(&probe);
        prop_assert_eq!(s.is_sat(), donor_sat, "seeding changed the verdict");
        if let SolveResult::Unsat = s {
            let proof = certificate(
                seeded_ref.proof_events(),
                seeded_ref.failed_assumptions(),
            );
            let report = check(&proof);
            prop_assert!(report.is_ok(), "seeded reference proof rejected: {:?}", report);
        }
    }
}
