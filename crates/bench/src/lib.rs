//! # atropos-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §6 for the experiment index) plus Criterion micro-benchmarks
//! of every substrate. Results are printed as aligned text tables and also
//! written as CSV under `experiments/`.

#![warn(missing_docs)]

pub mod perf;
pub mod reporting;

pub use reporting::{write_csv, Table};
