//! # atropos-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §6 for the experiment index) plus Criterion micro-benchmarks
//! of every substrate. Results are printed as aligned text tables and also
//! written as CSV under `experiments/`.

#![warn(missing_docs)]

pub mod perf;
pub mod reporting;

pub use reporting::{write_csv, Table};

/// True when the experiment binaries should run a thin slice (tiny
/// durations and iteration counts) instead of the full paper-scale sweep —
/// enabled by `--thin` on the command line or `ATROPOS_THIN=1` in the
/// environment. CI uses this to keep the six bins compiling *and running*
/// without paying for full experiments.
pub fn thin_slice() -> bool {
    std::env::args().any(|a| a == "--thin")
        || std::env::var_os("ATROPOS_THIN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The one [`atropos_detect::DetectionEngine`] an experiment binary
/// constructs for its whole sweep: `--threads N` on the command line wins,
/// then the `ATROPOS_THREADS` environment variable, then the machine's
/// available parallelism (see [`atropos_detect::DetectionEngine::from_env`]).
pub fn engine_from_args() -> atropos_detect::DetectionEngine {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(t) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return atropos_detect::DetectionEngine::new(t);
            }
        }
    }
    atropos_detect::DetectionEngine::from_env()
}

/// Declares `main` for a `harness = false` bench target: runs the given
/// criterion groups, then emits the drained measurements as
/// `experiments/bench_<name>.csv` through [`reporting::write_bench_csv`] —
/// the same CSV pipeline the figure bins use. Test-mode smoke runs record
/// no measurements and write nothing.
#[macro_export]
macro_rules! criterion_main_with_csv {
    ($name:literal, $($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let results = ::criterion::take_results();
            match $crate::reporting::write_bench_csv($name, &results) {
                Ok(Some(p)) => println!("wrote {}", p.display()),
                Ok(None) => {}
                Err(e) => eprintln!("could not write CSV: {e}"),
            }
        }
    };
}
