//! # atropos-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §6 for the experiment index) plus Criterion micro-benchmarks
//! of every substrate. Results are printed as aligned text tables and also
//! written as CSV under `experiments/`.

#![warn(missing_docs)]

pub mod perf;
pub mod reporting;

pub use reporting::{write_csv, Table};

/// True when the experiment binaries should run a thin slice (tiny
/// durations and iteration counts) instead of the full paper-scale sweep —
/// enabled by `--thin` on the command line or `ATROPOS_THIN=1` in the
/// environment. CI uses this to keep the six bins compiling *and running*
/// without paying for full experiments.
pub fn thin_slice() -> bool {
    std::env::args().any(|a| a == "--thin")
        || std::env::var_os("ATROPOS_THIN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The one [`atropos_detect::DetectionEngine`] an experiment binary
/// constructs for its whole sweep: `--threads N` on the command line wins,
/// then the `ATROPOS_THREADS` environment variable, then the machine's
/// available parallelism (see [`atropos_detect::DetectionEngine::from_env`]).
pub fn engine_from_args() -> atropos_detect::DetectionEngine {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(t) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return atropos_detect::DetectionEngine::new(t);
            }
        }
    }
    atropos_detect::DetectionEngine::from_env()
}

/// The cross-process verdict-cache file the operator opted into via the
/// `ATROPOS_CACHE_FILE` environment variable (conventionally
/// `experiments/verdict_cache.v1`), or `None` when unset/empty.
pub fn cache_file_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os("ATROPOS_CACHE_FILE")
        .filter(|v| !v.is_empty())
        .map(Into::into)
}

/// A [`atropos_detect::DetectSession`] warm-started from the
/// `ATROPOS_CACHE_FILE` verdict file when the variable is set and the file
/// loads, or a fresh session otherwise — the cross-process reuse half of
/// the session persistence satellite. A missing or malformed file is
/// reported and degrades to a cold session (a benchmark run must not die
/// on a stale cache).
pub fn session_from_env() -> atropos_detect::DetectSession {
    let Some(path) = cache_file_from_env() else {
        return atropos_detect::DetectSession::new();
    };
    match atropos_detect::DetectSession::load_from(&path) {
        Ok(session) => {
            println!(
                "warm-started verdict session from {} ({} pair + {} triple entries)",
                path.display(),
                session.len(),
                session.triple_len(),
            );
            session
        }
        Err(e) => {
            if path.exists() {
                eprintln!("ignoring verdict cache {}: {e}", path.display());
            }
            atropos_detect::DetectSession::new()
        }
    }
}

/// Persists `session`'s verdicts back to the `ATROPOS_CACHE_FILE` path, if
/// configured — the save half of [`session_from_env`]. Errors are reported
/// and swallowed (persistence is an optimization, never a failure mode).
pub fn persist_session_from_env(session: &atropos_detect::DetectSession) {
    let Some(path) = cache_file_from_env() else {
        return;
    };
    match session.save_to(&path) {
        Ok(entries) => println!("persisted {entries} verdict entries to {}", path.display()),
        Err(e) => eprintln!("could not persist verdict cache {}: {e}", path.display()),
    }
}

/// Declares `main` for a `harness = false` bench target: runs the given
/// criterion groups, then emits the drained measurements as
/// `experiments/bench_<name>.csv` through [`reporting::write_bench_csv`] —
/// the same CSV pipeline the figure bins use. Test-mode smoke runs record
/// no measurements and write nothing.
#[macro_export]
macro_rules! criterion_main_with_csv {
    ($name:literal, $($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let results = ::criterion::take_results();
            match $crate::reporting::write_bench_csv($name, &results) {
                Ok(Some(p)) => println!("wrote {}", p.display()),
                Ok(None) => {}
                Err(e) => eprintln!("could not write CSV: {e}"),
            }
        }
    };
}
