//! Minimal text-table and CSV reporting for the experiment binaries and
//! Criterion micro-benchmarks.
//!
//! Every CSV in `experiments/` follows one shape: a header row whose first
//! column is `Benchmark`, then one data row per subject, all rows with the
//! header's arity. [`parse_csv`] round-trips that shape so tests can pin
//! it across the figure bins, the bench targets, and the detector-stats
//! table alike.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use atropos_core::RepairReport;
use atropos_detect::DetectStats;
use criterion::BenchResult;

/// An aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity");
        self.rows.push(row);
    }

    /// Read access to the accumulated rows.
    pub fn rows_ref(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// The `experiments/` directory of the workspace root: binaries run from
/// the root already, while `cargo test`/`cargo bench` targets start in the
/// crate directory — so walk ancestors until the workspace `Cargo.lock`.
fn experiments_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("experiments");
        }
        if !dir.pop() {
            return PathBuf::from("experiments");
        }
    }
}

/// Writes a table as `experiments/<name>.csv` (under the workspace root,
/// regardless of the invoking target's working directory), returning the
/// path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Parses CSV text produced by [`Table::to_csv`] back into rows (honouring
/// quoted cells), so tests can pin the header/row shape of written files.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut row = Vec::new();
        let mut cell = String::new();
        let mut quoted = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' => quoted = true,
                ',' if !quoted => row.push(std::mem::take(&mut cell)),
                _ => cell.push(c),
            }
        }
        row.push(cell);
        rows.push(row);
    }
    rows
}

/// Builds the per-subject table of Criterion measurements, matching the
/// figure bins' CSV conventions (leading `Benchmark` column).
pub fn bench_results_table(results: &[BenchResult]) -> Table {
    let mut t = Table::new(vec![
        "Benchmark", "Min (s)", "Median (s)", "Mean (s)", "Max (s)", "Samples", "Iters",
    ]);
    for r in results {
        t.row(vec![
            r.id.clone(),
            format!("{:.9}", r.min),
            format!("{:.9}", r.median),
            format!("{:.9}", r.mean),
            format!("{:.9}", r.max),
            format!("{}", r.samples),
            format!("{}", r.iters),
        ]);
    }
    t
}

/// Writes a bench target's drained measurements as
/// `experiments/bench_<name>.csv`. Returns `None` without touching the
/// filesystem when there are no measurements (test-mode smoke runs).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bench_csv(
    name: &str,
    results: &[BenchResult],
) -> std::io::Result<Option<PathBuf>> {
    if results.is_empty() {
        return Ok(None);
    }
    let table = bench_results_table(results);
    write_csv(&format!("bench_{name}"), &table).map(Some)
}

/// Header of the detector-statistics table emitted by `table1`.
pub fn detect_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Queries",
        "Memo hits",
        "SAT",
        "Conflicts",
        "Clauses",
        "Fresh-equiv clauses",
        "Reuse",
        "Incr (s)",
        "Fresh (s)",
        "Speedup",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the detector-statistics table: the incremental run's
/// [`DetectStats`] plus the wall time of the fresh-solver reference run.
pub fn detect_stats_row(name: &str, stats: &DetectStats, fresh_seconds: f64) -> Vec<String> {
    vec![
        name.to_owned(),
        format!("{}", stats.queries),
        format!("{}", stats.memo_hits),
        format!("{}", stats.sat_queries),
        format!("{}", stats.conflicts),
        format!("{}", stats.clauses_encoded),
        format!("{}", stats.clauses_fresh_equivalent),
        format!("{:.2}", stats.reused_clause_ratio()),
        format!("{:.3}", stats.seconds),
        format!("{:.3}", fresh_seconds),
        format!("{:.1}x", fresh_seconds / stats.seconds.max(1e-9)),
    ]
}

/// Header of the repair-loop statistics table emitted by `table1`
/// (`experiments/repair_stats.csv`): per-benchmark oracle reuse of the
/// near-incremental repair driver — at the engine's thread count, plus
/// extra per-thread-count rows for the headline thread sweep — against the
/// from-scratch reference, and the cross-run hit ratio of a
/// session-shared ablation sweep.
pub fn repair_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Threads",
        "Mode",
        "Oracle passes",
        "Passes run",
        "Passes reused",
        "Pairs reused",
        "Pairs solved",
        "Hit ratio",
        "Cross-run ratio",
        "Cached (s)",
        "Scratch (s)",
        "Speedup",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the repair-loop statistics table: the cached run's
/// [`atropos_core::RepairStats`], the engine thread count and detection
/// mode it ran at (`pairs` or `triples` — the [`atropos_core::DetectMode`]
/// rendered lowercase), the cross-run hit ratio of the benchmark's
/// session-shared ablation sweep, and explicit wall times for the cached
/// and from-scratch runs (callers time several repetitions and report the
/// best, so the timings travel separately from the report).
#[allow(clippy::too_many_arguments)]
pub fn repair_stats_row(
    name: &str,
    cached: &RepairReport,
    threads: usize,
    mode: atropos_core::DetectMode,
    cross_run_ratio: f64,
    cached_seconds: f64,
    scratch_seconds: f64,
) -> Vec<String> {
    let s = &cached.stats;
    vec![
        name.to_owned(),
        format!("{threads}"),
        format!("{mode}"),
        format!("{}", s.detections + s.detections_skipped),
        format!("{}", s.detections),
        format!("{}", s.detections_skipped),
        format!("{}", s.pairs_reused()),
        format!("{}", s.pairs_solved()),
        format!("{:.2}", s.hit_ratio()),
        format!("{:.2}", cross_run_ratio),
        format!("{:.3}", cached_seconds),
        format!("{:.3}", scratch_seconds),
        format!("{:.1}x", scratch_seconds / cached_seconds.max(1e-9)),
    ]
}

/// Header of the pair-vs-triple detection table emitted by `table1`
/// (`experiments/triple_stats.csv`): per benchmark, the anomaly counts of
/// the two bounds at one level, how many are chain-only extras, the
/// triples analysed, the fraction of triple-mode anomalies the repair
/// loop (pair rules plus the `.T` chain rules) eliminates, and both
/// detection passes' wall times.
pub fn triple_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Level",
        "Pair anomalies",
        "Triple anomalies",
        "Chain extras",
        "Triples",
        "Repaired ratio",
        "Pair (s)",
        "Triple (s)",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the pair-vs-triple detection table. `repaired_ratio` is
/// [`atropos_core::RepairReport::repair_ratio`] of a triple-mode repair
/// run: eliminated anomalies over initial anomalies, 1.0 when detection
/// was already clean.
#[allow(clippy::too_many_arguments)]
pub fn triple_stats_row(
    name: &str,
    level: &str,
    pair_anomalies: usize,
    triple_anomalies: usize,
    triples: u64,
    repaired_ratio: f64,
    pair_seconds: f64,
    triple_seconds: f64,
) -> Vec<String> {
    vec![
        name.to_owned(),
        level.to_owned(),
        format!("{pair_anomalies}"),
        format!("{triple_anomalies}"),
        format!("{}", triple_anomalies.saturating_sub(pair_anomalies)),
        format!("{triples}"),
        format!("{repaired_ratio:.2}"),
        format!("{pair_seconds:.3}"),
        format!("{triple_seconds:.3}"),
    ]
}

/// Header of the corpus-throughput table emitted by the `corpus` bin
/// (`experiments/corpus_stats.csv`): per corpus configuration, how far
/// corpus-wide fingerprint dedup collapses the pair work list, and the
/// headline programs/sec of the batch service against the cold
/// program-at-a-time baseline.
pub fn corpus_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Programs",
        "Pair slots",
        "Unique pairs",
        "Verdicts",
        "Cold (s)",
        "Warm (s)",
        "Cold prog/s",
        "Warm prog/s",
        "Speedup",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the corpus-throughput table, from one
/// [`atropos_detect::CorpusStats`] plus the cold baseline's wall time
/// over the same corpus.
pub fn corpus_stats_row(
    name: &str,
    stats: &atropos_detect::CorpusStats,
    verdicts: usize,
    cold_seconds: f64,
) -> Vec<String> {
    let warm_seconds = stats.seconds;
    let programs = stats.programs as f64;
    vec![
        name.to_owned(),
        format!("{}", stats.programs),
        format!("{}", stats.pair_slots),
        format!("{}", stats.unique_pairs),
        format!("{verdicts}"),
        format!("{cold_seconds:.3}"),
        format!("{warm_seconds:.3}"),
        format!("{:.1}", programs / cold_seconds.max(1e-9)),
        format!("{:.1}", programs / warm_seconds.max(1e-9)),
        format!("{:.1}x", cold_seconds / warm_seconds.max(1e-9)),
    ]
}

/// Header of the solver-throughput table emitted by `solver_stats`
/// (`experiments/solver_stats.csv`): per benchmark, the detection pass's
/// raw solver rates, the learnt-pool hit ratio of a repeated pass through
/// the same engine, and the arena-vs-baseline replay of the *same*
/// detection CNF under identical assumption schedules.
pub fn solver_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Queries",
        "Propagations",
        "Props/s",
        "Conflicts/s",
        "Pool hit",
        "Arena props/s",
        "Baseline props/s",
        "Speedup",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the solver-throughput table. `detect` is the detection
/// pass's [`DetectStats`]; `pool_hit` the seeded-over-published clause
/// ratio of the second pass; the remaining pair the raw propagation
/// throughputs of the arena and baseline solvers on the replayed CNF.
pub fn solver_stats_row(
    name: &str,
    detect: &DetectStats,
    pool_hit: f64,
    arena_props_per_sec: f64,
    baseline_props_per_sec: f64,
) -> Vec<String> {
    vec![
        name.to_owned(),
        format!("{}", detect.queries),
        format!("{}", detect.propagations),
        format!("{:.0}", detect.propagations as f64 / detect.seconds.max(1e-9)),
        format!("{:.2}", detect.conflicts as f64 / detect.seconds.max(1e-9)),
        format!("{pool_hit:.2}"),
        format!("{arena_props_per_sec:.0}"),
        format!("{baseline_props_per_sec:.0}"),
        format!(
            "{:.2}x",
            arena_props_per_sec / baseline_props_per_sec.max(1e-9)
        ),
    ]
}

/// Header of the proof-certificate table emitted by `proof_stats`
/// (`experiments/proof_stats.csv`): per benchmark, the detection sweep's
/// query and refutation counts, how many UNSAT verdicts carry
/// certificates and how many of those the independent `atropos_proof`
/// checker accepts (`csv_smoke.rs` pins the two equal — a 100%
/// proofs-checked floor), the total certificate payload, and the
/// wall-time overhead of proof logging against an identical proofs-off
/// sweep (pinned ≤ 1.5x on TPC-C).
pub fn proof_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Queries",
        "UNSAT",
        "Certificates",
        "Checked",
        "Proof bytes",
        "Off (s)",
        "On (s)",
        "Overhead",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the proof-certificate table. `queries`/`unsat` come from
/// the proofs-on sweep's [`DetectStats`]; `certificates` is the number of
/// proof blobs the session banked, `checked` how many the checker
/// accepted, `proof_bytes` their total encoded size; the two wall times
/// are the best-of-N sweeps with logging off and on.
#[allow(clippy::too_many_arguments)]
pub fn proof_stats_row(
    name: &str,
    queries: u64,
    unsat: u64,
    certificates: usize,
    checked: usize,
    proof_bytes: usize,
    off_seconds: f64,
    on_seconds: f64,
) -> Vec<String> {
    vec![
        name.to_owned(),
        format!("{queries}"),
        format!("{unsat}"),
        format!("{certificates}"),
        format!("{checked}"),
        format!("{proof_bytes}"),
        format!("{off_seconds:.3}"),
        format!("{on_seconds:.3}"),
        format!("{:.2}x", on_seconds / off_seconds.max(1e-9)),
    ]
}

/// One row of a per-benchmark anomaly report (`experiments/reports/`):
/// one transaction tuple's verdict at one consistency level, plus the
/// audit trail that backs it — a replayed witness trace for dirty
/// verdicts, checker-accepted certificates for clean ones.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// The transaction tuple, e.g. `audit × deposit`.
    pub subject: String,
    /// Consistency level the verdict holds at (`EC`, `CC`, …).
    pub level: String,
    /// `true` = clean (every violation template refuted).
    pub serializable: bool,
    /// Wall time of the detection pass that produced the verdict.
    pub pass_seconds: f64,
    /// Dirty verdicts only: the decoded witness schedule manifested its
    /// anomaly on the simulated cluster.
    pub trace: bool,
    /// Clean verdicts only: the tuple's refutations carry certificates
    /// the independent checker accepts.
    pub certified: bool,
}

/// Renders one benchmark's anomaly report as markdown: a verdict table in
/// the style of the serializability-report exemplar (`Trace` ✅ for
/// replayed dirty verdicts, `Proof Cert` ✅ for certified clean ones,
/// `N/A` where the column does not apply), followed by one fenced witness
/// trace per manifested anomaly.
pub fn anomaly_report_markdown(
    bench: &str,
    generated: &str,
    rows: &[ReportRow],
    traces: &[(String, String)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Serializability Analysis Report — {bench}");
    let _ = writeln!(out, "Generated: {generated}");
    let _ = writeln!(out);
    let _ = writeln!(out, "|Transactions|Level|Verdict|Pass (s)|Trace|Proof Cert|");
    let _ = writeln!(out, "|--|--|--|--|--|--|");
    let mark = |b: bool| if b { "✅" } else { "N/A" };
    for r in rows {
        let _ = writeln!(
            out,
            "| `{}` |{}|{}|{:.3}|{}|{}|",
            r.subject,
            r.level,
            if r.serializable {
                "Serializable"
            } else {
                "Not serializable"
            },
            r.pass_seconds,
            mark(r.trace),
            mark(r.certified),
        );
    }
    if !traces.is_empty() {
        let _ = writeln!(out, "\n## Witness traces");
        for (title, body) in traces {
            let _ = writeln!(out, "\n### {title}\n\n```\n{}```", body);
        }
    }
    out
}

/// Writes a rendered report as `experiments/reports/<name>.md` (under the
/// workspace root), returning the path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_report(name: &str, text: &str) -> std::io::Result<PathBuf> {
    let dir = experiments_dir().join("reports");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.md"));
    fs::write(&path, text)?;
    Ok(path)
}

/// Header of the witness-replay table emitted by `table1`
/// (`experiments/replay_stats.csv`): per benchmark, mode, and level, how
/// many initial dirty verdicts decoded into schedules that manifested
/// their anomaly on the simulated cluster, how many failed to
/// (detector/replay divergences, expected zero), how many the repaired
/// program suppressed, and how many survived repair (expected zero).
pub fn replay_stats_header() -> Vec<String> {
    [
        "Benchmark",
        "Mode",
        "Level",
        "Initial",
        "Manifested",
        "Failed",
        "Suppressed",
        "Surviving",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// One row of the witness-replay table, from the replay counters a
/// [`atropos_core::repair_with_engine`] run recorded in its
/// [`atropos_core::RepairStats`].
pub fn replay_stats_row(
    name: &str,
    mode: atropos_core::DetectMode,
    level: &str,
    report: &RepairReport,
) -> Vec<String> {
    let s = &report.stats;
    vec![
        name.to_owned(),
        format!("{mode}"),
        level.to_owned(),
        format!("{}", report.initial.len()),
        format!("{}", s.replay_manifested),
        format!("{}", s.replay_failed),
        format!("{}", s.replay_suppressed),
        format!("{}", s.replay_surviving),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "n"]);
        t.row(vec!["aa", "1"]);
        t.row(vec!["b", "22"]);
        let r = t.render();
        assert!(r.contains("name  n"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }
}
