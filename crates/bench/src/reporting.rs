//! Minimal text-table and CSV reporting for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// An aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity");
        self.rows.push(row);
    }

    /// Read access to the accumulated rows.
    pub fn rows_ref(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Writes a table as `experiments/<name>.csv` (relative to the workspace
/// root when run via `cargo run`), returning the path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, table.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "n"]);
        t.row(vec!["aa", "1"]);
        t.row(vec!["b", "22"]);
        let r = t.render();
        assert!(r.contains("name  n"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }
}
