//! Shared driver for the performance figures (Figs. 12–15): sweeps client
//! counts over a cluster for the four configurations the paper compares.

use atropos_core::{repair_with_engine, RepairConfig};
use atropos_detect::{ConsistencyLevel, DetectSession, DetectionEngine};
use atropos_sim::{run_simulation, ClusterConfig, RunStats, SimConfig, Workload};
use atropos_workloads::{benchmark, derive_workload, TableSpec};

use crate::reporting::Table;

/// The four program/consistency configurations of §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfConfig {
    /// Original program, weak (eventually consistent) execution.
    Ec,
    /// Refactored program, weak execution.
    AtEc,
    /// Original program, every transaction serializable.
    Sc,
    /// Refactored program, only still-anomalous transactions serializable.
    AtSc,
}

impl PerfConfig {
    /// All four, in the paper's legend order.
    pub fn all() -> [PerfConfig; 4] {
        [PerfConfig::AtEc, PerfConfig::AtSc, PerfConfig::Ec, PerfConfig::Sc]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            PerfConfig::Ec => "EC",
            PerfConfig::AtEc => "AT-EC",
            PerfConfig::Sc => "SC",
            PerfConfig::AtSc => "AT-SC",
        }
    }
}

/// One figure: a benchmark swept over clusters × configurations × clients.
pub struct FigureRun {
    /// Result table (one row per cluster/config/clients triple).
    pub table: Table,
}

/// Runs the full sweep for one benchmark with an engine built from the
/// environment (`ATROPOS_THREADS`).
///
/// # Panics
///
/// Panics if the benchmark name is unknown.
pub fn run_figure(bench_name: &str, client_counts: &[usize], duration_ms: f64) -> FigureRun {
    run_figure_with_engine(
        bench_name,
        client_counts,
        duration_ms,
        &DetectionEngine::from_env(),
    )
}

/// [`run_figure`] against a caller-owned [`DetectionEngine`] — the figure
/// bins construct **one** engine (from `--threads` / `ATROPOS_THREADS`)
/// for their whole sweep and repair through a session, so the repair that
/// derives the AT-EC/AT-SC workloads solves its dirty pairs on the
/// engine's workers.
///
/// # Panics
///
/// Panics if the benchmark name is unknown.
pub fn run_figure_with_engine(
    bench_name: &str,
    client_counts: &[usize],
    duration_ms: f64,
    engine: &DetectionEngine,
) -> FigureRun {
    let bench = benchmark(bench_name).expect("known benchmark");
    let mut session = DetectSession::new();
    let report = repair_with_engine(
        &bench.program,
        &RepairConfig {
            level: ConsistencyLevel::EventualConsistency,
            ..RepairConfig::default()
        },
        engine,
        &mut session,
    );
    let unsafe_txns: Vec<String> = report.unsafe_transactions().into_iter().collect();
    let spec = TableSpec::default();

    let original = derive_workload(&bench.program, &bench.mix, &spec);
    let repaired = derive_workload(&report.repaired, &bench.mix, &spec);

    let mut table = Table::new(vec![
        "cluster", "config", "clients", "tps", "avg_ms", "p99_ms",
    ]);
    let clusters = [
        ClusterConfig::virginia(),
        ClusterConfig::us(),
        ClusterConfig::global(),
    ];
    // Sweep clusters in parallel; each worker returns its rows.
    let rows: Vec<Vec<[String; 6]>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clusters
            .iter()
            .map(|cluster| {
                let original = &original;
                let repaired = &repaired;
                let unsafe_txns = &unsafe_txns;
                scope.spawn(move || {
                    let mut rows = Vec::new();
                    for &clients in client_counts {
                        for config in PerfConfig::all() {
                            let workload: Workload = match config {
                                PerfConfig::Ec => original.clone(),
                                PerfConfig::Sc => original.clone().all_serializable(),
                                PerfConfig::AtEc => repaired.clone(),
                                PerfConfig::AtSc => {
                                    repaired.clone().with_serializable(unsafe_txns)
                                }
                            };
                            let mut sim = SimConfig::new(cluster.clone(), clients);
                            sim.duration_ms = duration_ms;
                            let stats: RunStats = run_simulation(&workload, &sim);
                            rows.push([
                                cluster.name.clone(),
                                config.label().to_owned(),
                                format!("{clients}"),
                                format!("{:.0}", stats.throughput_tps),
                                format!("{:.1}", stats.avg_latency_ms),
                                format!("{:.1}", stats.p99_latency_ms),
                            ]);
                        }
                    }
                    rows
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker")).collect()
    });
    for cluster_rows in rows {
        for r in cluster_rows {
            table.row(r.to_vec());
        }
    }
    FigureRun { table }
}

/// Prints a compact summary of the headline comparison (US cluster, max
/// clients): AT-EC vs EC overhead and AT-SC vs SC improvement.
pub fn print_headline(fig: &FigureRun, clients: usize) {
    let find = |config: &str| -> Option<(f64, f64)> {
        fig.table
            .rows_ref()
            .iter()
            .find(|r| r[0] == "US" && r[1] == config && r[2] == format!("{clients}"))
            .map(|r| (r[3].parse().unwrap_or(0.0), r[4].parse().unwrap_or(0.0)))
    };
    if let (Some(ec), Some(atec), Some(sc), Some(atsc)) =
        (find("EC"), find("AT-EC"), find("SC"), find("AT-SC"))
    {
        println!(
            "US cluster @ {clients} clients: AT-EC/EC throughput {:.2}x, \
             AT-SC/SC throughput {:.2}x, AT-SC/SC latency {:.2}x",
            atec.0 / ec.0.max(1.0),
            atsc.0 / sc.0.max(1.0),
            atsc.1 / sc.1.max(1e-9),
        );
    }
}
