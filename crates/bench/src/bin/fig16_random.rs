//! Regenerates **Fig. 16**: anomalous access pairs after rounds of *random*
//! schema refactoring, against the oracle-guided Atropos result, for the
//! three benchmarks with the most anomalies. One detection engine serves
//! the whole sweep, and each benchmark's rounds share one
//! [`DetectSession`]: the transaction pairs a round's random moves left
//! untouched are answered from earlier rounds' warm verdicts. With
//! `ATROPOS_CACHE_FILE` set (conventionally
//! `experiments/verdict_cache.v1`), a single session is additionally
//! loaded from — and saved back to — that file, so repeated invocations
//! warm-start across processes.

use atropos_bench::{
    cache_file_from_env, engine_from_args, persist_session_from_env, session_from_env, write_csv,
    Table,
};
use atropos_core::{random_refactor_with_session, repair_program};
use atropos_detect::{detect_anomalies, ConsistencyLevel, DetectSession};
use atropos_workloads::benchmark;

fn main() {
    let mut table = Table::new(vec!["benchmark", "round", "strategy", "anomalies"]);
    let thin = atropos_bench::thin_slice();
    let engine = engine_from_args();
    // Default: a fresh session per benchmark (isolated cross-round stats).
    // Opted into persistence, one warm-startable session serves them all.
    let persistent = cache_file_from_env().is_some();
    let mut shared_session = persistent.then(session_from_env);
    for (name, mut rounds, moves) in [("SmallBank", 20, 8), ("SEATS", 20, 8), ("TPC-C", 8, 6)] {
        if thin {
            rounds = 2; // smoke-sized slice for CI
        }
        let b = benchmark(name).expect("known benchmark");
        let baseline = detect_anomalies(&b.program, ConsistencyLevel::EventualConsistency).len();
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        println!(
            "{name}: {} anomalies originally, {} after Atropos",
            baseline,
            report.remaining.len()
        );
        table.row(vec![
            name.to_owned(),
            "-".to_owned(),
            "atropos".to_owned(),
            format!("{}", report.remaining.len()),
        ]);
        let mut improved = 0;
        let mut local_session = DetectSession::new();
        let session = shared_session.as_mut().unwrap_or(&mut local_session);
        // Per-benchmark share of the (possibly shared, warm-loaded)
        // session's counters, so the reuse line below stays a
        // per-benchmark metric in both modes.
        let stats_before = session.cache_stats();
        for round in 0..rounds {
            let out = random_refactor_with_session(
                &b.program,
                0xF16 + round as u64,
                moves,
                &engine,
                session,
            );
            if out.anomalies < baseline {
                improved += 1;
            }
            table.row(vec![
                name.to_owned(),
                format!("{round}"),
                "random".to_owned(),
                format!("{}", out.anomalies),
            ]);
        }
        println!(
            "  random refactoring improved the program in {improved}/{rounds} rounds \
             (and never approached the oracle-guided result); \
             cross-round verdict reuse {:.0}%",
            session.cache_stats().since(&stats_before).cross_run_hit_ratio() * 100.0
        );
    }
    if let Some(session) = &shared_session {
        persist_session_from_env(session);
    }
    println!("\n{}", table.render());
    match write_csv("fig16_random", &table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
