//! Regenerates **Fig. 16**: anomalous access pairs after rounds of *random*
//! schema refactoring, against the oracle-guided Atropos result, for the
//! three benchmarks with the most anomalies. One detection engine serves
//! the whole sweep, and each benchmark's rounds share one
//! [`DetectSession`]: the transaction pairs a round's random moves left
//! untouched are answered from earlier rounds' warm verdicts.

use atropos_bench::{engine_from_args, write_csv, Table};
use atropos_core::{random_refactor_with_session, repair_program};
use atropos_detect::{detect_anomalies, ConsistencyLevel, DetectSession};
use atropos_workloads::benchmark;

fn main() {
    let mut table = Table::new(vec!["benchmark", "round", "strategy", "anomalies"]);
    let thin = atropos_bench::thin_slice();
    let engine = engine_from_args();
    for (name, mut rounds, moves) in [("SmallBank", 20, 8), ("SEATS", 20, 8), ("TPC-C", 8, 6)] {
        if thin {
            rounds = 2; // smoke-sized slice for CI
        }
        let b = benchmark(name).expect("known benchmark");
        let baseline = detect_anomalies(&b.program, ConsistencyLevel::EventualConsistency).len();
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        println!(
            "{name}: {} anomalies originally, {} after Atropos",
            baseline,
            report.remaining.len()
        );
        table.row(vec![
            name.to_owned(),
            "-".to_owned(),
            "atropos".to_owned(),
            format!("{}", report.remaining.len()),
        ]);
        let mut improved = 0;
        let mut session = DetectSession::new();
        for round in 0..rounds {
            let out = random_refactor_with_session(
                &b.program,
                0xF16 + round as u64,
                moves,
                &engine,
                &mut session,
            );
            if out.anomalies < baseline {
                improved += 1;
            }
            table.row(vec![
                name.to_owned(),
                format!("{round}"),
                "random".to_owned(),
                format!("{}", out.anomalies),
            ]);
        }
        println!(
            "  random refactoring improved the program in {improved}/{rounds} rounds \
             (and never approached the oracle-guided result); \
             cross-round verdict reuse {:.0}%",
            session.cache_stats().cross_run_hit_ratio() * 100.0
        );
    }
    println!("\n{}", table.render());
    match write_csv("fig16_random", &table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
