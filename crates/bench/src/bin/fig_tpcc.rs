//! Regenerates the tpcc performance figure (latency + throughput vs client
//! count, on the VA / US / Global clusters) for the four configurations
//! EC, AT-EC, SC, and AT-SC.

use atropos_bench::perf::{print_headline, run_figure};
use atropos_bench::write_csv;

fn main() {
    let clients: Vec<usize> = vec![1, 25, 50, 75, 100, 125];
    let fig = run_figure("TPC-C", &clients, 90_000.0);
    println!("{}", fig.table.render());
    print_headline(&fig, *clients.last().unwrap());
    match write_csv("fig_tpcc", &fig.table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
