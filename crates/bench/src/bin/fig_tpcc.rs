//! Regenerates the tpcc performance figure (latency + throughput vs client
//! count, on the VA / US / Global clusters) for the four configurations
//! EC, AT-EC, SC, and AT-SC.

use atropos_bench::perf::{print_headline, run_figure_with_engine};
use atropos_bench::engine_from_args;
use atropos_bench::thin_slice;
use atropos_bench::write_csv;

fn main() {
    // `--thin` / ATROPOS_THIN=1: a smoke-sized sweep for CI.
    let (clients, duration_ms): (Vec<usize>, f64) = if thin_slice() {
        (vec![1, 4], 1_000.0)
    } else {
        (vec![1, 25, 50, 75, 100, 125], 90_000.0)
    };
    let fig = run_figure_with_engine("TPC-C", &clients, duration_ms, &engine_from_args());
    println!("{}", fig.table.render());
    print_headline(&fig, *clients.last().unwrap());
    match write_csv("fig_tpcc", &fig.table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
