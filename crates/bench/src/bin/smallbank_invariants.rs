//! Regenerates the **App. A.2** experiment: which of SmallBank's three
//! application-level invariants are violated under eventually consistent
//! execution, before and after repair.
//!
//! 1. every account reflects the complete history of deposits performed on
//!    it (per-account ledger correctness — the paper's invariant 2);
//! 2. money is never created: the bank-wide total never exceeds the initial
//!    funds plus committed deposits (conservation);
//! 3. clients never witness an intermediate state of a funds movement
//!    (atomic visibility of multi-step transfers).
//!
//! The paper's invariant 1 (non-negative balances) is a write-skew property
//! that schema refactoring cannot restore and that last-writer-wins masking
//! hides in the original program; `EXPERIMENTS.md` discusses the deviation.

use atropos_bench::{write_csv, Table};
use atropos_core::repair_program;
use atropos_detect::ConsistencyLevel;
use atropos_dsl::{Program, Value};
use atropos_semantics::{Interpreter, Invocation, ViewStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: i64 = 4;
const INITIAL: i64 = 100; // per component (savings and checking)

/// Seeds initial state: plain tables get rows; `_LOG` tables get one seed
/// entry carrying the initial value (the migration a `Sum` value
/// correspondence prescribes).
fn seed(interp: &mut Interpreter<'_>, program: &Program, uuid_salt: &mut u128) {
    for schema in &program.schemas {
        let pk = schema.primary_key();
        for acct in 0..ACCOUNTS {
            if pk.len() == 1 {
                let fields: Vec<(String, Value)> = schema
                    .value_fields()
                    .iter()
                    .map(|f| {
                        let v = if f.contains("bal") {
                            Value::Int(INITIAL)
                        } else {
                            Value::Str(format!("acct-{acct}"))
                        };
                        ((*f).to_owned(), v)
                    })
                    .collect();
                interp.populate(&schema.name, vec![Value::Int(acct)], fields);
            } else if schema.name.ends_with("_LOG") {
                *uuid_salt += 1;
                let log_field = schema
                    .value_fields()
                    .first()
                    .map(|f| (*f).to_owned())
                    .expect("log schema has its value field");
                interp.populate(
                    &schema.name,
                    vec![Value::Int(acct), Value::Uuid(*uuid_salt)],
                    vec![(log_field, Value::Int(INITIAL))],
                );
            }
        }
    }
}

fn balance_of(interp: &mut Interpreter<'_>, acct: i64) -> i64 {
    let id = interp
        .invoke(&Invocation::new("balance", vec![Value::Int(acct)]))
        .expect("invoke balance");
    interp.run_to_completion(id).expect("balance read");
    interp
        .return_value(id)
        .and_then(Value::as_int)
        .expect("int balance")
}

/// Invariant 1: concurrent deposits to a hot account; afterwards the
/// account must hold exactly its initial funds plus every committed
/// deposit. Lost updates on the read-modify-write balance break this.
fn run_deposit_ledger(program: &Program, runs: u64) -> u64 {
    let mut violations = 0;
    let mut salt = 0x1ED6E2u128;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(0xDE90 + run);
        let mut interp = Interpreter::new(program, ViewStrategy::Serial, run);
        seed(&mut interp, program, &mut salt);
        interp.set_strategy(ViewStrategy::RandomAtoms { p: 0.5 });
        let mut deposited = 0i64;
        let invs: Vec<Invocation> = (0..6)
            .map(|_| {
                let amt = rng.gen_range(1..40);
                deposited += amt;
                Invocation::new("depositChecking", vec![Value::Int(0), Value::Int(amt)])
            })
            .collect();
        let ids: Vec<_> = invs
            .iter()
            .map(|i| interp.invoke(i).expect("invoke"))
            .collect();
        let mut live = ids.clone();
        while !live.is_empty() {
            let k = rng.gen_range(0..live.len());
            if !interp.step(live[k]).expect("step") {
                live.swap_remove(k);
            }
        }
        interp.set_strategy(ViewStrategy::Serial);
        if balance_of(&mut interp, 0) != 2 * INITIAL + deposited {
            violations += 1;
        }
    }
    violations
}

/// Invariant 2: money is never created. A transfer whose debit is lost but
/// whose credit survives inflates the bank-wide total beyond the committed
/// deposits.
fn run_conservation(program: &Program, runs: u64) -> u64 {
    let mut violations = 0;
    let mut salt = 0x5EEDu128;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(0xBA2C + run);
        let mut interp = Interpreter::new(program, ViewStrategy::Serial, run);
        seed(&mut interp, program, &mut salt);
        interp.set_strategy(ViewStrategy::RandomAtoms { p: 0.5 });

        let mut invs: Vec<Invocation> = Vec::new();
        let mut deposited: i64 = 0;
        for _ in 0..10 {
            let a = rng.gen_range(0..ACCOUNTS);
            let b = (a + 1 + rng.gen_range(0..ACCOUNTS - 1)) % ACCOUNTS;
            match rng.gen_range(0..3) {
                0 => {
                    let amt = rng.gen_range(1..40);
                    deposited += amt;
                    invs.push(Invocation::new(
                        "depositChecking",
                        vec![Value::Int(a), Value::Int(amt)],
                    ));
                }
                1 => invs.push(Invocation::new(
                    "sendPayment",
                    vec![Value::Int(a), Value::Int(b), Value::Int(rng.gen_range(40..90))],
                )),
                _ => invs.push(Invocation::new(
                    "writeCheck",
                    vec![Value::Int(a), Value::Int(rng.gen_range(20..90))],
                )),
            }
        }
        let ids: Vec<_> = invs
            .iter()
            .map(|i| interp.invoke(i).expect("invoke"))
            .collect();
        let mut live = ids.clone();
        while !live.is_empty() {
            let k = rng.gen_range(0..live.len());
            if !interp.step(live[k]).expect("step") {
                live.swap_remove(k);
            }
        }
        interp.set_strategy(ViewStrategy::Serial);
        let total: i64 = (0..ACCOUNTS).map(|a| balance_of(&mut interp, a)).sum();
        if total > ACCOUNTS * INITIAL * 2 + deposited {
            violations += 1;
        }
    }
    violations
}

/// Invariant 3: amalgamate(0 → 1) concurrently with balance(0) probes from
/// a known state. Any serializable observation of account 0 is either the
/// full pre-state (2·INITIAL) or fully drained (0); anything in between is
/// a witnessed intermediate state.
fn run_snapshot_probes(program: &Program, runs: u64) -> u64 {
    let mut violations = 0;
    let mut salt = 0xABCDu128;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(0xF00D + run);
        let mut interp = Interpreter::new(program, ViewStrategy::Serial, run);
        seed(&mut interp, program, &mut salt);
        interp.set_strategy(ViewStrategy::RandomAtoms { p: 0.5 });
        let mut invs = vec![Invocation::new(
            "amalgamate",
            vec![Value::Int(0), Value::Int(1)],
        )];
        for _ in 0..3 {
            invs.push(Invocation::new("balance", vec![Value::Int(0)]));
        }
        let ids: Vec<_> = invs
            .iter()
            .map(|i| interp.invoke(i).expect("invoke"))
            .collect();
        let mut live = ids.clone();
        while !live.is_empty() {
            let k = rng.gen_range(0..live.len());
            if !interp.step(live[k]).expect("step") {
                live.swap_remove(k);
            }
        }
        for (k, inv) in invs.iter().enumerate() {
            if inv.txn != "balance" {
                continue;
            }
            let got = interp.return_value(ids[k]).and_then(Value::as_int);
            if let Some(got) = got {
                if got != 2 * INITIAL && got != 0 {
                    violations += 1;
                }
            }
        }
    }
    violations
}

fn main() {
    let original = atropos_workloads::smallbank::program();
    let report = repair_program(&original, ConsistencyLevel::EventualConsistency);
    // `--thin` / ATROPOS_THIN=1: a smoke-sized slice for CI.
    let runs = if atropos_bench::thin_slice() { 20 } else { 400 };

    let mut table = Table::new(vec![
        "program",
        "runs",
        "lost-deposits",
        "money-created",
        "broken-snapshot",
        "violated-invariants",
    ]);
    for (name, program) in [("original", &original), ("repaired", &report.repaired)] {
        let ledger = run_deposit_ledger(program, runs);
        let conservation = run_conservation(program, runs);
        let snapshot = run_snapshot_probes(program, runs);
        let kinds =
            u32::from(ledger > 0) + u32::from(conservation > 0) + u32::from(snapshot > 0);
        table.row(vec![
            name.to_owned(),
            format!("{runs}"),
            format!("{ledger}"),
            format!("{conservation}"),
            format!("{snapshot}"),
            format!("{kinds}/3"),
        ]);
    }
    println!("{}", table.render());
    println!("paper: original violates 3/3 under EC, repaired violates 1/3");
    match write_csv("smallbank_invariants", &table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
