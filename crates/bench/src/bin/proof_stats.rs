//! The proof-certificate audit of the proof subsystem: every benchmark's
//! detection sweep re-run with proof logging on, each banked UNSAT
//! certificate re-checked by the independent `atropos_proof` checker, and
//! the logging overhead measured against an identical proofs-off sweep.
//!
//! Two artifacts per run:
//!
//! 1. **`experiments/proof_stats.csv`** — one row per benchmark (the nine
//!    of Table 1 plus the Relay chain scenario): queries, UNSAT
//!    refutations, certificates banked/checked, payload bytes, and the
//!    proofs-on vs proofs-off wall times. `csv_smoke.rs` pins the 100%
//!    checked floor and the ≤ 1.5x TPC-C overhead ceiling against this
//!    file.
//! 2. **`experiments/reports/<benchmark>.md`** — one markdown anomaly
//!    report per benchmark: each transaction tuple's verdict per level
//!    with its audit trail (✅ `Trace` when a dirty verdict's decoded
//!    witness manifested on the simulated cluster, ✅ `Proof Cert` when a
//!    clean verdict's refutations all check), plus the witness schedules
//!    themselves.
//!
//! The timed sweep is the certificate harness's scope: pair mode at EC
//! and CC, triple mode at EC. The reports additionally run pairs at SER
//! (see [`REPORT_SWEEP`]). `ATROPOS_THIN=1` is accepted for CI symmetry
//! with the other bins but thins nothing: the timed sweep is a fraction
//! of the bin's runtime, and the TPC-C ceiling needs the full best-of-N
//! to be pinnable against wall-clock noise.

use std::collections::BTreeMap;
use std::time::Instant;

use atropos_bench::reporting::{
    anomaly_report_markdown, proof_stats_header, proof_stats_row, write_report, ReportRow,
};
use atropos_bench::{engine_from_args, thin_slice, write_csv, Table};
use atropos_detect::{
    replay_verdict, AccessPair, ConsistencyLevel, DetectMode, DetectSession, DetectionEngine,
};
use atropos_sim::{ConcreteSchedule, ScheduleEvent};
use atropos_workloads::{all_benchmarks, chain_scenarios, Benchmark};

/// The timed (and CSV-reported) sweep mirrors `tests/proof_certificates.rs`
/// exactly: pairs at EC and CC, triples at EC.
const TIMED_SWEEP: [(ConsistencyLevel, DetectMode); 3] = [
    (ConsistencyLevel::EventualConsistency, DetectMode::Pairs),
    (ConsistencyLevel::CausalConsistency, DetectMode::Pairs),
    (ConsistencyLevel::EventualConsistency, DetectMode::Triples),
];

/// The markdown reports additionally run pairs at SER — the repair target,
/// where clean verdicts rest on real refutations rather than the static
/// prefilter, so the `Proof Cert` column has certified rows to show. Kept
/// out of the timed sweep: at SER nearly every query is UNSAT, and each
/// certificate embeds its full input CNF, so TPC-C alone banks hundreds of
/// megabytes of blobs there — an audit artifact, not an overhead
/// benchmark.
const REPORT_SWEEP: [(ConsistencyLevel, DetectMode); 4] = [
    (ConsistencyLevel::EventualConsistency, DetectMode::Pairs),
    (ConsistencyLevel::CausalConsistency, DetectMode::Pairs),
    (ConsistencyLevel::Serializable, DetectMode::Pairs),
    (ConsistencyLevel::EventualConsistency, DetectMode::Triples),
];

fn level_name(level: ConsistencyLevel) -> &'static str {
    match level {
        ConsistencyLevel::EventualConsistency => "EC",
        ConsistencyLevel::CausalConsistency => "CC",
        ConsistencyLevel::RepeatableRead => "RR",
        ConsistencyLevel::Serializable => "SER",
    }
}

/// `experiments/reports/` file stem: lowercase, non-alphanumerics to `-`.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// `Generated:` stamp (UTC), from the wall clock via the civil-date
/// algorithm — the toolchain has no date dependency to lean on.
fn utc_stamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (h, m, s) = (secs / 3600 % 24, secs / 60 % 60, secs % 60);
    // Howard Hinnant's civil_from_days, anchored at 1970-01-01.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(mo <= 2);
    format!("{y:04}-{mo:02}-{d:02} {h:02}:{m:02}:{s:02} UTC")
}

/// One full sweep over a benchmark through a fresh engine and session;
/// returns the session (with every verdict, audit, and certificate) plus
/// per-(level, mode) verdicts and wall times and the query/UNSAT totals.
struct SweepOutcome {
    session: DetectSession,
    verdicts: Vec<(ConsistencyLevel, DetectMode, Vec<AccessPair>, f64)>,
    queries: u64,
    unsat: u64,
    seconds: f64,
}

fn sweep(
    b: &Benchmark,
    threads: usize,
    proofs: bool,
    passes: &[(ConsistencyLevel, DetectMode)],
) -> SweepOutcome {
    let engine = DetectionEngine::new(threads).with_proofs(proofs);
    let mut session = DetectSession::new();
    let mut verdicts = Vec::new();
    let (mut queries, mut unsat) = (0u64, 0u64);
    let started = Instant::now();
    for &(level, mode) in passes {
        let pass = Instant::now();
        let (pairs, stats) = engine.detect_with_mode(&b.program, level, mode, &mut session);
        queries += stats.queries;
        unsat += stats.queries - stats.sat_queries;
        verdicts.push((level, mode, pairs, pass.elapsed().as_secs_f64()));
    }
    let seconds = started.elapsed().as_secs_f64();
    SweepOutcome {
        session,
        verdicts,
        queries,
        unsat,
        seconds,
    }
}

/// Renders a decoded witness schedule as fenced-block text: the session
/// layout, then the arbitration order with per-event op detail.
fn render_trace(s: &ConcreteSchedule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "anomaly: {}  ({} sessions, {} replicas)",
        s.anomaly, s.sessions, s.replicas
    );
    for (i, e) in s.events.iter().enumerate() {
        match *e {
            ScheduleEvent::Invoke(op) => {
                let o = &s.ops[op];
                let _ = writeln!(
                    out,
                    "{i:>3}. invoke    s{} {}.{} ({}) @ r{}",
                    o.session,
                    o.txn,
                    o.label,
                    if o.is_write { "write" } else { "read" },
                    o.replica,
                );
            }
            ScheduleEvent::Replicate { op, to } => {
                let o = &s.ops[op];
                let _ = writeln!(out, "{i:>3}. replicate s{} {}.{} -> r{to}", o.session, o.txn, o.label);
            }
        }
    }
    out
}

/// Builds the benchmark's markdown report from the proofs-on sweep.
fn render_report(b: &Benchmark, outcome: &SweepOutcome, generated: &str) -> String {
    // Pass wall time per (level, mode), for the report's `Pass (s)` cells.
    let mut pass_seconds: BTreeMap<(ConsistencyLevel, usize), f64> = BTreeMap::new();
    for (level, mode, _, secs) in &outcome.verdicts {
        pass_seconds.insert((*level, *mode as usize), *secs);
    }
    let mut rows = Vec::new();
    let mut traces = Vec::new();
    for audit in outcome.session.audits() {
        let subject = audit.txns.join(" × ");
        let mode = if audit.txns.len() > 2 {
            DetectMode::Triples
        } else {
            DetectMode::Pairs
        };
        let clean = audit.anomalies == 0;
        // A dirty tuple's trace is audited by replaying one of its
        // verdicts' decoded witnesses on the simulated cluster.
        let mut trace = false;
        if !clean {
            let mut audited = audit.txns.clone();
            audited.sort();
            audited.dedup();
            for (level, pass_mode, pairs, _) in &outcome.verdicts {
                if *level != audit.level || *pass_mode != mode {
                    continue;
                }
                for v in pairs {
                    let mut tuple = vec![v.txn1.clone(), v.txn2.clone()];
                    tuple.sort();
                    tuple.dedup();
                    if !tuple.iter().all(|t| audited.contains(t)) {
                        continue;
                    }
                    if let Some(schedule) =
                        atropos_detect::decode_witness(&b.program, v, audit.level)
                    {
                        if replay_verdict(&b.program, v, audit.level)
                            .is_some_and(|o| o.manifested)
                        {
                            trace = true;
                            traces.push((
                                format!("{subject} @ {} — {}", level_name(audit.level), v.kind),
                                render_trace(&schedule),
                            ));
                        }
                    }
                }
            }
        }
        let certified = clean
            && !audit.proofs.is_empty()
            && audit
                .proofs
                .iter()
                .all(|blob| atropos_proof::check_blob(blob).is_ok());
        rows.push(ReportRow {
            subject,
            level: level_name(audit.level).to_owned(),
            serializable: clean,
            pass_seconds: pass_seconds
                .get(&(audit.level, mode as usize))
                .copied()
                .unwrap_or(0.0),
            trace,
            certified,
        });
    }
    anomaly_report_markdown(b.name, generated, &rows, &traces)
}

fn main() {
    let threads = engine_from_args().threads();
    // Best-of-5 regardless of ATROPOS_THIN: the overhead ratio gates
    // csv_smoke's 1.5x ceiling and fewer repetitions are too noisy to
    // pin against, while the timed sweep is a fraction of the report
    // sweep's cost anyway.
    let thin = thin_slice();
    let reps = 5;
    let generated = utc_stamp();

    let benchmarks: Vec<Benchmark> = all_benchmarks()
        .into_iter()
        .chain(chain_scenarios())
        .collect();
    println!(
        "proof_stats: {} benchmarks, best-of-{reps} timing ({threads} threads{})",
        benchmarks.len(),
        if thin { ", thin" } else { "" },
    );

    let mut table = Table::new(proof_stats_header());
    for b in &benchmarks {
        // Best-of-N wall time per logging mode; fresh engine and session
        // each repetition so both modes do identical (cold) work. Each
        // measurement is three back-to-back sweeps: the single-sweep
        // window (~50ms on TPC-C) is short enough for one scheduler
        // burst to swing the overhead ratio past its pinned ceiling.
        let mut off_seconds = f64::INFINITY;
        let mut on_seconds = f64::INFINITY;
        let mut last = None;
        for _ in 0..reps {
            let off: f64 = (0..3).map(|_| sweep(b, threads, false, &TIMED_SWEEP).seconds).sum();
            off_seconds = off_seconds.min(off / 3.0);
            let mut on_total = 0.0;
            for _ in 0..3 {
                let on = sweep(b, threads, true, &TIMED_SWEEP);
                on_total += on.seconds;
                last = Some(on);
            }
            on_seconds = on_seconds.min(on_total / 3.0);
        }
        let on = last.expect("at least one repetition");

        let blobs = on.session.proof_blobs();
        let checked = blobs
            .iter()
            .filter(|blob| atropos_proof::check_blob(blob).is_ok())
            .count();
        let proof_bytes: usize = blobs.iter().map(Vec::len).sum();
        println!(
            "{}: {} queries, {} unsat, {}/{} certificates check ({} bytes, {:.2}x overhead)",
            b.name,
            on.queries,
            on.unsat,
            checked,
            blobs.len(),
            proof_bytes,
            on_seconds / off_seconds.max(1e-9),
        );
        table.row(proof_stats_row(
            b.name,
            on.queries,
            on.unsat,
            blobs.len(),
            checked,
            proof_bytes,
            off_seconds,
            on_seconds,
        ));

        let audit = sweep(b, threads, true, &REPORT_SWEEP);
        let report = render_report(b, &audit, &generated);
        match write_report(&slug(b.name), &report) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {} report: {e}", b.name),
        }
    }

    println!("{}", table.render());
    match write_csv("proof_stats", &table) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write proof_stats.csv: {e}"),
    }
}
