//! The solver-throughput microbench of ROADMAP item 5: raw CDCL rates on
//! TPC-C and SmallBank detection, written to
//! `experiments/solver_stats.csv`.
//!
//! Three measurements per benchmark:
//!
//! 1. **Detection rates** — a full pair-mode detection pass through a
//!    `DetectionEngine`, reporting propagations/sec and conflicts/sec of
//!    the real oracle.
//! 2. **Learnt-pool hit ratio** — a second pass through the *same* engine
//!    in a fresh session rebuilds every solver; the ratio of clauses it
//!    seeded from the engine's [`atropos_detect::LearntPool`] to the
//!    clauses the first pass published (1.00 = full reuse).
//! 3. **Arena vs. baseline** — the benchmark's *actual* pair (and, in
//!    full mode, triple) detection CNFs are exported with
//!    `problem_clauses` and replayed through the arena solver and the
//!    retained pre-arena baseline (`atropos_sat::reference`) under
//!    identical deterministic assumption schedules, so the two memory
//!    layouts are compared on equal work. The `Speedup` column is the
//!    propagation-throughput ratio `csv_smoke.rs` pins at ≥ 1.5×.
//!
//! `ATROPOS_THIN=1` shrinks the replay round count (CI smoke); the
//! benchmark set is unchanged so the TPC-C floor stays checkable.

use std::time::Instant;

use atropos_bench::reporting::{solver_stats_header, solver_stats_row};
use atropos_bench::{engine_from_args, thin_slice, write_csv, Table};
use atropos_detect::{
    summarize_program, ConsistencyLevel, DetectMode, DetectSession, DetectionEngine, InstanceModel,
    PairSolver, TripleModel, TripleSolver,
};
use atropos_sat::Lit;
use atropos_workloads::all_benchmarks;

/// Deterministic 64-bit LCG (Knuth's MMIX constants) — the assumption
/// schedule must be identical for both solver implementations.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// The assumption schedule for one (CNF, round) cell: up to sixteen
/// distinct-variable literals, pseudo-random but fully determined by the
/// cell coordinates.
fn assumption_schedule(cnf_idx: usize, round: usize, num_vars: usize) -> Vec<(usize, bool)> {
    let mut state = 0x9e3779b97f4a7c15u64 ^ ((cnf_idx as u64) << 32) ^ round as u64;
    let mut picked: Vec<(usize, bool)> = Vec::new();
    while picked.len() < 16.min(num_vars) {
        let v = (lcg(&mut state) % num_vars.max(1) as u64) as usize;
        if picked.iter().all(|&(w, _)| w != v) {
            picked.push((v, lcg(&mut state) & 1 == 0));
        }
    }
    picked
}

/// Replays every CNF for `rounds` rounds of assumption-driven solves on
/// one solver implementation; returns (propagations, seconds, sat count).
/// Loading the clauses is untimed — the measurement is propagation and
/// search, not construction.
macro_rules! replay {
    ($solver:ty, $cnfs:expr, $rounds:expr) => {{
        let mut solvers = Vec::new();
        for cnf in $cnfs.iter() {
            let mut s = <$solver>::new();
            let num_vars = cnf
                .iter()
                .flat_map(|c| c.iter())
                .map(|l| l.var().index() + 1)
                .max()
                .unwrap_or(0);
            let vars: Vec<_> = (0..num_vars).map(|_| s.new_var()).collect();
            for clause in cnf {
                s.add_clause(clause.iter().copied());
            }
            solvers.push((s, vars));
        }
        let started = Instant::now();
        let mut sat = 0u64;
        for round in 0..$rounds {
            for (ci, (s, vars)) in solvers.iter_mut().enumerate() {
                let assumptions: Vec<Lit> = assumption_schedule(ci, round, vars.len())
                    .into_iter()
                    .map(|(v, pos)| Lit::new(vars[v], pos))
                    .collect();
                if s.solve_with_assumptions(&assumptions).is_sat() {
                    sat += 1;
                }
            }
        }
        let seconds = started.elapsed().as_secs_f64();
        let props: u64 = solvers.iter().map(|(s, _)| s.stats().propagations).sum();
        (props, seconds, sat)
    }};
}

/// Exports the benchmark's real detection CNFs: every pair encoding, plus
/// every triple encoding in full mode.
fn detection_cnfs(program: &atropos_dsl::Program, triples: bool) -> Vec<Vec<Vec<Lit>>> {
    let sums = summarize_program(program);
    let mut cnfs = Vec::new();
    for i in 0..sums.len() {
        for j in i..sums.len() {
            let model = InstanceModel::new(&sums[i], &sums[j]);
            cnfs.push(PairSolver::new(&model).problem_clauses());
        }
    }
    if triples {
        for i in 0..sums.len() {
            for j in i..sums.len() {
                for k in j..sums.len() {
                    let tm = TripleModel::new(&sums[i], &sums[j], &sums[k]);
                    cnfs.push(TripleSolver::new(&tm).problem_clauses());
                }
            }
        }
    }
    cnfs
}

fn main() {
    let engine = engine_from_args();
    let thin = thin_slice();
    let level = ConsistencyLevel::EventualConsistency;
    let rounds: usize = if thin { 40 } else { 400 };

    let benchmarks: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| ["TPC-C", "SmallBank"].contains(&b.name))
        .collect();
    println!(
        "solver_stats: {} benchmarks, {} replay rounds ({} threads{})",
        benchmarks.len(),
        rounds,
        engine.threads(),
        if thin { ", thin" } else { "" },
    );

    let mut table = Table::new(solver_stats_header());
    for b in &benchmarks {
        // Detection rates, then the pool hit ratio of a rebuilt second
        // pass through the same engine (fresh session: every solver is
        // reconstructed, so all reuse flows through the learnt pool).
        let bench_engine = DetectionEngine::new(engine.threads());
        let mut first = DetectSession::new();
        let (_, detect) =
            bench_engine.detect_with_mode(&b.program, level, DetectMode::Pairs, &mut first);
        let mut second = DetectSession::new();
        let (_, rebuilt) =
            bench_engine.detect_with_mode(&b.program, level, DetectMode::Pairs, &mut second);
        let published = bench_engine
            .learnt_pool()
            .map(|p| p.published_clauses())
            .unwrap_or(0);
        let pool_hit = if published == 0 {
            0.0
        } else {
            rebuilt.learnt_seeded as f64 / published as f64
        };

        // Identical CNF streams, identical assumption schedules, two
        // memory layouts. Triple encodings stay in thin mode: they are
        // the large-CNF half of the comparison, and dropping them would
        // change what the Speedup column measures.
        let cnfs = detection_cnfs(&b.program, true);
        // Best-of-three per implementation: fresh solvers each repetition
        // do identical work, so the minimum wall time is the least-noise
        // throughput estimate on a shared machine.
        let (mut arena_props, mut arena_secs, mut arena_sat) = (0u64, f64::INFINITY, 0u64);
        let (mut base_props, mut base_secs, mut base_sat) = (0u64, f64::INFINITY, 0u64);
        for _ in 0..3 {
            let (p, s, n) = replay!(atropos_sat::solver::Solver, cnfs, rounds);
            (arena_props, arena_secs, arena_sat) = (p, arena_secs.min(s), n);
            let (p, s, n) = replay!(atropos_sat::reference::Solver, cnfs, rounds);
            (base_props, base_secs, base_sat) = (p, base_secs.min(s), n);
        }
        assert_eq!(
            arena_sat, base_sat,
            "{}: arena and baseline disagree on the replayed verdicts",
            b.name
        );
        let arena_rate = arena_props as f64 / arena_secs.max(1e-9);
        let base_rate = base_props as f64 / base_secs.max(1e-9);
        println!(
            "{}: {} CNFs, arena {:.2e} props/s vs baseline {:.2e} props/s ({:.2}x)",
            b.name,
            cnfs.len(),
            arena_rate,
            base_rate,
            arena_rate / base_rate.max(1e-9),
        );
        table.row(solver_stats_row(
            b.name, &detect, pool_hit, arena_rate, base_rate,
        ));
    }

    println!("{}", table.render());
    match write_csv("solver_stats", &table) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write solver_stats.csv: {e}"),
    }
}
