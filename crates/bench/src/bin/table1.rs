//! Regenerates **Table 1**: statically identified anomalous access pairs in
//! the original (EC / CC / RR) and refactored (AT) benchmark programs, plus
//! analysis + repair time — a second table of detector statistics comparing
//! the incremental per-pair solver against the fresh-solver reference path
//! ([`atropos_detect::detect_anomalies_fresh`]) — and a third table of
//! repair-loop statistics written to `experiments/repair_stats.csv`: the
//! parallel verdict-cached driver ([`atropos_core::repair_with_engine`])
//! against the from-scratch reference
//! ([`atropos_core::repair_with_config_scratch`]), the cross-run hit ratio
//! of a session-shared rule-ablation sweep per benchmark, and a TPC-C
//! thread sweep (1/2/4/8 workers) for the threads-vs-speedup headline —
//! plus a fourth, pair-vs-triple table (`experiments/triple_stats.csv`):
//! anomaly counts and timing of the bounded three-instance mode
//! ([`atropos_detect::DetectMode::Triples`]) against the pair bound on
//! every benchmark and chain scenario — and a fifth, witness-replay table
//! (`experiments/replay_stats.csv`): for every repair run, how many of the
//! initial dirty verdicts decoded into concrete schedules that manifested
//! on the simulated cluster, and how many survived the repair.
//!
//! One [`atropos_detect::DetectionEngine`] (from `--threads` /
//! `ATROPOS_THREADS`, default: available parallelism) serves the whole
//! sweep; sessions are scoped per measurement so every timed run starts
//! from a cold cache and timings stay comparable across thread counts.
//! The exception is the pair-vs-triple table's session, which opts into
//! cross-process persistence when `ATROPOS_CACHE_FILE` names a verdict
//! file (conventionally `experiments/verdict_cache.v1`): it loads warm,
//! and is saved back after the sweep.

use atropos_bench::reporting::{
    detect_stats_header, detect_stats_row, repair_stats_header, repair_stats_row,
    replay_stats_header, replay_stats_row, triple_stats_header, triple_stats_row,
};
use atropos_bench::{engine_from_args, persist_session_from_env, session_from_env, write_csv, Table};
use atropos_core::{
    ablation_sweep, repair_with_config_scratch, repair_with_engine, DetectMode, RepairConfig,
    RepairReport,
};
use atropos_detect::{
    detect_anomalies_at_levels, detect_anomalies_fresh, ConsistencyLevel, DetectSession,
    DetectionEngine,
};
use atropos_workloads::{all_benchmarks, chain_scenarios, Benchmark};

/// Thread counts of the TPC-C thread sweep (the headline compares 4
/// workers against the serial PR 3-shaped driver at 1).
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` cached repair at one thread count, each rep on a fresh
/// (cold) session so the measurement matches a single-run driver.
fn best_cached(b: &Benchmark, engine: &DetectionEngine, reps: usize) -> (RepairReport, f64) {
    let config = RepairConfig::default();
    let mut best: Option<(RepairReport, f64)> = None;
    for _ in 0..reps {
        let mut session = DetectSession::new();
        let report = repair_with_engine(&b.program, &config, engine, &mut session);
        let seconds = report.seconds;
        if best.as_ref().is_none_or(|(_, s)| seconds < *s) {
            best = Some((report, seconds));
        }
    }
    best.expect("at least one rep")
}

fn main() {
    // `--thin` / ATROPOS_THIN=1: skip the deliberately slow fresh-solver and
    // from-scratch-repair reference runs so CI smoke runs stay cheap; the
    // Table 1 columns themselves are identical either way.
    let thin = atropos_bench::thin_slice();
    let engine = engine_from_args();
    let levels = [
        ConsistencyLevel::EventualConsistency,
        ConsistencyLevel::CausalConsistency,
        ConsistencyLevel::RepeatableRead,
    ];
    let mut table = Table::new(vec![
        "Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time (s)", "Repaired",
    ]);
    let mut stats_table = Table::new(detect_stats_header());
    let mut repair_table = Table::new(repair_stats_header());
    let mut replay_table = Table::new(replay_stats_header());
    let mut total_ec = 0usize;
    let mut total_fixed = 0usize;
    let mut cc_below_ec = 0usize;
    let (mut incr_total, mut fresh_total) = (0.0f64, 0.0f64);
    let (mut repair_cached_total, mut repair_scratch_total) = (0.0f64, 0.0f64);
    let mut tpcc_repair_speedup = 0.0f64;
    let mut tpcc_scratch_seconds = f64::INFINITY;
    let mut cross_run_ratios: Vec<(String, f64)> = Vec::new();
    for b in all_benchmarks() {
        // One shared-solver pass produces all three consistency columns.
        let (by_level, stats) = detect_anomalies_at_levels(&b.program, &levels);
        let ec = &by_level[&ConsistencyLevel::EventualConsistency];
        let cc = &by_level[&ConsistencyLevel::CausalConsistency];
        let rr = &by_level[&ConsistencyLevel::RepeatableRead];
        cc_below_ec += usize::from(cc.len() < ec.len());
        // Reference path, for the headline speedup (full runs only).
        if !thin {
            let fresh_seconds: f64 = levels
                .iter()
                .map(|&l| detect_anomalies_fresh(&b.program, l).1.seconds)
                .sum();
            incr_total += stats.seconds;
            fresh_total += fresh_seconds;
            stats_table.row(detect_stats_row(b.name, &stats, fresh_seconds));
        }

        let (report, cached_seconds) = best_cached(&b, &engine, if thin { 1 } else { 3 });
        // Witness replay (pair mode): the EC row reuses the repair above;
        // the CC row runs its own repair so the Level column carries both
        // consistency levels the thin-sliced CI harness exercises.
        replay_table.row(replay_stats_row(b.name, DetectMode::Pairs, "EC", &report));
        let cc_config = RepairConfig {
            level: ConsistencyLevel::CausalConsistency,
            ..RepairConfig::default()
        };
        let mut cc_session = DetectSession::new();
        let cc_report = repair_with_engine(&b.program, &cc_config, &engine, &mut cc_session);
        replay_table.row(replay_stats_row(b.name, DetectMode::Pairs, "CC", &cc_report));
        if !thin {
            // From-scratch reference repair, for the repair-loop speedup.
            // Both drivers are timed as the best of three runs so one
            // scheduler hiccup cannot distort the reported ratio.
            let mut scratch_seconds = f64::INFINITY;
            for _ in 0..3 {
                let scratch = repair_with_config_scratch(&b.program, &RepairConfig::default());
                scratch_seconds = scratch_seconds.min(scratch.seconds);
            }
            repair_cached_total += cached_seconds;
            repair_scratch_total += scratch_seconds;
            if b.name == "TPC-C" {
                tpcc_repair_speedup = scratch_seconds / cached_seconds.max(1e-9);
                tpcc_scratch_seconds = scratch_seconds;
            }
            // The cross-run hit ratio of a session-shared ablation sweep:
            // all six configurations repair the same program through one
            // session, so later runs answer earlier runs' shapes warm.
            let mut sweep_session = DetectSession::new();
            ablation_sweep(&b.program, &engine, &mut sweep_session);
            let cross = sweep_session.cache_stats().cross_run_hit_ratio();
            cross_run_ratios.push((b.name.to_owned(), cross));
            repair_table.row(repair_stats_row(
                b.name,
                &report,
                engine.threads(),
                DetectMode::Pairs,
                cross,
                cached_seconds,
                scratch_seconds,
            ));
        }
        total_ec += ec.len();
        total_fixed += ec.len().saturating_sub(report.remaining.len());
        table.row(vec![
            b.name.to_owned(),
            format!("{}", b.program.transactions.len()),
            format!("{}, {}", b.program.schemas.len(), report.repaired.schemas.len()),
            format!("{}", ec.len()),
            format!("{}", report.remaining.len()),
            format!("{}", cc.len()),
            format!("{}", rr.len()),
            format!("{:.2}", report.seconds),
            format!("{:.0}%", report.repair_ratio() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Average repair rate across all anomalies: {:.0}% (paper reports 74%)",
        100.0 * total_fixed as f64 / total_ec.max(1) as f64
    );
    println!(
        "CC strictly below EC on {cc_below_ec}/9 benchmarks (causal session axioms prune \
         non-monotonic reads)"
    );

    // Pair-vs-triple detection at EC: all nine benchmarks plus the chain
    // scenarios, through one session — so the triple pass's time is the
    // *marginal* cost of the wider bound (its pair phase replays the pair
    // pass's warm verdicts), and the whole session can warm-start across
    // processes via ATROPOS_CACHE_FILE (experiments/verdict_cache.v1).
    let mut triple_table = Table::new(triple_stats_header());
    let mut triple_session = session_from_env();
    let ec = ConsistencyLevel::EventualConsistency;
    let mut chain_extras = 0usize;
    for b in all_benchmarks().into_iter().chain(chain_scenarios()) {
        let t0 = std::time::Instant::now();
        let (pair, _) = engine.detect(&b.program, ec, &mut triple_session);
        let pair_seconds = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let (triple, tstats) =
            engine.detect_with_mode(&b.program, ec, DetectMode::Triples, &mut triple_session);
        let triple_seconds = t0.elapsed().as_secs_f64();
        chain_extras += triple.len().saturating_sub(pair.len());
        // Repaired ratio: how much of the triple bound the repair loop
        // (pair rules plus the `.T` chain rules) eliminates. On its own
        // cold session — `repair_with_engine` sweeps its session to the
        // input program, which would evict the other benchmarks' warm
        // verdicts from the shared (persistable) triple session.
        let triple_config = RepairConfig {
            mode: DetectMode::Triples,
            ..RepairConfig::default()
        };
        let mut repair_session = DetectSession::new();
        let triple_report =
            repair_with_engine(&b.program, &triple_config, &engine, &mut repair_session);
        replay_table.row(replay_stats_row(
            b.name,
            DetectMode::Triples,
            "EC",
            &triple_report,
        ));
        triple_table.row(triple_stats_row(
            b.name,
            "EC",
            pair.len(),
            triple.len(),
            tstats.triples,
            triple_report.repair_ratio(),
            pair_seconds,
            triple_seconds,
        ));
    }
    println!("\nPair-vs-triple detection (bounded three-instance mode, marginal cost):");
    println!("{}", triple_table.render());
    println!(
        "Triple mode found {chain_extras} chain anomalies beyond the pair bound \
         (observer chains, write-skew cycles, fractured-read chains)"
    );
    persist_session_from_env(&triple_session);

    println!("\nWitness replay (dirty verdicts decoded to concrete schedules on the sim):");
    println!("{}", replay_table.render());

    let mut outputs = vec![
        ("table1", &table),
        ("triple_stats", &triple_table),
        ("replay_stats", &replay_table),
    ];
    if thin {
        println!("(thin slice: fresh-solver and from-scratch-repair reference runs skipped)");
    } else {
        println!("\nDetector statistics (incremental vs fresh-solver-per-query):");
        println!("{}", stats_table.render());
        println!(
            "Detection total: incremental {incr_total:.3}s vs fresh {fresh_total:.3}s \
             ({:.1}x speedup)",
            fresh_total / incr_total.max(1e-9)
        );

        // Threads-vs-speedup: TPC-C repaired at 1/2/4/8 workers (best of
        // three cold-session runs each), appended to the same repair-stats
        // table so the CSV carries the whole sweep. The 1-worker row *is*
        // the PR 3 serial cached driver.
        let tpcc = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "TPC-C")
            .expect("TPC-C registered");
        let mut sweep_seconds: Vec<(usize, f64)> = Vec::new();
        for threads in SWEEP_THREADS {
            let sweep_engine = DetectionEngine::new(threads);
            let (report, seconds) = best_cached(&tpcc, &sweep_engine, 3);
            sweep_seconds.push((threads, seconds));
            repair_table.row(repair_stats_row(
                &format!("TPC-C (t={threads})"),
                &report,
                threads,
                DetectMode::Pairs,
                0.0,
                seconds,
                tpcc_scratch_seconds,
            ));
        }

        // One triple-mode repair row, so the Mode column carries both
        // values: the Relay chain scenario driven by DetectMode::Triples
        // (whose observer chain survives repair into the AT-SC set).
        let relay = chain_scenarios()
            .into_iter()
            .find(|b| b.name == "Relay")
            .expect("Relay scenario registered");
        let triple_config = RepairConfig {
            mode: DetectMode::Triples,
            ..RepairConfig::default()
        };
        // Both drivers best-of-3 on cold sessions, like every other row.
        let mut relay_best: Option<(RepairReport, f64)> = None;
        for _ in 0..3 {
            let mut relay_session = DetectSession::new();
            let report =
                repair_with_engine(&relay.program, &triple_config, &engine, &mut relay_session);
            let seconds = report.seconds;
            if relay_best.as_ref().is_none_or(|(_, s)| seconds < *s) {
                relay_best = Some((report, seconds));
            }
        }
        let (relay_report, relay_cached) = relay_best.expect("three reps ran");
        let mut relay_scratch = f64::INFINITY;
        for _ in 0..3 {
            relay_scratch = relay_scratch
                .min(repair_with_config_scratch(&relay.program, &triple_config).seconds);
        }
        repair_table.row(repair_stats_row(
            "Relay (triples)",
            &relay_report,
            engine.threads(),
            DetectMode::Triples,
            0.0,
            relay_cached,
            relay_scratch,
        ));

        println!("\nRepair-loop statistics (verdict-cached vs from-scratch driver):");
        println!("{}", repair_table.render());
        println!(
            "Repair total: cached {repair_cached_total:.3}s vs scratch \
             {repair_scratch_total:.3}s ({:.1}x speedup); TPC-C speedup {:.1}x",
            repair_scratch_total / repair_cached_total.max(1e-9),
            tpcc_repair_speedup
        );
        let serial = sweep_seconds
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, s)| *s)
            .unwrap_or(f64::INFINITY);
        let sweep_line: Vec<String> = sweep_seconds
            .iter()
            .map(|(t, s)| format!("{t} thr {:.2}x ({s:.3}s)", serial / s.max(1e-9)))
            .collect();
        println!(
            "TPC-C thread sweep vs serial cached driver: {}",
            sweep_line.join(", ")
        );
        let mean_cross: f64 = cross_run_ratios.iter().map(|(_, r)| r).sum::<f64>()
            / cross_run_ratios.len().max(1) as f64;
        println!(
            "Ablation-sweep cross-run hit ratio (one shared session per benchmark): \
             mean {mean_cross:.2}, per benchmark {:?}",
            cross_run_ratios
                .iter()
                .map(|(n, r)| format!("{n}: {r:.2}"))
                .collect::<Vec<_>>()
        );
        outputs.push(("detect_stats", &stats_table));
        outputs.push(("repair_stats", &repair_table));
    }
    for (name, t) in outputs {
        match write_csv(name, t) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
    }
}
