//! Regenerates **Table 1**: statically identified anomalous access pairs in
//! the original (EC / CC / RR) and refactored (AT) benchmark programs, plus
//! analysis + repair time — a second table of detector statistics comparing
//! the incremental per-pair solver against the fresh-solver reference path
//! ([`atropos_detect::detect_anomalies_fresh`]) — and a third table of
//! repair-loop statistics comparing the near-incremental verdict-cached
//! driver ([`atropos_core::repair_with_config`]) against the from-scratch
//! reference ([`atropos_core::repair_with_config_scratch`]), written to
//! `experiments/repair_stats.csv`.

use atropos_bench::reporting::{
    detect_stats_header, detect_stats_row, repair_stats_header, repair_stats_row,
};
use atropos_bench::{write_csv, Table};
use atropos_core::{repair_program, repair_with_config_scratch, RepairConfig};
use atropos_detect::{detect_anomalies_at_levels, detect_anomalies_fresh, ConsistencyLevel};
use atropos_workloads::all_benchmarks;

fn main() {
    // `--thin` / ATROPOS_THIN=1: skip the deliberately slow fresh-solver and
    // from-scratch-repair reference runs so CI smoke runs stay cheap; the
    // Table 1 columns themselves are identical either way.
    let thin = atropos_bench::thin_slice();
    let levels = [
        ConsistencyLevel::EventualConsistency,
        ConsistencyLevel::CausalConsistency,
        ConsistencyLevel::RepeatableRead,
    ];
    let mut table = Table::new(vec![
        "Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time (s)", "Repaired",
    ]);
    let mut stats_table = Table::new(detect_stats_header());
    let mut repair_table = Table::new(repair_stats_header());
    let mut total_ec = 0usize;
    let mut total_fixed = 0usize;
    let mut cc_below_ec = 0usize;
    let (mut incr_total, mut fresh_total) = (0.0f64, 0.0f64);
    let (mut repair_cached_total, mut repair_scratch_total) = (0.0f64, 0.0f64);
    let mut tpcc_repair_speedup = 0.0f64;
    for b in all_benchmarks() {
        // One shared-solver pass produces all three consistency columns.
        let (by_level, stats) = detect_anomalies_at_levels(&b.program, &levels);
        let ec = &by_level[&ConsistencyLevel::EventualConsistency];
        let cc = &by_level[&ConsistencyLevel::CausalConsistency];
        let rr = &by_level[&ConsistencyLevel::RepeatableRead];
        cc_below_ec += usize::from(cc.len() < ec.len());
        // Reference path, for the headline speedup (full runs only).
        if !thin {
            let fresh_seconds: f64 = levels
                .iter()
                .map(|&l| detect_anomalies_fresh(&b.program, l).1.seconds)
                .sum();
            incr_total += stats.seconds;
            fresh_total += fresh_seconds;
            stats_table.row(detect_stats_row(b.name, &stats, fresh_seconds));
        }

        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        if !thin {
            // From-scratch reference repair, for the repair-loop speedup.
            // Both drivers are timed as the best of three runs so one
            // scheduler hiccup cannot distort the reported ratio.
            let mut cached_seconds = report.seconds;
            for _ in 0..2 {
                let again = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
                cached_seconds = cached_seconds.min(again.seconds);
            }
            let mut scratch_seconds = f64::INFINITY;
            for _ in 0..3 {
                let scratch = repair_with_config_scratch(&b.program, &RepairConfig::default());
                scratch_seconds = scratch_seconds.min(scratch.seconds);
            }
            repair_cached_total += cached_seconds;
            repair_scratch_total += scratch_seconds;
            if b.name == "TPC-C" {
                tpcc_repair_speedup = scratch_seconds / cached_seconds.max(1e-9);
            }
            repair_table.row(repair_stats_row(b.name, &report, cached_seconds, scratch_seconds));
        }
        total_ec += ec.len();
        total_fixed += ec.len().saturating_sub(report.remaining.len());
        table.row(vec![
            b.name.to_owned(),
            format!("{}", b.program.transactions.len()),
            format!("{}, {}", b.program.schemas.len(), report.repaired.schemas.len()),
            format!("{}", ec.len()),
            format!("{}", report.remaining.len()),
            format!("{}", cc.len()),
            format!("{}", rr.len()),
            format!("{:.2}", report.seconds),
            format!("{:.0}%", report.repair_ratio() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Average repair rate across all anomalies: {:.0}% (paper reports 74%)",
        100.0 * total_fixed as f64 / total_ec.max(1) as f64
    );
    println!(
        "CC strictly below EC on {cc_below_ec}/9 benchmarks (causal session axioms prune \
         non-monotonic reads)"
    );
    let mut outputs = vec![("table1", &table)];
    if thin {
        println!("(thin slice: fresh-solver and from-scratch-repair reference runs skipped)");
    } else {
        println!("\nDetector statistics (incremental vs fresh-solver-per-query):");
        println!("{}", stats_table.render());
        println!(
            "Detection total: incremental {incr_total:.3}s vs fresh {fresh_total:.3}s \
             ({:.1}x speedup)",
            fresh_total / incr_total.max(1e-9)
        );
        outputs.push(("detect_stats", &stats_table));

        println!("\nRepair-loop statistics (verdict-cached vs from-scratch driver):");
        println!("{}", repair_table.render());
        println!(
            "Repair total: cached {repair_cached_total:.3}s vs scratch \
             {repair_scratch_total:.3}s ({:.1}x speedup); TPC-C speedup {:.1}x",
            repair_scratch_total / repair_cached_total.max(1e-9),
            tpcc_repair_speedup
        );
        outputs.push(("repair_stats", &repair_table));
    }
    for (name, t) in outputs {
        match write_csv(name, t) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
    }
}
