//! Regenerates **Table 1**: statically identified anomalous access pairs in
//! the original (EC / CC / RR) and refactored (AT) benchmark programs, plus
//! analysis + repair time.

use atropos_bench::{write_csv, Table};
use atropos_core::repair_program;
use atropos_detect::{detect_anomalies, ConsistencyLevel};
use atropos_workloads::all_benchmarks;

fn main() {
    let mut table = Table::new(vec![
        "Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time (s)", "Repaired",
    ]);
    let mut total_ec = 0usize;
    let mut total_fixed = 0usize;
    for b in all_benchmarks() {
        let ec = detect_anomalies(&b.program, ConsistencyLevel::EventualConsistency);
        let cc = detect_anomalies(&b.program, ConsistencyLevel::CausalConsistency);
        let rr = detect_anomalies(&b.program, ConsistencyLevel::RepeatableRead);
        let report = repair_program(&b.program, ConsistencyLevel::EventualConsistency);
        total_ec += ec.len();
        total_fixed += ec.len().saturating_sub(report.remaining.len());
        table.row(vec![
            b.name.to_owned(),
            format!("{}", b.program.transactions.len()),
            format!("{}, {}", b.program.schemas.len(), report.repaired.schemas.len()),
            format!("{}", ec.len()),
            format!("{}", report.remaining.len()),
            format!("{}", cc.len()),
            format!("{}", rr.len()),
            format!("{:.2}", report.seconds),
            format!("{:.0}%", report.repair_ratio() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Average repair rate across all anomalies: {:.0}% (paper reports 74%)",
        100.0 * total_fixed as f64 / total_ec.max(1) as f64
    );
    match write_csv("table1", &table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
