//! The batch corpus experiment: ingest the DSL programs under
//! `examples/corpus/`, duplicate them (a fleet ships near-identical
//! transaction shapes), and measure the `CorpusService`'s programs/sec
//! against the cold program-at-a-time baseline — the headline throughput
//! number of ROADMAP item 2, written to `experiments/corpus_stats.csv`.
//!
//! The bin also exercises the sharded `verdict_cache.v2` store end to
//! end: the warm session's verdicts are union-merged into
//! `experiments/verdict_store.v2/`, compacted, and reloaded.

use std::path::PathBuf;
use std::time::Instant;

use atropos_bench::reporting::{corpus_stats_header, corpus_stats_row};
use atropos_bench::{engine_from_args, thin_slice, write_csv, Table};
use atropos_detect::corpus::{CorpusService, CorpusStore, EvictionPolicy};
use atropos_detect::{ConsistencyLevel, DetectMode, DetectSession};

/// The committed corpus inputs, from the workspace root (bins run there;
/// walk ancestors for `Cargo.lock` like the CSV writer does, so the bin
/// also works from a crate directory).
fn corpus_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("examples/corpus");
        }
        if !dir.pop() {
            return PathBuf::from("examples/corpus");
        }
    }
}

fn main() {
    let engine = engine_from_args();
    let level = ConsistencyLevel::EventualConsistency;
    let thin = thin_slice();

    // Parse the committed corpus once (the service re-clones per run).
    let mut seed = CorpusService::new(engine.clone());
    let dir = corpus_dir();
    let ingested = seed
        .ingest_dir(&dir)
        .unwrap_or_else(|e| panic!("ingest {}: {e}", dir.display()));
    assert!(ingested > 0, "no .dsl programs under {}", dir.display());
    // Thin mode keeps the shape of the experiment on a smoke-sized slice:
    // the three smallest workloads instead of all ten.
    let base: Vec<(String, atropos_dsl::Program)> = if thin {
        seed.programs()
            .iter()
            .filter(|(n, _)| ["sibench", "courseware", "relay"].contains(&n.as_str()))
            .cloned()
            .collect()
    } else {
        seed.programs().to_vec()
    };
    println!(
        "corpus: {} programs from {} ({} threads{})",
        base.len(),
        dir.display(),
        engine.threads(),
        if thin { ", thin" } else { "" },
    );

    let mut table = Table::new(corpus_stats_header());
    let mut warm_session_for_store: Option<CorpusService> = None;
    for dup in [1usize, 4] {
        // A fleet corpus: `dup` near-identical copies of every program.
        let corpus: Vec<(String, atropos_dsl::Program)> = (0..dup)
            .flat_map(|i| {
                base.iter()
                    .map(move |(n, p)| (format!("{n}#{i}"), p.clone()))
            })
            .collect();

        // Cold baseline: each program detected in isolation — a fresh
        // session per program, same engine.
        let cold_started = Instant::now();
        let cold: Vec<Vec<atropos_detect::AccessPair>> = corpus
            .iter()
            .map(|(_, p)| {
                let mut session = DetectSession::new();
                engine.detect(p, level, &mut session).0
            })
            .collect();
        let cold_seconds = cold_started.elapsed().as_secs_f64();

        // Warm service: one global plan, each unique shape solved once.
        let mut service = CorpusService::new(engine.clone());
        for (n, p) in &corpus {
            service.add_program(n.clone(), p.clone());
        }
        let report = service.analyse(level, DetectMode::Pairs).expect("analyse");

        // The service is an optimization, never a different oracle.
        for (isolated, v) in cold.iter().zip(&report.verdicts) {
            assert_eq!(
                format!("{isolated:?}"),
                format!("{:?}", v.verdicts),
                "{}: corpus verdicts must match isolation",
                v.name
            );
        }

        let verdicts: usize = report.verdicts.iter().map(|v| v.verdicts.len()).sum();
        table.row(corpus_stats_row(
            &format!("Corpus x{dup}"),
            &report.stats,
            verdicts,
            cold_seconds,
        ));
        println!(
            "x{dup}: {} programs, {} pair slots -> {} unique solves, cold {:.3}s, warm {:.3}s",
            report.stats.programs,
            report.stats.pair_slots,
            report.stats.unique_pairs,
            cold_seconds,
            report.stats.seconds,
        );
        warm_session_for_store = Some(service);
    }

    // Store roundtrip: merge the warm verdicts into the sharded v2 store,
    // compact it, and prove a reload answers the whole corpus warm.
    let store_path = corpus_dir()
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("experiments/verdict_store.v2"))
        .expect("workspace root");
    if let Some(parent) = store_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let service = warm_session_for_store.expect("at least one run");
    let store = CorpusStore::open(&store_path).expect("open v2 store");
    let added = store
        .merge_session(service.session())
        .expect("merge into store");
    let compaction = store
        .compact(&EvictionPolicy::default())
        .expect("compact store");
    let reloaded = DetectSession::load_from(&store_path).expect("reload store");
    println!(
        "store {}: +{added} records, compaction kept {} / evicted {}, reload holds {} pair + {} triple entries",
        store_path.display(),
        compaction.kept,
        compaction.evicted,
        reloaded.len(),
        reloaded.triple_len(),
    );
    assert!(!reloaded.is_empty(), "store reload must carry verdicts");

    println!("{}", table.render());
    match write_csv("corpus_stats", &table) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
