//! The proof-subsystem acceptance harness: across all nine Table 1
//! workloads plus the Relay chain scenario, every UNSAT verdict of the
//! certificate sweep (pair mode at EC and CC, triple mode at EC) must
//! yield a certificate the independent `atropos_proof` checker accepts —
//! and the banked certificates must be byte-identical at 1, 2, and 8
//! engine threads, because the engine merges worker outcomes in
//! deterministic plan order and each solver's proof log depends only on
//! its own query schedule.

use atropos_detect::{ConsistencyLevel, DetectMode, DetectSession, DetectionEngine};
use atropos_workloads::{all_benchmarks, chain_scenarios, Benchmark};

const SWEEP: [(ConsistencyLevel, DetectMode); 3] = [
    (ConsistencyLevel::EventualConsistency, DetectMode::Pairs),
    (ConsistencyLevel::CausalConsistency, DetectMode::Pairs),
    (ConsistencyLevel::EventualConsistency, DetectMode::Triples),
];

fn benchmarks() -> Vec<Benchmark> {
    all_benchmarks().into_iter().chain(chain_scenarios()).collect()
}

/// One full sweep through a fresh engine and session; returns the banked
/// certificates (sorted cache-key order) and the sweep's UNSAT total.
fn sweep(b: &Benchmark, threads: usize) -> (Vec<Vec<u8>>, u64) {
    let engine = DetectionEngine::new(threads).with_proofs(true);
    let mut session = DetectSession::new();
    let mut unsat = 0u64;
    for (level, mode) in SWEEP {
        let (_, stats) = engine.detect_with_mode(&b.program, level, mode, &mut session);
        unsat += stats.queries - stats.sat_queries;
    }
    (session.proof_blobs(), unsat)
}

#[test]
fn every_unsat_verdict_yields_a_checking_certificate() {
    let mut total = 0usize;
    for b in &benchmarks() {
        let (blobs, unsat) = sweep(b, 1);
        assert_eq!(
            blobs.len() as u64,
            unsat,
            "{}: every UNSAT answer must bank exactly one certificate",
            b.name
        );
        for (i, blob) in blobs.iter().enumerate() {
            let report = atropos_proof::check_blob(blob)
                .unwrap_or_else(|e| panic!("{}: certificate {i} rejected: {e}", b.name));
            assert!(report.rup_checks > 0, "{}: certificate {i} proved nothing", b.name);
        }
        total += blobs.len();
    }
    assert!(total > 0, "the sweep must refute something somewhere");
}

#[test]
fn certificates_are_byte_identical_across_thread_counts() {
    for b in &benchmarks() {
        let (baseline, _) = sweep(b, 1);
        for threads in [2usize, 8] {
            let (blobs, _) = sweep(b, threads);
            assert_eq!(
                blobs, baseline,
                "{}: certificates diverge at {threads} threads",
                b.name
            );
        }
    }
}
