//! Smoke tests pinning the one CSV shape every experiment artifact shares:
//! a header row led by `Benchmark`, and data rows matching the header's
//! arity — whether the file comes from the figure bins (`Table::to_csv`),
//! the Criterion micro-benches (`write_bench_csv`), or the detector-stats
//! table `table1` emits.

use atropos_bench::reporting::{
    bench_results_table, corpus_stats_header, corpus_stats_row, detect_stats_header,
    detect_stats_row, parse_csv, proof_stats_header, proof_stats_row, repair_stats_header,
    repair_stats_row, replay_stats_header, replay_stats_row, solver_stats_header,
    solver_stats_row, triple_stats_header, triple_stats_row, write_bench_csv,
};
use atropos_bench::Table;
use atropos_detect::DetectStats;
use criterion::BenchResult;

fn assert_csv_shape(rows: &[Vec<String>], what: &str) {
    assert!(rows.len() >= 2, "{what}: want header + data, got {rows:?}");
    assert_eq!(rows[0][0], "Benchmark", "{what}: header leads with Benchmark");
    let arity = rows[0].len();
    assert!(arity >= 2, "{what}: want at least a name and a value column");
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), arity, "{what}: row {i} arity");
    }
}

fn sample_results() -> Vec<BenchResult> {
    vec![
        BenchResult {
            id: "detect/smallbank-ec".into(),
            min: 1.25e-3,
            median: 1.4e-3,
            mean: 1.5e-3,
            max: 2.0e-3,
            samples: 10,
            iters: 4,
        },
        BenchResult {
            id: "detect, with commas".into(),
            min: 2.0e-6,
            median: 2.5e-6,
            mean: 3.0e-6,
            max: 4.0e-6,
            samples: 20,
            iters: 1024,
        },
    ]
}

#[test]
fn bench_csv_matches_table1_shape() {
    let bench = bench_results_table(&sample_results());
    let parsed = parse_csv(&bench.to_csv());
    assert_csv_shape(&parsed, "bench CSV");
    assert_eq!(parsed[1][0], "detect/smallbank-ec");
    assert_eq!(parsed[2][0], "detect, with commas", "quoted cells round-trip");
    // The criterion shim's median lands between Min and Mean — part of the
    // CSV contract since the shim learned to report it.
    let header: Vec<&str> = parsed[0].iter().map(String::as_str).collect();
    assert_eq!(header[1..4], ["Min (s)", "Median (s)", "Mean (s)"], "{header:?}");
    assert_eq!(parsed[1][2], "0.001400000");

    // The same invariant table1 itself satisfies (the header is the
    // contract; the committed artifact lives under the gitignored
    // experiments/, so validate the generated file when present).
    let mut table1 = Table::new(vec!["Benchmark", "#Txns", "EC", "AT"]);
    table1.row(vec!["TPC-C", "5", "87", "15"]);
    assert_csv_shape(&parse_csv(&table1.to_csv()), "table1-shaped CSV");
    for candidate in ["../../experiments/table1.csv", "experiments/table1.csv"] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            assert_csv_shape(&parse_csv(&text), candidate);
        }
    }
}

#[test]
fn detect_stats_rows_match_their_header() {
    let mut t = Table::new(detect_stats_header());
    let stats = DetectStats {
        pairs: 25,
        triples: 0,
        queries: 310,
        sat_queries: 120,
        memo_hits: 40,
        clauses_encoded: 100_000,
        clauses_fresh_equivalent: 4_000_000,
        conflicts: 900,
        propagations: 1_000_000,
        decisions: 40_000,
        learnt_seeded: 0,
        seconds: 0.15,
    };
    t.row(detect_stats_row("TPC-C", &stats, 1.1));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "detect-stats CSV");
    assert_eq!(parsed[1][1], "310");
    assert_eq!(parsed[1].last().unwrap(), "7.3x");
}

#[test]
fn solver_stats_rows_match_their_header() {
    let mut t = Table::new(solver_stats_header());
    let stats = DetectStats {
        queries: 101,
        propagations: 69_000,
        conflicts: 0,
        seconds: 0.02,
        ..DetectStats::default()
    };
    t.row(solver_stats_row("TPC-C", &stats, 1.0, 9.0e6, 4.5e6));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "solver-stats CSV");
    assert_eq!(parsed[1][1], "101");
    assert_eq!(parsed[1][5], "1.00");
    assert_eq!(parsed[1].last().unwrap(), "2.00x");

    // The generated artifact, when present (CI runs the `solver_stats`
    // bin first): shape, plus the tentpole's acceptance floor — the
    // arena solver must hold ≥ 1.5× the baseline's propagation
    // throughput on the replayed TPC-C detection CNFs.
    for candidate in [
        "../../experiments/solver_stats.csv",
        "experiments/solver_stats.csv",
    ] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            let parsed = parse_csv(&text);
            assert_csv_shape(&parsed, candidate);
            let tpcc = parsed
                .iter()
                .skip(1)
                .find(|r| r[0] == "TPC-C")
                .unwrap_or_else(|| panic!("{candidate}: no TPC-C row"));
            let speedup: f64 = tpcc
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap_or_else(|e| panic!("{candidate}: bad Speedup cell: {e}"));
            assert!(
                speedup >= 1.5,
                "{candidate}: TPC-C arena speedup {speedup}x is under the 1.5x floor"
            );
        }
    }
}

#[test]
fn repair_stats_rows_match_their_header() {
    // A real (tiny) cached repair provides the row's RepairReport; the
    // scratch wall time is synthetic so the speedup cell shape is pinned.
    let p = atropos_dsl::parse(
        "schema C { id: int key, cnt: int }
         txn bump(k: int) {
             x := select cnt from C where id = k;
             update C set cnt = x.cnt + 1 where id = k;
             return 0;
         }",
    )
    .unwrap();
    let report = atropos_core::repair_program(
        &p,
        atropos_detect::ConsistencyLevel::EventualConsistency,
    );
    let mut t = Table::new(repair_stats_header());
    t.row(repair_stats_row(
        "Counter",
        &report,
        4,
        atropos_core::DetectMode::Pairs,
        0.5,
        report.seconds,
        1.0,
    ));
    t.row(repair_stats_row(
        "Counter (triples)",
        &report,
        4,
        atropos_core::DetectMode::Triples,
        0.0,
        report.seconds,
        1.0,
    ));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "repair-stats CSV");
    // The parallel-engine columns are part of the CSV contract: a thread
    // count right after the benchmark name, the detection mode next to it,
    // and the session-shared ablation sweep's cross-run hit ratio before
    // the timings.
    let header: Vec<&str> = parsed[0].iter().map(String::as_str).collect();
    assert_eq!(header[1], "Threads");
    assert_eq!(header[2], "Mode");
    assert!(header.contains(&"Cross-run ratio"), "{header:?}");
    assert_eq!(parsed[1][0], "Counter");
    assert_eq!(parsed[1][1], "4");
    assert_eq!(parsed[1][2], "pairs");
    assert_eq!(parsed[2][2], "triples");
    let cross_idx = header.iter().position(|h| *h == "Cross-run ratio").unwrap();
    assert_eq!(parsed[1][cross_idx], "0.50");
    // Oracle passes = run + reused, and the speedup cell carries the `x`.
    let passes: u64 = parsed[1][3].parse().unwrap();
    let run: u64 = parsed[1][4].parse().unwrap();
    let reused: u64 = parsed[1][5].parse().unwrap();
    assert_eq!(passes, run + reused);
    assert!(parsed[1].last().unwrap().ends_with('x'));

    // Validate the generated artifact when a full `table1` run produced it.
    for candidate in [
        "../../experiments/repair_stats.csv",
        "experiments/repair_stats.csv",
    ] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            let rows = parse_csv(&text);
            assert_csv_shape(&rows, candidate);
            assert_eq!(rows[0][1], "Threads", "{candidate}");
            assert_eq!(rows[0][2], "Mode", "{candidate}");
            assert!(
                rows[0].iter().any(|h| h == "Cross-run ratio"),
                "{candidate}: {:?}",
                rows[0]
            );
        }
    }
}

#[test]
fn triple_stats_rows_match_their_header() {
    let mut t = Table::new(triple_stats_header());
    t.row(triple_stats_row("Relay", "EC", 0, 1, 1, 1.0, 0.001, 0.004));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "triple-stats CSV");
    let header: Vec<&str> = parsed[0].iter().map(String::as_str).collect();
    assert_eq!(
        header,
        [
            "Benchmark",
            "Level",
            "Pair anomalies",
            "Triple anomalies",
            "Chain extras",
            "Triples",
            "Repaired ratio",
            "Pair (s)",
            "Triple (s)",
        ]
    );
    // Chain extras = triple − pair, the subsystem's headline number.
    assert_eq!(parsed[1][4], "1");
    // The repaired-ratio column sits between the triple count and the
    // timings, rendered to two decimals: the chain rules' success metric
    // (Relay repairs to clean, so its row reads 1.00).
    assert_eq!(parsed[1][6], "1.00");

    // Validate the generated artifact when a `table1` run produced it.
    for candidate in [
        "../../experiments/triple_stats.csv",
        "experiments/triple_stats.csv",
    ] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            let rows = parse_csv(&text);
            assert_csv_shape(&rows, candidate);
            assert_eq!(rows[0][4], "Chain extras", "{candidate}");
            assert_eq!(rows[0][6], "Repaired ratio", "{candidate}");
        }
    }
}

#[test]
fn replay_stats_rows_match_their_header() {
    // A real (tiny) repair run provides the replay counters: the lost
    // update's one verdict decodes, manifests on the sim, and is
    // suppressed by the repair — so the row reads 1/1/0/1/0.
    let p = atropos_dsl::parse(
        "schema C { id: int key, cnt: int }
         txn bump(k: int) {
             x := select cnt from C where id = k;
             update C set cnt = x.cnt + 1 where id = k;
             return 0;
         }",
    )
    .unwrap();
    let report = atropos_core::repair_program(
        &p,
        atropos_detect::ConsistencyLevel::EventualConsistency,
    );
    let mut t = Table::new(replay_stats_header());
    t.row(replay_stats_row(
        "Counter",
        atropos_core::DetectMode::Pairs,
        "EC",
        &report,
    ));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "replay-stats CSV");
    let header: Vec<&str> = parsed[0].iter().map(String::as_str).collect();
    assert_eq!(
        header,
        [
            "Benchmark",
            "Mode",
            "Level",
            "Initial",
            "Manifested",
            "Failed",
            "Suppressed",
            "Surviving",
        ]
    );
    assert_eq!(parsed[1], ["Counter", "pairs", "EC", "1", "1", "0", "1", "0"]);

    // Validate the generated artifact when a `table1` run produced it: the
    // Mode column must carry both detection modes and the Level column
    // both consistency levels, and no row may report failed or surviving
    // replays — the harness `tests/replay_validates_verdicts.rs` proves
    // per-verdict what these totals summarize.
    for candidate in [
        "../../experiments/replay_stats.csv",
        "experiments/replay_stats.csv",
    ] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            let rows = parse_csv(&text);
            assert_csv_shape(&rows, candidate);
            assert_eq!(rows[0][1], "Mode", "{candidate}");
            assert_eq!(rows[0][2], "Level", "{candidate}");
            assert!(rows[1..].iter().any(|r| r[1] == "pairs"), "{candidate}");
            assert!(rows[1..].iter().any(|r| r[1] == "triples"), "{candidate}");
            assert!(rows[1..].iter().any(|r| r[2] == "CC"), "{candidate}");
            for (i, r) in rows[1..].iter().enumerate() {
                assert_eq!(r[5], "0", "{candidate}: row {i} reports failed replays");
                assert_eq!(r[7], "0", "{candidate}: row {i} reports surviving replays");
            }
        }
    }
}

#[test]
fn corpus_stats_rows_match_their_header() {
    let stats = atropos_detect::CorpusStats {
        programs: 40,
        pair_slots: 1036,
        unique_pairs: 259,
        seconds: 0.05,
        ..Default::default()
    };
    let mut t = Table::new(corpus_stats_header());
    t.row(corpus_stats_row("Corpus x4", &stats, 796, 0.2));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "corpus-stats CSV");
    let header: Vec<&str> = parsed[0].iter().map(String::as_str).collect();
    assert_eq!(
        header,
        [
            "Benchmark",
            "Programs",
            "Pair slots",
            "Unique pairs",
            "Verdicts",
            "Cold (s)",
            "Warm (s)",
            "Cold prog/s",
            "Warm prog/s",
            "Speedup",
        ]
    );
    // Pair slots collapse to unique solves; the speedup cell carries the x.
    assert_eq!(parsed[1][2], "1036");
    assert_eq!(parsed[1][3], "259");
    assert_eq!(parsed[1].last().unwrap(), "4.0x");

    // Validate the generated artifact when a `corpus` run produced it: the
    // duplicated-program corpus (the x4 row) must report at least the 2x
    // warm-vs-cold programs/sec the batch service promises — duplicates
    // answer from the global store without touching the solver.
    for candidate in [
        "../../experiments/corpus_stats.csv",
        "experiments/corpus_stats.csv",
    ] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            let rows = parse_csv(&text);
            assert_csv_shape(&rows, candidate);
            assert_eq!(rows[0][3], "Unique pairs", "{candidate}");
            let dup = rows[1..]
                .iter()
                .find(|r| r[0].ends_with("x4"))
                .unwrap_or_else(|| panic!("{candidate}: no duplicated-corpus row"));
            let speedup: f64 = dup
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap_or_else(|e| panic!("{candidate}: speedup cell: {e}"));
            assert!(
                speedup >= 2.0,
                "{candidate}: duplicated corpus must be >=2x warm-vs-cold, got {speedup}"
            );
        }
    }
}

#[test]
fn proof_stats_rows_match_their_header() {
    let mut t = Table::new(proof_stats_header());
    t.row(proof_stats_row("TPC-C", 208, 6, 6, 6, 6_618_364, 0.044, 0.060));
    let parsed = parse_csv(&t.to_csv());
    assert_csv_shape(&parsed, "proof-stats CSV");
    let header: Vec<&str> = parsed[0].iter().map(String::as_str).collect();
    assert_eq!(
        header,
        [
            "Benchmark",
            "Queries",
            "UNSAT",
            "Certificates",
            "Checked",
            "Proof bytes",
            "Off (s)",
            "On (s)",
            "Overhead",
        ]
    );
    assert_eq!(parsed[1][3], "6");
    assert_eq!(parsed[1][4], "6");
    assert_eq!(parsed[1].last().unwrap(), "1.36x");

    // Validate the generated artifact when a `proof_stats` run produced
    // it: the 100% proofs-checked floor (every banked certificate is
    // accepted by the independent checker), at least one benchmark
    // actually banking certificates, and the proof-logging overhead
    // ceiling — proofs-on detection wall time ≤ 1.5x proofs-off on TPC-C.
    for candidate in [
        "../../experiments/proof_stats.csv",
        "experiments/proof_stats.csv",
    ] {
        if let Ok(text) = std::fs::read_to_string(candidate) {
            let rows = parse_csv(&text);
            assert_csv_shape(&rows, candidate);
            assert_eq!(rows[0][3], "Certificates", "{candidate}");
            assert_eq!(rows[0][4], "Checked", "{candidate}");
            let mut total_certs = 0u64;
            for (i, r) in rows[1..].iter().enumerate() {
                let certs: u64 = r[3].parse().unwrap();
                let checked: u64 = r[4].parse().unwrap();
                assert_eq!(
                    checked, certs,
                    "{candidate}: row {i} ({}) is under the 100% checked floor",
                    r[0]
                );
                total_certs += certs;
            }
            assert!(total_certs > 0, "{candidate}: no certificates banked at all");
            let tpcc = rows[1..]
                .iter()
                .find(|r| r[0] == "TPC-C")
                .unwrap_or_else(|| panic!("{candidate}: no TPC-C row"));
            let overhead: f64 = tpcc
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap_or_else(|e| panic!("{candidate}: bad Overhead cell: {e}"));
            assert!(
                overhead <= 1.5,
                "{candidate}: TPC-C proof-logging overhead {overhead}x is over the 1.5x ceiling"
            );
        }
    }
}

#[test]
fn empty_bench_run_writes_nothing() {
    // Test-mode smoke runs drain zero measurements; the writer must not
    // clobber experiments/ with an empty file.
    let written = write_bench_csv("smoke_empty", &[]).expect("io");
    assert!(written.is_none());
}
