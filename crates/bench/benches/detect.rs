//! Benchmarks of the static anomaly detector (the Time column of Table 1
//! is dominated by these queries).

use atropos_detect::{detect_anomalies, ConsistencyLevel};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn bench_detect(c: &mut Criterion) {
    let smallbank = atropos_workloads::smallbank::program();
    let courseware = atropos_workloads::courseware::program();
    let mut g = c.benchmark_group("detect");
    g.sample_size(10);
    g.bench_function("smallbank-ec", |b| {
        b.iter(|| {
            black_box(detect_anomalies(
                &smallbank,
                ConsistencyLevel::EventualConsistency,
            ))
        })
    });
    g.bench_function("courseware-all-levels", |b| {
        b.iter(|| {
            for lvl in [
                ConsistencyLevel::EventualConsistency,
                ConsistencyLevel::CausalConsistency,
                ConsistencyLevel::RepeatableRead,
                ConsistencyLevel::Serializable,
            ] {
                black_box(detect_anomalies(&courseware, lvl));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_detect);
atropos_bench::criterion_main_with_csv!("detect", benches);
