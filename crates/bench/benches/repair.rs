//! Benchmarks of the end-to-end repair pipeline (analysis + refactoring).

use atropos_core::repair_program;
use atropos_detect::ConsistencyLevel;
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn bench_repair(c: &mut Criterion) {
    let courseware = atropos_workloads::courseware::program();
    let sibench = atropos_workloads::sibench::program();
    let mut g = c.benchmark_group("repair");
    g.sample_size(10);
    g.bench_function("courseware", |b| {
        b.iter(|| {
            black_box(repair_program(
                &courseware,
                ConsistencyLevel::EventualConsistency,
            ))
        })
    });
    g.bench_function("sibench", |b| {
        b.iter(|| {
            black_box(repair_program(
                &sibench,
                ConsistencyLevel::EventualConsistency,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_repair);
atropos_bench::criterion_main_with_csv!("repair", benches);
