//! Micro-benchmarks of the CDCL SAT solver substrate.

use atropos_sat::{Lit, Solver, Var};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let mut at = vec![vec![Var(0); holes]; pigeons];
    for p in at.iter_mut() {
        for h in p.iter_mut() {
            *h = s.new_var();
        }
    }
    for p in 0..pigeons {
        s.add_clause((0..holes).map(|h| at[p][h].positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause([at[p1][h].negative(), at[p2][h].negative()]);
            }
        }
    }
    s
}

fn random_3sat(vars: usize, clauses: usize, seed: u64) -> Solver {
    let mut s = Solver::new();
    for _ in 0..vars {
        s.new_var();
    }
    let mut state = seed;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| Lit::new(Var((next() % vars as u64) as u32), next() % 2 == 0))
            .collect();
        s.add_clause(lits);
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole-7-6-unsat", |b| {
        b.iter(|| black_box(pigeonhole(7, 6).solve()))
    });
    c.bench_function("sat/random-3sat-150v-600c", |b| {
        b.iter(|| black_box(random_3sat(150, 600, 42).solve()))
    });
}

criterion_group!(benches, bench_sat);
atropos_bench::criterion_main_with_csv!("sat", benches);
