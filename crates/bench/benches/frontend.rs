//! Micro-benchmarks of the DSL front-end (lexer + parser + checker).

use atropos_dsl::{check_program, parse};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let src = atropos_workloads::tpcc::SOURCE;
    c.bench_function("frontend/parse-tpcc", |b| b.iter(|| black_box(parse(src).unwrap())));
    let program = parse(src).unwrap();
    c.bench_function("frontend/check-tpcc", |b| {
        b.iter(|| black_box(check_program(&program).unwrap()))
    });
    c.bench_function("frontend/print-parse-roundtrip-tpcc", |b| {
        b.iter(|| {
            let text = atropos_dsl::print_program(&program);
            black_box(parse(&text).unwrap())
        })
    });
}

criterion_group!(benches, bench_frontend);
atropos_bench::criterion_main_with_csv!("frontend", benches);
