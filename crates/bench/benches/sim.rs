//! Benchmarks of the discrete-event store simulator and the operational-
//! semantics interpreter.

use atropos_sim::{run_simulation, ClusterConfig, SimConfig};
use atropos_workloads::{derive_workload, TableSpec};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let program = atropos_workloads::smallbank::program();
    let workload = derive_workload(
        &program,
        &atropos_workloads::smallbank::mix(),
        &TableSpec::default(),
    );
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("smallbank-ec-50c-10s", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(ClusterConfig::us(), 50);
            cfg.duration_ms = 10_000.0;
            black_box(run_simulation(&workload, &cfg))
        })
    });
    g.bench_function("smallbank-sc-50c-10s", |b| {
        let sc = workload.clone().all_serializable();
        b.iter(|| {
            let mut cfg = SimConfig::new(ClusterConfig::us(), 50);
            cfg.duration_ms = 10_000.0;
            black_box(run_simulation(&sc, &cfg))
        })
    });
    g.finish();

    // Interpreter throughput on the Fig. 1 program.
    use atropos_semantics::{run_interleaved, Invocation, ViewStrategy};
    let courseware = atropos_workloads::courseware::program();
    let invs: Vec<Invocation> = (0..20)
        .map(|i| {
            Invocation::new(
                "regSt",
                vec![atropos_dsl::Value::Int(i % 4), atropos_dsl::Value::Int(7)],
            )
        })
        .collect();
    c.bench_function("interp/courseware-20-interleaved", |b| {
        b.iter(|| {
            black_box(
                run_interleaved(
                    &courseware,
                    |i| {
                        for k in 0..4 {
                            i.populate(
                                "STUDENT",
                                vec![atropos_dsl::Value::Int(k)],
                                [("st_em_id", atropos_dsl::Value::Int(k))],
                            );
                        }
                        i.populate("COURSE", vec![atropos_dsl::Value::Int(7)], [
                            ("co_st_cnt", atropos_dsl::Value::Int(0)),
                        ]);
                    },
                    &invs,
                    ViewStrategy::RandomAtoms { p: 0.5 },
                    1,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_sim);
atropos_bench::criterion_main_with_csv!("sim", benches);
