//! Integration coverage for the sharded `verdict_cache.v2` store: two
//! concurrent sessions union-merge (no lost verdicts), corrupt shards
//! are refused by byte surgery, revision-stale shards degrade to
//! per-record salvage (only certified clean verdicts survive), v1 files
//! migrate transparently, and the compaction pass enforces the eviction
//! policy.

use std::path::{Path, PathBuf};

use atropos_detect::corpus::{CorpusStore, EvictionPolicy};
use atropos_detect::{
    detect_anomalies_cached, ConsistencyLevel, DetectMode, DetectSession, DetectionEngine,
    VerdictCache,
};

const COUNTER: &str = "schema C { id: int key, cnt: int }
     txn bump(k: int) {
         x := select cnt from C where id = k;
         update C set cnt = x.cnt + 1 where id = k;
         return 0;
     }";

const BANK: &str = "schema ACC { id: int key, bal: int }
     txn deposit(a: int, amt: int) {
         x := select bal from ACC where id = a;
         update ACC set bal = x.bal + amt where id = a;
         return 0;
     }
     txn audit(a: int, b: int) {
         p := select bal from ACC where id = a;
         q := select bal from ACC where id = b;
         return 0;
     }";

const EC: ConsistencyLevel = ConsistencyLevel::EventualConsistency;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atropos_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&dir);
    dir
}

fn warm_cache(src: &str) -> VerdictCache {
    let p = atropos_dsl::parse(src).unwrap();
    let mut cache = VerdictCache::new();
    detect_anomalies_cached(&p, EC, &mut cache);
    cache
}

/// Every shard file currently in a store directory.
fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "v2"))
        .collect();
    files.sort();
    files
}

/// Two sessions merging concurrently into one store must produce the
/// union of their verdicts — the exact clobber the monolithic v1 file
/// suffered (last writer wins) must not reproduce.
#[test]
fn concurrent_sessions_union_merge_without_losing_verdicts() {
    let dir = scratch("union");
    let a = warm_cache(COUNTER);
    let b = warm_cache(BANK);
    let expect = a.len() + b.len(); // distinct schemas ⇒ disjoint fingerprints

    std::thread::scope(|s| {
        for cache in [&a, &b] {
            s.spawn(|| {
                let store = CorpusStore::open(&dir).expect("open store");
                // Merge repeatedly to force lock contention and
                // read-modify-write interleavings.
                for _ in 0..8 {
                    store.merge_cache(cache).expect("merge");
                }
            });
        }
    });

    let store = CorpusStore::open(&dir).expect("reopen");
    assert_eq!(store.entry_count().expect("count"), expect, "no lost verdicts");
    // No lock debris survives the merges.
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .all(|e| e.unwrap().path().extension().is_some_and(|x| x == "v2")),
        "only shard files remain"
    );

    // The union answers both programs entirely warm.
    let loaded = store.load_cache().expect("load");
    let mut session_cache = loaded;
    for src in [COUNTER, BANK] {
        let p = atropos_dsl::parse(src).unwrap();
        let before = session_cache.stats();
        detect_anomalies_cached(&p, EC, &mut session_cache);
        let delta = session_cache.stats().since(&before);
        assert_eq!(
            delta.misses + delta.triple_misses,
            0,
            "union replays {src:.20} warm: {delta:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped payload byte must be caught by the per-record checksum and
/// refused as corrupt — never silently decoded into a wrong verdict.
#[test]
fn corrupt_shard_byte_is_refused_by_checksum() {
    let dir = scratch("corrupt");
    let store = CorpusStore::open(&dir).expect("open");
    store.merge_cache(&warm_cache(BANK)).expect("merge");

    let shard = shard_files(&dir).pop().expect("at least one shard");
    let mut bytes = std::fs::read(&shard).expect("read shard");
    *bytes.last_mut().expect("non-empty") ^= 0xFF; // inside the final record's payload
    std::fs::write(&shard, &bytes).expect("write corrupted shard");

    let err = match store.load_cache() {
        Err(e) => e,
        Ok(_) => panic!("corrupt shard accepted"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard cut off mid-record is refused as truncated.
#[test]
fn truncated_shard_is_refused() {
    let dir = scratch("truncated");
    let store = CorpusStore::open(&dir).expect("open");
    store.merge_cache(&warm_cache(BANK)).expect("merge");

    let shard = shard_files(&dir).pop().expect("at least one shard");
    let bytes = std::fs::read(&shard).expect("read shard");
    std::fs::write(&shard, &bytes[..bytes.len() - 3]).expect("truncate shard");

    let err = match store.load_cache() {
        Err(e) => e,
        Ok(_) => panic!("truncated shard accepted"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("truncated"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rewrites every shard's encoder-revision field (bytes 8..12, right
/// after the magic — same layout as v1), leaving everything else
/// byte-identical — the surgery simulating a store written by an older
/// build.
fn stale_all_shards(dir: &Path) {
    for shard in shard_files(dir) {
        let mut bytes = std::fs::read(&shard).expect("read shard");
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&shard, &bytes).expect("write stale shard");
    }
}

/// A revision-stale shard whose records carry no proof certificates must
/// be dropped wholesale: without certificates its verdicts may not mean
/// what this build thinks, so everything is re-solved.
#[test]
fn stale_shard_without_proofs_is_dropped_wholesale() {
    let dir = scratch("stale");
    let store = CorpusStore::open(&dir).expect("open");
    store.merge_cache(&warm_cache(COUNTER)).expect("merge");
    assert!(store.entry_count().expect("count") > 0);

    stale_all_shards(&dir);

    let salvaged = store.load_cache().expect("stale store salvages, not errors");
    assert_eq!(
        salvaged.len() + salvaged.triple_len(),
        0,
        "proofless stale records must not be trusted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The revision refusal downgrades to per-record salvage when a record
/// can vouch for itself: a **clean** verdict whose proof certificates
/// still pass the independent checker survives the encoder-revision bump
/// without a re-solve; dirty verdicts (uncertified SAT witnesses) are
/// still dropped.
#[test]
fn stale_shard_salvages_certified_clean_verdicts() {
    const SER: ConsistencyLevel = ConsistencyLevel::Serializable;
    let dir = scratch("stale_certified");
    let _ = CorpusStore::open(&dir).expect("create store");
    // Warm BANK with proof capture on, at two levels: under SER every
    // candidate anomaly is refuted, so the write-touching pairs are clean
    // *with* checking certificates; under EC the deposit pairs are dirty
    // (lost update), so those verdicts rest on uncertified SAT witnesses.
    let p = atropos_dsl::parse(BANK).unwrap();
    let engine = DetectionEngine::serial().with_proofs(true);
    let mut session = DetectSession::new();
    engine.detect(&p, SER, &mut session);
    engine.detect(&p, EC, &mut session);
    let certified = session
        .audits()
        .iter()
        .filter(|a| a.anomalies == 0 && !a.proofs.is_empty())
        .count();
    assert!(certified > 0, "at least one clean verdict is certified");
    session.save_to(&dir).expect("merge into store");
    let store = CorpusStore::open(&dir).expect("reopen");
    let total = store.entry_count().expect("count");

    stale_all_shards(&dir);

    let mut reloaded = DetectSession::load_from(&dir).expect("stale store salvages, not errors");
    let kept = reloaded.len() + reloaded.triple_len();
    assert_eq!(
        kept, certified,
        "exactly the certified clean verdicts survive the revision bump"
    );
    assert!(kept < total, "everything else is dropped for re-solving");

    // The survivors replay warm: a SER pass re-solves only the dropped
    // (proofless) entries, never a salvaged certified one.
    let before = reloaded.cache_stats();
    engine.detect(&p, SER, &mut reloaded);
    let delta = reloaded.cache_stats().since(&before);
    assert!(delta.hits > 0, "salvaged verdicts answer warm: {delta:?}");
    assert!(delta.misses > 0, "dropped verdicts are re-solved: {delta:?}");
    // And the dropped dirty EC verdicts are genuinely re-found.
    let (pairs, _) = engine.detect(&p, EC, &mut reloaded);
    assert!(!pairs.is_empty(), "the lost update is re-found");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Opening a store at an existing v1 cache *file* migrates it in place:
/// the path becomes a store directory holding the same verdicts, and the
/// session-level loader replays them warm in both detection modes.
#[test]
fn v1_file_migrates_to_a_store_directory() {
    let path = scratch("migrate");
    let p = atropos_dsl::parse(BANK).unwrap();
    let engine = DetectionEngine::serial();
    let mut session = DetectSession::new();
    let (pairs, _) = engine.detect(&p, EC, &mut session);
    let (triples, _) = engine.detect_with_mode(&p, EC, DetectMode::Triples, &mut session);
    let entries = session.save_to(&path).expect("save v1 file");
    assert!(path.is_file(), "v1 save produces a monolithic file");

    let store = CorpusStore::open(&path).expect("open migrates");
    assert!(path.is_dir(), "migration replaced the file with a store dir");
    assert_eq!(store.entry_count().expect("count"), entries);

    let mut reloaded = DetectSession::load_from(&path).expect("load store");
    let (again_pairs, sp) = engine.detect(&p, EC, &mut reloaded);
    let (again_triples, st) = engine.detect_with_mode(&p, EC, DetectMode::Triples, &mut reloaded);
    assert_eq!(again_pairs, pairs);
    assert_eq!(again_triples, triples);
    assert_eq!(sp.queries + st.queries, 0, "migrated verdicts replay warm");
    let _ = std::fs::remove_dir_all(&path);
}

/// Compaction enforces the eviction policy deterministically: age evicts
/// everything older than the horizon, and the size cap drops the
/// oldest-stamped records first.
#[test]
fn compaction_applies_age_and_size_eviction() {
    let dir = scratch("evict");
    let store = CorpusStore::open(&dir).expect("open");
    let old = warm_cache(COUNTER);
    let new = warm_cache(BANK);
    store.merge_cache_stamped(&old, 100).expect("merge old");
    store.merge_cache_stamped(&new, 200).expect("merge new");
    let total = old.len() + new.len();
    assert_eq!(store.entry_count().expect("count"), total);

    // A no-op policy only rewrites.
    let report = store
        .compact_at(&EvictionPolicy::default(), 250)
        .expect("noop compact");
    assert_eq!((report.kept, report.evicted), (total, 0));

    // Age horizon: everything stamped 100 is older than 80s at t=250.
    let report = store
        .compact_at(
            &EvictionPolicy {
                max_age_secs: Some(80),
                max_entries: None,
            },
            250,
        )
        .expect("age compact");
    assert_eq!((report.kept, report.evicted), (new.len(), old.len()));

    // Size cap: keep one record (the stamps now tie, so the cut falls
    // back on key order — deterministic either way).
    let report = store
        .compact_at(
            &EvictionPolicy {
                max_age_secs: None,
                max_entries: Some(1),
            },
            250,
        )
        .expect("size compact");
    assert_eq!((report.kept, report.evicted), (1, new.len() - 1));
    assert_eq!(store.entry_count().expect("count"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
