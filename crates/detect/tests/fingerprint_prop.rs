//! Property suite pinning the **soundness of the pair fingerprint** behind
//! the repair loop's verdict cache: any generated mutation that changes a
//! command's detector-visible summary (access sets, schema, kind, key
//! specification, ordering, data-flow variables) must change the
//! transaction fingerprint, while untouched transactions and pure
//! relabelings keep theirs.
//!
//! An unsound fingerprint — one blind to some summary field — must fail
//! *here*, at the definition, not as an unexplained verdict divergence in
//! the end-to-end `repair_incremental_vs_scratch` suite.

use std::collections::BTreeSet;

use atropos_detect::{txn_fingerprint, CmdKind, CmdSummary, KeySpec, TxnSummary};
use proptest::prelude::*;

const FIELDS: [&str; 5] = ["f0", "f1", "f2", "f3", "f4"];
const SCHEMAS: [&str; 3] = ["A", "B", "C"];

fn subset(bits: u8) -> BTreeSet<String> {
    FIELDS
        .iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .map(|(_, f)| (*f).to_owned())
        .collect()
}

fn key_spec(choice: u8) -> KeySpec {
    match choice % 3 {
        0 => KeySpec::Keyed {
            key: "k".to_owned(),
            constant: choice.is_multiple_of(2),
        },
        1 => KeySpec::Scan,
        _ => KeySpec::Fresh,
    }
}

fn cmd_kind(choice: u8) -> CmdKind {
    match choice % 4 {
        0 => CmdKind::Select,
        1 => CmdKind::Update,
        2 => CmdKind::Insert,
        _ => CmdKind::Delete,
    }
}

/// Raw generator output for one command: (kind, schema, reads, writes,
/// key, bound_var?, uses_vars).
type RawCmd = (u8, u8, u8, u8, u8, bool, u8);

fn build_txn(name: &str, raw: &[RawCmd]) -> TxnSummary {
    let commands = raw
        .iter()
        .enumerate()
        .map(|(i, &(kind, schema, reads, writes, key, bound, uses))| CmdSummary {
            label: atropos_dsl::CmdLabel(format!("L{i}")),
            kind: cmd_kind(kind),
            schema: SCHEMAS[schema as usize % SCHEMAS.len()].to_owned(),
            reads: subset(reads),
            writes: subset(writes),
            key: key_spec(key),
            prog_index: i,
            bound_var: bound.then(|| format!("v{i}")),
            uses_vars: subset(uses)
                .into_iter()
                .map(|f| format!("var_{f}"))
                .collect(),
        })
        .collect();
    TxnSummary {
        name: name.to_owned(),
        commands,
    }
}

/// The eight summary-changing mutations the cache must be sensitive to.
/// Every variant is constructed to guarantee an actual change on any
/// command it is applied to.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    AddRead,
    AddWrite,
    ToggleKind,
    RenameSchema,
    ToggleKeySpec,
    ShiftOrder,
    AddUsedVar,
    ToggleBoundVar,
}

const MUTATIONS: [Mutation; 8] = [
    Mutation::AddRead,
    Mutation::AddWrite,
    Mutation::ToggleKind,
    Mutation::RenameSchema,
    Mutation::ToggleKeySpec,
    Mutation::ShiftOrder,
    Mutation::AddUsedVar,
    Mutation::ToggleBoundVar,
];

fn apply(txn: &TxnSummary, which: usize, target: usize) -> TxnSummary {
    let mut out = txn.clone();
    let at = target % out.commands.len();
    let c = &mut out.commands[at];
    match MUTATIONS[which % MUTATIONS.len()] {
        Mutation::AddRead => {
            c.reads.insert("zz_fresh_field".to_owned());
        }
        Mutation::AddWrite => {
            c.writes.insert("zz_fresh_field".to_owned());
        }
        Mutation::ToggleKind => {
            c.kind = match c.kind {
                CmdKind::Select => CmdKind::Update,
                CmdKind::Update => CmdKind::Insert,
                CmdKind::Insert => CmdKind::Delete,
                CmdKind::Delete => CmdKind::Select,
            };
        }
        Mutation::RenameSchema => {
            c.schema.push_str("_moved");
        }
        Mutation::ToggleKeySpec => {
            c.key = match &c.key {
                KeySpec::Scan => KeySpec::Fresh,
                KeySpec::Fresh => KeySpec::Keyed {
                    key: "zz".to_owned(),
                    constant: false,
                },
                KeySpec::Keyed { .. } => KeySpec::Scan,
            };
        }
        Mutation::ShiftOrder => {
            // Splitting/merging shifts later commands: bump the program
            // index as a removed-predecessor would.
            c.prog_index += 1;
        }
        Mutation::AddUsedVar => {
            c.uses_vars.insert("zz_fresh_var".to_owned());
        }
        Mutation::ToggleBoundVar => {
            c.bound_var = match c.bound_var {
                Some(_) => None,
                None => Some("zz_bound".to_owned()),
            };
        }
    }
    out
}

fn raw_cmd() -> impl Strategy<Value = RawCmd> {
    (
        0u8..4,
        0u8..3,
        0u8..32,
        0u8..32,
        0u8..6,
        any::<bool>(),
        0u8..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: every summary-changing mutation changes the fingerprint.
    #[test]
    fn mutations_always_change_the_fingerprint(
        raw in prop::collection::vec(raw_cmd(), 1..5),
        which in 0usize..8,
        target in 0usize..16,
    ) {
        let txn = build_txn("t", &raw);
        let fp = txn_fingerprint(&txn);
        // Determinism: recomputation is stable.
        prop_assert_eq!(fp, txn_fingerprint(&txn));
        let mutated = apply(&txn, which, target);
        prop_assert_ne!(fp, txn_fingerprint(&mutated));
    }

    /// Frame rule: mutating one transaction never disturbs another's
    /// fingerprint — untouched pairs keep their cache keys.
    #[test]
    fn untouched_transactions_keep_their_fingerprint(
        raw1 in prop::collection::vec(raw_cmd(), 1..5),
        raw2 in prop::collection::vec(raw_cmd(), 1..5),
        which in 0usize..8,
        target in 0usize..16,
    ) {
        let t1 = build_txn("t1", &raw1);
        let t2 = build_txn("t2", &raw2);
        let (fp1, fp2) = (txn_fingerprint(&t1), txn_fingerprint(&t2));
        let t1_mutated = apply(&t1, which, target);
        prop_assert_ne!(txn_fingerprint(&t1_mutated), fp1);
        prop_assert_eq!(txn_fingerprint(&t2), fp2);
    }

    /// Label blindness: a pure relabeling (the rename-map case) keeps the
    /// fingerprint, so relabeled-but-unchanged pairs still hit the cache.
    #[test]
    fn pure_relabelings_preserve_the_fingerprint(
        raw in prop::collection::vec(raw_cmd(), 1..5),
    ) {
        let txn = build_txn("t", &raw);
        let mut relabeled = txn.clone();
        for c in &mut relabeled.commands {
            c.label = atropos_dsl::CmdLabel(format!("{}_renamed", c.label.0));
        }
        prop_assert_eq!(txn_fingerprint(&txn), txn_fingerprint(&relabeled));
    }
}
