//! The parallel detection engine: dirty-pair solving fanned out over a
//! worker pool, deterministically merged.
//!
//! The paper's detection formulation makes every transaction pair an
//! independent satisfiability query, so the re-solved ("dirty") pairs of a
//! cached detection pass are embarrassingly parallel. A
//! [`DetectionEngine`] owns the parallelism policy — a worker count from
//! [`DetectionEngine::new`], the `ATROPOS_THREADS` environment variable,
//! or the machine's available parallelism — and runs each pass in three
//! phases:
//!
//! 1. **Plan** (serial): summarize the program, fingerprint every
//!    transaction, sweep the cache's liveness union, and look every ordered
//!    pair up in the verdict cache. Hits fill their result slots
//!    immediately; misses form the dirty-pair work list.
//! 2. **Solve** (parallel): `std::thread::scope` workers drain the work
//!    list through an atomic cursor. Each worker takes the pair's retained
//!    [`crate::cache::PairState`] from the sharded solver-retention map
//!    (solvers migrate freely between workers — they are `Send`), solves
//!    with the exact same per-pair routine as the serial oracle, and
//!    returns the state to its shard.
//! 3. **Merge** (serial, deterministic): verdicts are folded into the
//!    result map and inserted into the cache **in the serial pair order**,
//!    not in completion order, so the engine's output — verdicts, the
//!    entire [`DetectStats`] except wall-clock seconds, and every
//!    downstream repair decision — is byte-identical at any thread count
//!    (pinned by `tests/parallel_determinism.rs` on all nine workloads).
//!
//! With one thread the scope is skipped and phase 2 runs inline: the
//! serial cached oracle ([`crate::detect_anomalies_cached`]) is literally
//! this engine at `threads = 1`, so the paths cannot drift apart.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use atropos_dsl::Program;

use crate::cache::{txn_fingerprint, PairState, VerdictCache};
use crate::detect::{accumulate, solve_pair_with_state, AccessPair, AnomalyKind, DetectStats};
use crate::encode::ConsistencyLevel;
use crate::model::{summarize_program, TxnSummary};
use crate::session::DetectSession;

/// Per-worker counters of one engine's lifetime, indexed by worker slot
/// (worker 0 is also the inline path of a single-threaded pass).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Dirty pairs this worker re-solved.
    pub pairs_solved: u64,
    /// SAT queries those pairs issued.
    pub queries: u64,
    /// Pairs that reused a retained solver taken from the sharded map.
    pub solver_reuses: u64,
    /// Wall-clock seconds this worker spent solving.
    pub seconds: f64,
}

impl WorkerStats {
    fn absorb(&mut self, other: &WorkerStats) {
        self.pairs_solved += other.pairs_solved;
        self.queries += other.queries;
        self.solver_reuses += other.solver_reuses;
        self.seconds += other.seconds;
    }
}

/// Parallelism policy for cached detection passes. Cheap to construct and
/// `Copy`-light (one `usize`); callers typically build **one engine per
/// sweep** and share it — the expensive, long-lived state (verdicts,
/// retained solvers) lives in the [`DetectSession`], not here.
///
/// # Examples
///
/// ```
/// use atropos_detect::{ConsistencyLevel, DetectionEngine, DetectSession};
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let engine = DetectionEngine::new(2);
/// let mut session = DetectSession::new();
/// let (first, _) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// assert_eq!(first.len(), 1); // the lost update
/// // Same program again: answered entirely from the session's warm cache.
/// let (again, stats) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// assert_eq!(again, first);
/// assert_eq!(stats.queries, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionEngine {
    threads: usize,
}

impl DetectionEngine {
    /// An engine solving dirty pairs on `threads` workers (clamped to at
    /// least 1). Thread count never affects results, only wall-clock.
    pub fn new(threads: usize) -> DetectionEngine {
        DetectionEngine {
            threads: threads.max(1),
        }
    }

    /// The strictly serial engine (`threads = 1`); what
    /// [`crate::detect_anomalies_cached`] runs under the hood.
    pub fn serial() -> DetectionEngine {
        DetectionEngine::new(1)
    }

    /// An engine honouring the `ATROPOS_THREADS` environment variable
    /// (clamped to at least 1, exactly like [`DetectionEngine::new`] — so
    /// `ATROPOS_THREADS=0` means serial, not "use the default"), falling
    /// back to the machine's available parallelism (capped at 8 —
    /// dirty-pair batches rarely feed more workers than that).
    pub fn from_env() -> DetectionEngine {
        let configured = std::env::var("ATROPOS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        DetectionEngine::new(configured.unwrap_or_else(default_threads))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// One cached detection pass over `program` at `level`, answering
    /// untouched pairs from the session's verdict cache and fanning the
    /// dirty remainder out over this engine's workers.
    ///
    /// Verdict-identical to [`crate::detect_anomalies`] and to itself at
    /// every thread count; see the module docs for the three-phase
    /// structure and the determinism argument.
    pub fn detect(
        &self,
        program: &Program,
        level: ConsistencyLevel,
        session: &mut DetectSession,
    ) -> (Vec<AccessPair>, DetectStats) {
        let (cache, per_worker) = session.cache_and_workers();
        detect_with_cache(self.threads, program, level, cache, Some(per_worker))
    }
}

/// Smallest dirty-pair batch worth one worker thread: below this, the
/// spawn/join overhead rivals the SAT work itself and the pass runs
/// inline. Thread count never affects verdicts, so this is purely a
/// scheduling knob.
const MIN_PAIRS_PER_WORKER: usize = 4;

/// Default worker count when `ATROPOS_THREADS` is unset.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// One dirty pair of the work list: its slot in the pass's result vector
/// and the ordered transaction indices.
struct Miss {
    slot: usize,
    i: usize,
    j: usize,
    symmetric: bool,
}

/// The outcome of solving one dirty pair, produced on whatever worker
/// claimed it and merged on the coordinating thread.
struct MissOutcome {
    pairs: Vec<AccessPair>,
    stats: DetectStats,
    solver_reused: bool,
}

fn solve_miss(
    summaries: &[TxnSummary],
    fps: &[u64],
    level: ConsistencyLevel,
    states: &crate::cache::ShardedStateMap,
    m: &Miss,
) -> MissOutcome {
    let (t1, t2) = (&summaries[m.i], &summaries[m.j]);
    let key = (fps[m.i], fps[m.j]);
    let mut state = states.take(key).unwrap_or_else(|| PairState::new(t1, t2));
    let solver_reused = state.solver.is_some();
    let (pairs, stats) = solve_pair_with_state(t1, t2, m.symmetric, level, &mut state);
    states.store(key, state);
    MissOutcome {
        pairs,
        stats,
        solver_reused,
    }
}

/// The shared implementation behind [`DetectionEngine::detect`] and the
/// serial [`crate::detect_anomalies_cached`]: plan serially, solve the
/// misses on up to `threads` workers, merge deterministically.
pub(crate) fn detect_with_cache(
    threads: usize,
    program: &Program,
    level: ConsistencyLevel,
    cache: &mut VerdictCache,
    per_worker: Option<&mut Vec<WorkerStats>>,
) -> (Vec<AccessPair>, DetectStats) {
    let started = Instant::now();
    let summaries = summarize_program(program);
    let fps: Vec<u64> = summaries.iter().map(txn_fingerprint).collect();
    // Fold this program into the session's liveness union and prune entries
    // outside it; an entry the sweep keeps is guaranteed to hit below (this
    // pass or a later one over a program already seen).
    cache.sweep_live(&fps);
    let n = summaries.len();
    let mut stats = DetectStats::default();

    // Phase 1 (serial): verdict lookups. Hits fill their slots; misses
    // become the dirty-pair work list.
    let mut slots: Vec<Option<Vec<AccessPair>>> = Vec::with_capacity(n * n);
    let mut misses: Vec<Miss> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            stats.pairs += 1;
            let symmetric = i <= j;
            let slot = slots.len();
            match cache.lookup(fps[i], fps[j], symmetric, level) {
                Some(pairs) => slots.push(Some(pairs)),
                None => {
                    slots.push(None);
                    misses.push(Miss {
                        slot,
                        i,
                        j,
                        symmetric,
                    });
                }
            }
        }
    }

    // Phase 2: solve the dirty pairs. Spawning is only worth it when every
    // worker gets a real batch: incremental repair's later passes dirty a
    // handful of pairs, and paying a spawn/join round-trip for them would
    // hand the serial driver a regression. A batch too small to feed
    // multiple workers at MIN_PAIRS_PER_WORKER each (or a serial engine)
    // solves inline as worker 0.
    let workers = threads
        .min(misses.len() / MIN_PAIRS_PER_WORKER)
        .max(1);
    let mut outcomes: Vec<Option<MissOutcome>> = Vec::with_capacity(misses.len());
    outcomes.resize_with(misses.len(), || None);
    let mut worker_stats = vec![WorkerStats::default(); workers];
    if workers <= 1 {
        let w = &mut worker_stats[0];
        let t0 = Instant::now();
        for (k, m) in misses.iter().enumerate() {
            let o = solve_miss(&summaries, &fps, level, cache.states(), m);
            w.pairs_solved += 1;
            w.queries += o.stats.queries;
            w.solver_reuses += u64::from(o.solver_reused);
            outcomes[k] = Some(o);
        }
        w.seconds += t0.elapsed().as_secs_f64();
    } else {
        let next = AtomicUsize::new(0);
        let states = cache.states();
        let (summaries, fps, misses) = (&summaries, &fps, &misses);
        let produced: Vec<(usize, WorkerStats, Vec<(usize, MissOutcome)>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let next = &next;
                        scope.spawn(move || {
                            let t0 = Instant::now();
                            let mut ws = WorkerStats::default();
                            let mut out = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= misses.len() {
                                    break;
                                }
                                let o = solve_miss(summaries, fps, level, states, &misses[k]);
                                ws.pairs_solved += 1;
                                ws.queries += o.stats.queries;
                                ws.solver_reuses += u64::from(o.solver_reused);
                                out.push((k, o));
                            }
                            ws.seconds = t0.elapsed().as_secs_f64();
                            (w, ws, out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("detection worker panicked"))
                    .collect()
            });
        for (w, ws, out) in produced {
            worker_stats[w] = ws;
            for (k, o) in out {
                outcomes[k] = Some(o);
            }
        }
    }

    // Phase 3 (serial, deterministic): insert verdicts and fold results in
    // the serial pair order, whatever order the workers finished in.
    for (m, o) in misses.iter().zip(outcomes) {
        let o = o.expect("every miss was solved");
        cache.stats_mut().solver_reuses += u64::from(o.solver_reused);
        stats.queries += o.stats.queries;
        stats.sat_queries += o.stats.sat_queries;
        stats.memo_hits += o.stats.memo_hits;
        stats.clauses_encoded += o.stats.clauses_encoded;
        stats.clauses_fresh_equivalent += o.stats.clauses_fresh_equivalent;
        stats.conflicts += o.stats.conflicts;
        stats.propagations += o.stats.propagations;
        stats.decisions += o.stats.decisions;
        cache.insert(
            fps[m.i],
            fps[m.j],
            m.symmetric,
            level,
            &summaries[m.i],
            &summaries[m.j],
            o.pairs.clone(),
        );
        slots[m.slot] = Some(o.pairs);
    }
    let mut found: std::collections::BTreeMap<(String, String, AnomalyKind), AccessPair> =
        std::collections::BTreeMap::new();
    for pairs in slots {
        accumulate(&mut found, pairs.expect("every slot was filled"));
    }
    if let Some(pw) = per_worker {
        if pw.len() < worker_stats.len() {
            pw.resize(worker_stats.len(), WorkerStats::default());
        }
        for (slot, ws) in worker_stats.iter().enumerate() {
            pw[slot].absorb(ws);
        }
    }
    stats.seconds = started.elapsed().as_secs_f64();
    (found.into_values().collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_anomalies;
    use atropos_dsl::parse;

    const TWO_TXNS: &str = "schema T { id: int key, v: int, w: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }
         txn audit(k: int) {
             @A1 y := select v, w from T where id = k;
             @A2 z := select v from T where id = k;
             return y.v + z.v;
         }";

    #[test]
    fn engine_matches_plain_detection_at_every_thread_count() {
        let p = parse(TWO_TXNS).unwrap();
        for level in ConsistencyLevel::ALL {
            let reference = detect_anomalies(&p, level);
            for threads in [1, 2, 8] {
                let engine = DetectionEngine::new(threads);
                let mut session = DetectSession::new();
                let (got, stats) = engine.detect(&p, level, &mut session);
                assert_eq!(got, reference, "{threads} threads @ {level}");
                assert_eq!(stats.pairs, 4);
                // Warm second pass: zero queries, same verdicts.
                let (again, warm) = engine.detect(&p, level, &mut session);
                assert_eq!(again, reference);
                assert_eq!(warm.queries, 0);
            }
        }
    }

    #[test]
    fn per_worker_counters_cover_all_dirty_pairs() {
        let p = parse(TWO_TXNS).unwrap();
        let engine = DetectionEngine::new(2);
        let mut session = DetectSession::new();
        let (_, stats) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
        let solved: u64 = session.per_worker().iter().map(|w| w.pairs_solved).sum();
        assert_eq!(solved, stats.pairs, "all 4 pairs were dirty on a cold cache");
        let queries: u64 = session.per_worker().iter().map(|w| w.queries).sum();
        assert_eq!(queries, stats.queries);
        assert!(session.per_worker().len() <= 2);
    }

    #[test]
    fn thread_count_clamps_and_env_parses() {
        assert_eq!(DetectionEngine::new(0).threads(), 1);
        assert_eq!(DetectionEngine::serial().threads(), 1);
        assert!(DetectionEngine::from_env().threads() >= 1);
    }
}
