//! The parallel detection engine: dirty-pair (and dirty-triple) solving
//! fanned out over a worker pool, deterministically merged.
//!
//! The paper's detection formulation makes every transaction pair an
//! independent satisfiability query, so the re-solved ("dirty") pairs of a
//! cached detection pass are embarrassingly parallel — and the bounded
//! triples of [`DetectMode::Triples`] are just as independent. A
//! [`DetectionEngine`] owns the parallelism policy — a worker count from
//! [`DetectionEngine::new`], the `ATROPOS_THREADS` environment variable,
//! or the machine's available parallelism — and runs each pass in three
//! phases:
//!
//! 1. **Plan** (serial): summarize the program, fingerprint every
//!    transaction, sweep the cache's liveness union, and look every ordered
//!    pair up in the verdict cache. Hits fill their result slots
//!    immediately; misses form the dirty-pair work list. In triple mode the
//!    same planning covers every unordered triple of distinct transactions:
//!    hits replay, statically template-free triples cache an empty verdict
//!    without ever grounding a model, and the remainder forms the
//!    dirty-triple work list.
//! 2. **Solve** (parallel): `std::thread::scope` workers drain each work
//!    list through an atomic cursor. Each worker takes the item's retained
//!    state ([`crate::cache::PairState`] / [`crate::triple::TripleState`])
//!    from the sharded retention maps (states migrate freely between
//!    workers — they are `Send`), solves with the exact same per-item
//!    routine as the serial oracle, and returns the state to its shard.
//! 3. **Merge** (serial, deterministic): verdicts are folded into the
//!    result map and inserted into the cache **in the serial work order**,
//!    not in completion order, so the engine's output — verdicts, the
//!    entire [`DetectStats`] except wall-clock seconds, and every
//!    downstream repair decision — is byte-identical at any thread count
//!    (pinned by `tests/parallel_determinism.rs` and
//!    `tests/triple_vs_pair.rs` on all nine workloads).
//!
//! With one thread the scope is skipped and phase 2 runs inline: the
//! serial cached oracle ([`crate::detect_anomalies_cached`]) is literally
//! this engine at `threads = 1`, so the paths cannot drift apart.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use atropos_dsl::Program;

use crate::cache::{
    txn_fingerprint, LearntPool, PairState, ShardedTripleMap, TripleVerdictKey, VerdictCache,
};
use crate::detect::{accumulate, solve_pair_with_state, AccessPair, AnomalyKind, DetectStats};
use crate::encode::ConsistencyLevel;
use crate::model::{summarize_program, TxnSummary};
use crate::session::DetectSession;
use crate::triple::{has_candidates, solve_triple_with_state, TripleState};

/// Which bounded execution skeleton a detection pass grounds its anomaly
/// queries over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DetectMode {
    /// The paper's **two-instance** bound: the four pair templates only.
    /// The default — every existing oracle entry point runs here.
    #[default]
    Pairs,
    /// The two-instance bound *plus* the bounded **three-instance** chain
    /// templates of [`crate::triple`] (observer chain, circular write
    /// skew, fractured-read chain). Verdicts are a superset of
    /// [`DetectMode::Pairs`] by construction: the pair phase runs
    /// unchanged and the triple phase only ever appends.
    Triples,
}

impl std::fmt::Display for DetectMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DetectMode::Pairs => "pairs",
            DetectMode::Triples => "triples",
        })
    }
}

/// Per-worker counters of one engine's lifetime, indexed by worker slot
/// (worker 0 is also the inline path of a single-threaded pass).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Dirty work items (transaction pairs — and triples, in triple mode)
    /// this worker re-solved.
    pub pairs_solved: u64,
    /// SAT queries those items issued.
    pub queries: u64,
    /// Items that reused a retained solver taken from a sharded map.
    pub solver_reuses: u64,
    /// Wall-clock seconds this worker spent solving.
    pub seconds: f64,
}

impl WorkerStats {
    pub(crate) fn absorb(&mut self, other: &WorkerStats) {
        self.pairs_solved += other.pairs_solved;
        self.queries += other.queries;
        self.solver_reuses += other.solver_reuses;
        self.seconds += other.seconds;
    }
}

/// Parallelism policy for cached detection passes, plus the engine-scoped
/// [`LearntPool`]: lemmas published by the first solve of each canonical
/// `(fingerprint, fingerprint, level)` key, seeded into every later solver
/// built for the same key — across sessions sharing this engine (clones
/// share the pool). Cheap to construct and `Clone`-light (a `usize` and an
/// `Arc`); callers typically build **one engine per sweep** and share it —
/// the per-run state (verdicts, retained solvers) lives in the
/// [`DetectSession`], not here. The pool is on by default; set
/// `ATROPOS_LEARNT_POOL=0` (or call
/// [`DetectionEngine::with_learnt_pool`]`(false)`) to disable it.
///
/// # Examples
///
/// ```
/// use atropos_detect::{ConsistencyLevel, DetectionEngine, DetectSession};
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let engine = DetectionEngine::new(2);
/// let mut session = DetectSession::new();
/// let (first, _) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// assert_eq!(first.len(), 1); // the lost update
/// // Same program again: answered entirely from the session's warm cache.
/// let (again, stats) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// assert_eq!(again, first);
/// assert_eq!(stats.queries, 0);
/// ```
#[derive(Clone)]
pub struct DetectionEngine {
    threads: usize,
    /// `None` when learnt-clause sharing is disabled.
    pool: Option<Arc<LearntPool>>,
    /// Whether UNSAT verdicts capture proof certificates.
    proofs: bool,
}

impl std::fmt::Debug for DetectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionEngine")
            .field("threads", &self.threads)
            .field("learnt_pool", &self.pool.is_some())
            .field("proofs", &self.proofs)
            .finish()
    }
}

impl DetectionEngine {
    /// An engine solving dirty pairs on `threads` workers (clamped to at
    /// least 1). Thread count never affects results, only wall-clock —
    /// and neither does the learnt pool (enabled here unless
    /// `ATROPOS_LEARNT_POOL` says otherwise): seeded lemmas change how
    /// fast a verdict is reached, never which verdict.
    pub fn new(threads: usize) -> DetectionEngine {
        DetectionEngine {
            threads: threads.max(1),
            pool: pool_enabled_from_env().then(|| Arc::new(LearntPool::new())),
            proofs: proofs_enabled_from_env(),
        }
    }

    /// Enables or disables learnt-clause sharing on this engine,
    /// overriding the `ATROPOS_LEARNT_POOL` default. Disabling drops any
    /// published lemmas; enabling an already-enabled engine keeps them.
    pub fn with_learnt_pool(mut self, enabled: bool) -> DetectionEngine {
        if !enabled {
            self.pool = None;
        } else if self.pool.is_none() {
            self.pool = Some(Arc::new(LearntPool::new()));
        }
        self
    }

    /// Enables or disables proof-certificate capture on this engine,
    /// overriding the `ATROPOS_PROOFS` default (off). With proofs on,
    /// every UNSAT query behind a verdict is logged and certified; the
    /// blobs are stored alongside the verdict entries in the session's
    /// cache (see [`VerdictCache::proof_blobs`]). Like the thread count
    /// and the learnt pool, certificates never change verdicts.
    pub fn with_proofs(mut self, enabled: bool) -> DetectionEngine {
        self.proofs = enabled;
        self
    }

    /// Whether this engine captures proof certificates.
    pub fn proofs_enabled(&self) -> bool {
        self.proofs
    }

    /// The engine's learnt-clause pool, when sharing is enabled.
    pub fn learnt_pool(&self) -> Option<&LearntPool> {
        self.pool.as_deref()
    }

    /// The strictly serial engine (`threads = 1`); what
    /// [`crate::detect_anomalies_cached`] runs under the hood.
    pub fn serial() -> DetectionEngine {
        DetectionEngine::new(1)
    }

    /// An engine honouring the `ATROPOS_THREADS` environment variable
    /// (clamped to at least 1, exactly like [`DetectionEngine::new`] — so
    /// `ATROPOS_THREADS=0` means serial, not "use the default"), falling
    /// back to the machine's available parallelism (capped at 8 —
    /// dirty-pair batches rarely feed more workers than that).
    pub fn from_env() -> DetectionEngine {
        let configured = std::env::var("ATROPOS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        DetectionEngine::new(configured.unwrap_or_else(default_threads))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// One cached detection pass over `program` at `level` under the
    /// default [`DetectMode::Pairs`] bound; see
    /// [`DetectionEngine::detect_with_mode`].
    pub fn detect(
        &self,
        program: &Program,
        level: ConsistencyLevel,
        session: &mut DetectSession,
    ) -> (Vec<AccessPair>, DetectStats) {
        self.detect_with_mode(program, level, DetectMode::Pairs, session)
    }

    /// One cached detection pass over `program` at `level` under `mode`,
    /// answering untouched pairs (and, in triple mode, triples) from the
    /// session's verdict cache and fanning the dirty remainder out over
    /// this engine's workers.
    ///
    /// In [`DetectMode::Pairs`] this is verdict-identical to
    /// [`crate::detect_anomalies`]; in [`DetectMode::Triples`] the result
    /// is a superset of the pair verdicts. Both are byte-identical to
    /// themselves at every thread count; see the module docs for the
    /// three-phase structure and the determinism argument.
    pub fn detect_with_mode(
        &self,
        program: &Program,
        level: ConsistencyLevel,
        mode: DetectMode,
        session: &mut DetectSession,
    ) -> (Vec<AccessPair>, DetectStats) {
        let (cache, per_worker) = session.cache_and_workers();
        detect_with_cache(
            self.threads,
            program,
            level,
            mode,
            cache,
            Some(per_worker),
            self.pool.as_deref(),
            self.proofs,
        )
    }
}

/// Whether `ATROPOS_LEARNT_POOL` leaves learnt-clause sharing on (the
/// default): anything but `0` / `false` / `off` does.
fn pool_enabled_from_env() -> bool {
    match std::env::var("ATROPOS_LEARNT_POOL") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// Whether `ATROPOS_PROOFS` switches proof-certificate capture on: unset
/// (the default) means off — proof logging is strictly opt-in, so the
/// plain detection paths stay zero-cost — and anything but `0` / `false` /
/// `off` enables it.
pub(crate) fn proofs_enabled_from_env() -> bool {
    match std::env::var("ATROPOS_PROOFS") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "false" | "off"
        ),
        Err(_) => false,
    }
}

/// Smallest dirty-item batch worth one worker thread: below this, the
/// spawn/join overhead rivals the SAT work itself and the pass runs
/// inline. Thread count never affects verdicts, so this is purely a
/// scheduling knob.
const MIN_PAIRS_PER_WORKER: usize = 4;

/// Default worker count when `ATROPOS_THREADS` is unset.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// One dirty pair of the work list: its slot in the pass's result vector
/// and the ordered transaction indices.
struct Miss {
    slot: usize,
    i: usize,
    j: usize,
    symmetric: bool,
}

/// One dirty triple of the work list: its slot in the triple result
/// vector, the transaction indices in **canonical (fingerprint-sorted)
/// orientation** — the orientation the cache key, the grounded model, and
/// any retained [`TripleState`] all share, so a state retained under one
/// program is never replayed under a differently-ordered sibling — and
/// the canonical cache key.
struct TrioMiss {
    slot: usize,
    idx: [usize; 3],
    key: TripleVerdictKey,
}

/// Reorders a triple of transaction indices into the canonical
/// orientation: ascending by fingerprint (ties — only possible between
/// identical summaries — broken by index, keeping the order total).
pub(crate) fn canonical_trio(idx: [usize; 3], fps: &[u64]) -> [usize; 3] {
    let mut c = idx;
    c.sort_unstable_by_key(|&i| (fps[i], i));
    c
}

/// The outcome of solving one dirty work item, produced on whatever worker
/// claimed it and merged on the coordinating thread.
pub(crate) struct Outcome {
    pub(crate) pairs: Vec<AccessPair>,
    pub(crate) stats: DetectStats,
    pub(crate) solver_reused: bool,
    /// Proof certificates of this item's UNSAT queries (empty when proof
    /// capture is off), stored with the verdict at the merge point.
    pub(crate) proofs: Vec<Vec<u8>>,
}

fn solve_miss(
    summaries: &[TxnSummary],
    fps: &[u64],
    level: ConsistencyLevel,
    states: &crate::cache::ShardedStateMap,
    pool: Option<&LearntPool>,
    proofs: bool,
    m: &Miss,
) -> Outcome {
    let (t1, t2) = (&summaries[m.i], &summaries[m.j]);
    let key = (fps[m.i], fps[m.j]);
    let mut state = states.take(key).unwrap_or_else(|| PairState::new(t1, t2));
    let solver_reused = state.solver.is_some();
    // A state without a solver seeds published lemmas at its (lazy) solver
    // construction; the pool is frozen while the batch runs, so the seed is
    // the same whichever worker claims this item.
    let seed = match state.solver {
        Some(_) => None,
        None => pool.and_then(|p| p.pair_seed(key.0, key.1, level)),
    };
    let (pairs, stats, certs) = solve_pair_with_state(
        t1,
        t2,
        m.symmetric,
        level,
        &mut state,
        seed.as_deref().map(Vec::as_slice),
        proofs,
    );
    states.store(key, state);
    Outcome {
        pairs,
        stats,
        solver_reused,
        proofs: certs,
    }
}

fn solve_trio(
    summaries: &[TxnSummary],
    fps: &[u64],
    level: ConsistencyLevel,
    states: &ShardedTripleMap,
    pool: Option<&LearntPool>,
    proofs: bool,
    m: &TrioMiss,
) -> Outcome {
    let ts = [
        &summaries[m.idx[0]],
        &summaries[m.idx[1]],
        &summaries[m.idx[2]],
    ];
    let tfps = [fps[m.idx[0]], fps[m.idx[1]], fps[m.idx[2]]];
    let key = (m.key.0, m.key.1, m.key.2);
    let mut state = states.take(key).unwrap_or_else(|| TripleState::new(ts));
    let solver_reused = state.solver.is_some();
    let seed = match state.solver {
        Some(_) => None,
        None => pool.and_then(|p| p.triple_seed(&m.key)),
    };
    let (pairs, stats, certs) = solve_triple_with_state(
        ts,
        tfps,
        level,
        &mut state,
        seed.as_deref().map(Vec::as_slice),
        proofs,
    );
    states.store(key, state);
    Outcome {
        pairs,
        stats,
        solver_reused,
        proofs: certs,
    }
}

/// Drains `items` through an atomic work cursor on up to `threads` scoped
/// workers (inline when the batch is too small to feed more than one —
/// incremental repair's later passes dirty a handful of items, and paying
/// a spawn/join round-trip for them would hand the serial driver a
/// regression). Returns the outcomes indexed like `items` plus per-worker
/// counters. Outcome order is by item index, never completion order.
pub(crate) fn run_pool<T: Sync>(
    threads: usize,
    items: &[T],
    solve: impl Fn(&T) -> Outcome + Sync,
) -> (Vec<Option<Outcome>>, Vec<WorkerStats>) {
    let workers = threads.min(items.len() / MIN_PAIRS_PER_WORKER).max(1);
    let mut outcomes: Vec<Option<Outcome>> = Vec::with_capacity(items.len());
    outcomes.resize_with(items.len(), || None);
    let mut worker_stats = vec![WorkerStats::default(); workers];
    if workers <= 1 {
        let w = &mut worker_stats[0];
        let t0 = Instant::now();
        for (k, item) in items.iter().enumerate() {
            let o = solve(item);
            w.pairs_solved += 1;
            w.queries += o.stats.queries;
            w.solver_reuses += u64::from(o.solver_reused);
            outcomes[k] = Some(o);
        }
        w.seconds += t0.elapsed().as_secs_f64();
    } else {
        let next = AtomicUsize::new(0);
        let solve = &solve;
        let produced: Vec<(usize, WorkerStats, Vec<(usize, Outcome)>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let next = &next;
                        scope.spawn(move || {
                            let t0 = Instant::now();
                            let mut ws = WorkerStats::default();
                            let mut out = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= items.len() {
                                    break;
                                }
                                let o = solve(&items[k]);
                                ws.pairs_solved += 1;
                                ws.queries += o.stats.queries;
                                ws.solver_reuses += u64::from(o.solver_reused);
                                out.push((k, o));
                            }
                            ws.seconds = t0.elapsed().as_secs_f64();
                            (w, ws, out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("detection worker panicked"))
                    .collect()
            });
        for (w, ws, out) in produced {
            worker_stats[w] = ws;
            for (k, o) in out {
                outcomes[k] = Some(o);
            }
        }
    }
    (outcomes, worker_stats)
}

/// Folds one solved outcome's counters into the pass statistics.
pub(crate) fn merge_outcome_stats(stats: &mut DetectStats, o: &Outcome) {
    stats.queries += o.stats.queries;
    stats.sat_queries += o.stats.sat_queries;
    stats.memo_hits += o.stats.memo_hits;
    stats.clauses_encoded += o.stats.clauses_encoded;
    stats.clauses_fresh_equivalent += o.stats.clauses_fresh_equivalent;
    stats.conflicts += o.stats.conflicts;
    stats.propagations += o.stats.propagations;
    stats.decisions += o.stats.decisions;
    stats.learnt_seeded += o.stats.learnt_seeded;
}

/// Decides, at plan time, which misses may publish their retained lemmas
/// to the engine's [`LearntPool`] at the merge point. Publication must be
/// thread-count blind, so a miss qualifies only when the exported clause
/// set is a pure function of the plan: the pool does not hold the key yet,
/// no retained state existed when the batch was planned (a retained
/// solver's lemmas depend on its whole query history), and the state key
/// is solved exactly once in this batch (sibling misses sharing a state —
/// the symmetric/asymmetric orientations of a self-pair, duplicate
/// fingerprints inside one program — race on take/store, so whichever
/// solver survives is a scheduling accident).
pub(crate) fn publishable_flags<K: std::hash::Hash + Eq + Copy>(
    state_keys: &[K],
    fresh: impl Fn(&K) -> bool,
    pool_lacks: impl Fn(&K) -> bool,
) -> Vec<bool> {
    let mut count: std::collections::HashMap<K, u32> = std::collections::HashMap::new();
    for k in state_keys {
        *count.entry(*k).or_insert(0) += 1;
    }
    state_keys
        .iter()
        .map(|k| count[k] == 1 && fresh(k) && pool_lacks(k))
        .collect()
}

/// Publishes the lemmas retained by one pair state's solver (if it built
/// one) to the engine's pool — called at the serial merge point, after the
/// batch's workers have all returned their states.
pub(crate) fn publish_pair_state(
    cache: &VerdictCache,
    pool: Option<&LearntPool>,
    fp1: u64,
    fp2: u64,
    level: ConsistencyLevel,
) {
    let Some(pool) = pool else { return };
    if let Some(state) = cache.states().take((fp1, fp2)) {
        if let Some(ps) = &state.solver {
            let exported = ps.export_learnts();
            if !exported.is_empty() {
                pool.publish_pair(fp1, fp2, level, exported);
            }
        }
        cache.states().store((fp1, fp2), state);
    }
}

/// The triple sibling of [`publish_pair_state`].
pub(crate) fn publish_trio_state(
    cache: &VerdictCache,
    pool: Option<&LearntPool>,
    key: TripleVerdictKey,
) {
    let Some(pool) = pool else { return };
    if let Some(state) = cache.triple_states().take((key.0, key.1, key.2)) {
        if let Some(ts) = &state.solver {
            let exported = ts.export_learnts();
            if !exported.is_empty() {
                pool.publish_triple(key, exported);
            }
        }
        cache.triple_states().store((key.0, key.1, key.2), state);
    }
}

/// The shared implementation behind [`DetectionEngine::detect_with_mode`]
/// and the serial [`crate::detect_anomalies_cached`]: plan serially, solve
/// the misses on up to `threads` workers, merge deterministically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn detect_with_cache(
    threads: usize,
    program: &Program,
    level: ConsistencyLevel,
    mode: DetectMode,
    cache: &mut VerdictCache,
    per_worker: Option<&mut Vec<WorkerStats>>,
    pool: Option<&LearntPool>,
    proofs: bool,
) -> (Vec<AccessPair>, DetectStats) {
    let started = Instant::now();
    let summaries = summarize_program(program);
    let fps: Vec<u64> = summaries.iter().map(txn_fingerprint).collect();
    // Fold this program into the session's liveness union and prune entries
    // outside it; an entry the sweep keeps is guaranteed to hit below (this
    // pass or a later one over a program already seen).
    cache.sweep_live(&fps);
    let n = summaries.len();
    let mut stats = DetectStats::default();
    let mut all_workers: Vec<WorkerStats> = Vec::new();
    let absorb = |all: &mut Vec<WorkerStats>, ws: &[WorkerStats]| {
        if all.len() < ws.len() {
            all.resize(ws.len(), WorkerStats::default());
        }
        for (slot, w) in ws.iter().enumerate() {
            all[slot].absorb(w);
        }
    };

    // Phase 1 (serial): verdict lookups. Hits fill their slots; misses
    // become the dirty-pair work list.
    let mut slots: Vec<Option<Vec<AccessPair>>> = Vec::with_capacity(n * n);
    let mut misses: Vec<Miss> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            stats.pairs += 1;
            let symmetric = i <= j;
            let slot = slots.len();
            match cache.lookup(fps[i], fps[j], symmetric, level) {
                Some(pairs) => slots.push(Some(pairs)),
                None => {
                    slots.push(None);
                    misses.push(Miss {
                        slot,
                        i,
                        j,
                        symmetric,
                    });
                }
            }
        }
    }

    // Which misses may publish lemmas at the merge point — a plan-time
    // fact, so the pool's evolution is byte-identical at any thread count.
    let pair_publish: Vec<bool> = match pool {
        Some(p) => {
            let keys: Vec<(u64, u64)> = misses.iter().map(|m| (fps[m.i], fps[m.j])).collect();
            publishable_flags(
                &keys,
                |k| !cache.states().contains(k),
                |k| !p.has_pair(k.0, k.1, level),
            )
        }
        None => vec![false; misses.len()],
    };

    // Phase 2: solve the dirty pairs on the pool.
    let (outcomes, worker_stats) = run_pool(threads, &misses, |m| {
        solve_miss(&summaries, &fps, level, cache.states(), pool, proofs, m)
    });
    absorb(&mut all_workers, &worker_stats);

    // Phase 3 (serial, deterministic): insert verdicts and fold results in
    // the serial pair order, whatever order the workers finished in.
    for ((m, o), publish) in misses.iter().zip(outcomes).zip(&pair_publish) {
        let o = o.expect("every miss was solved");
        cache.stats_mut().solver_reuses += u64::from(o.solver_reused);
        cache.stats_mut().learnt_seeded += o.stats.learnt_seeded;
        merge_outcome_stats(&mut stats, &o);
        if *publish {
            publish_pair_state(cache, pool, fps[m.i], fps[m.j], level);
        }
        cache.insert(
            fps[m.i],
            fps[m.j],
            m.symmetric,
            level,
            &summaries[m.i],
            &summaries[m.j],
            o.pairs.clone(),
            o.proofs,
        );
        slots[m.slot] = Some(o.pairs);
    }

    // The triple phases: same plan/solve/merge shape over every unordered
    // triple of distinct transactions. Statically template-free triples
    // are settled during planning (an empty verdict, no model, no solver).
    let mut trio_slots: Vec<Option<Vec<AccessPair>>> = Vec::new();
    if mode == DetectMode::Triples {
        let mut trio_misses: Vec<TrioMiss> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    stats.triples += 1;
                    // Everything downstream — the cache key, the static
                    // prefilter, the grounded model, retained states —
                    // works in the one canonical orientation, so a state
                    // keyed here can never be replayed against summaries
                    // in a different instance order.
                    let idx = canonical_trio([i, j, k], &fps);
                    let key = (fps[idx[0]], fps[idx[1]], fps[idx[2]], level);
                    let slot = trio_slots.len();
                    match cache.lookup_triple(key) {
                        Some(pairs) => trio_slots.push(Some(pairs)),
                        None => {
                            let ts =
                                [&summaries[idx[0]], &summaries[idx[1]], &summaries[idx[2]]];
                            if has_candidates(ts, [fps[idx[0]], fps[idx[1]], fps[idx[2]]]) {
                                trio_slots.push(None);
                                trio_misses.push(TrioMiss { slot, idx, key });
                            } else {
                                cache.insert_triple(key, ts, Vec::new(), Vec::new());
                                trio_slots.push(Some(Vec::new()));
                            }
                        }
                    }
                }
            }
        }

        let trio_publish: Vec<bool> = match pool {
            Some(p) => {
                let keys: Vec<(u64, u64, u64)> =
                    trio_misses.iter().map(|m| (m.key.0, m.key.1, m.key.2)).collect();
                publishable_flags(
                    &keys,
                    |k| !cache.triple_states().contains(k),
                    |k| !p.has_triple(&(k.0, k.1, k.2, level)),
                )
            }
            None => vec![false; trio_misses.len()],
        };

        let (trio_outcomes, trio_workers) = run_pool(threads, &trio_misses, |m| {
            solve_trio(&summaries, &fps, level, cache.triple_states(), pool, proofs, m)
        });
        absorb(&mut all_workers, &trio_workers);

        for ((m, o), publish) in trio_misses.iter().zip(trio_outcomes).zip(&trio_publish) {
            let o = o.expect("every triple miss was solved");
            cache.stats_mut().solver_reuses += u64::from(o.solver_reused);
            cache.stats_mut().learnt_seeded += o.stats.learnt_seeded;
            merge_outcome_stats(&mut stats, &o);
            if *publish {
                publish_trio_state(cache, pool, m.key);
            }
            cache.insert_triple(
                m.key,
                [
                    &summaries[m.idx[0]],
                    &summaries[m.idx[1]],
                    &summaries[m.idx[2]],
                ],
                o.pairs.clone(),
                o.proofs,
            );
            trio_slots[m.slot] = Some(o.pairs);
        }
    }

    let mut found: std::collections::BTreeMap<(String, String, AnomalyKind), AccessPair> =
        std::collections::BTreeMap::new();
    for pairs in slots.into_iter().chain(trio_slots) {
        accumulate(&mut found, pairs.expect("every slot was filled"));
    }
    if let Some(pw) = per_worker {
        if pw.len() < all_workers.len() {
            pw.resize(all_workers.len(), WorkerStats::default());
        }
        for (slot, ws) in all_workers.iter().enumerate() {
            pw[slot].absorb(ws);
        }
    }
    stats.seconds = started.elapsed().as_secs_f64();
    (found.into_values().collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_anomalies;
    use atropos_dsl::parse;

    const TWO_TXNS: &str = "schema T { id: int key, v: int, w: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }
         txn audit(k: int) {
             @A1 y := select v, w from T where id = k;
             @A2 z := select v from T where id = k;
             return y.v + z.v;
         }";

    #[test]
    fn engine_matches_plain_detection_at_every_thread_count() {
        let p = parse(TWO_TXNS).unwrap();
        for level in ConsistencyLevel::ALL {
            let reference = detect_anomalies(&p, level);
            for threads in [1, 2, 8] {
                let engine = DetectionEngine::new(threads);
                let mut session = DetectSession::new();
                let (got, stats) = engine.detect(&p, level, &mut session);
                assert_eq!(got, reference, "{threads} threads @ {level}");
                assert_eq!(stats.pairs, 4);
                // Warm second pass: zero queries, same verdicts.
                let (again, warm) = engine.detect(&p, level, &mut session);
                assert_eq!(again, reference);
                assert_eq!(warm.queries, 0);
            }
        }
    }

    #[test]
    fn per_worker_counters_cover_all_dirty_pairs() {
        let p = parse(TWO_TXNS).unwrap();
        let engine = DetectionEngine::new(2);
        let mut session = DetectSession::new();
        let (_, stats) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
        let solved: u64 = session.per_worker().iter().map(|w| w.pairs_solved).sum();
        assert_eq!(solved, stats.pairs, "all 4 pairs were dirty on a cold cache");
        let queries: u64 = session.per_worker().iter().map(|w| w.queries).sum();
        assert_eq!(queries, stats.queries);
        assert!(session.per_worker().len() <= 2);
    }

    #[test]
    fn thread_count_clamps_and_env_parses() {
        assert_eq!(DetectionEngine::new(0).threads(), 1);
        assert_eq!(DetectionEngine::serial().threads(), 1);
        assert!(DetectionEngine::from_env().threads() >= 1);
    }

    /// The 3-hop relay program: pair mode reports it clean at EC, triple
    /// mode surfaces the observer chain — and the triple verdicts cache.
    const RELAY: &str = "schema MSG { m_id: int key, m_body: string }
         schema FEED { f_id: int key, f_body: string }
         txn post(m: int, body: string) {
             @W1 update MSG set m_body = body where m_id = m;
             return 0;
         }
         txn relay(m: int, f: int) {
             @R2 x := select m_body from MSG where m_id = m;
             @W2 update FEED set f_body = x.m_body where f_id = f;
             return 0;
         }
         txn timeline(f: int, m: int) {
             @R3 y := select f_body from FEED where f_id = f;
             @R4 z := select m_body from MSG where m_id = m;
             return 0;
         }";

    #[test]
    fn triple_mode_extends_pair_mode_and_caches() {
        let p = parse(RELAY).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let engine = DetectionEngine::serial();
        let mut session = DetectSession::new();
        let (pairs_only, _) = engine.detect(&p, ec, &mut session);
        assert!(pairs_only.is_empty(), "pair oracle is blind here: {pairs_only:?}");
        let (with_triples, stats) =
            engine.detect_with_mode(&p, ec, DetectMode::Triples, &mut session);
        assert_eq!(stats.triples, 1, "one unordered triple of 3 txns");
        assert_eq!(with_triples.len(), 1);
        assert_eq!(with_triples[0].kind, AnomalyKind::ObserverChain);
        // Superset: every pair verdict survives in triple mode.
        for p in &pairs_only {
            assert!(with_triples.contains(p));
        }
        // Warm triple pass: the triple verdict replays without a query.
        let (again, warm) = engine.detect_with_mode(&p, ec, DetectMode::Triples, &mut session);
        assert_eq!(again, with_triples);
        assert_eq!(warm.queries, 0);
        assert!(session.cache_stats().triple_hits > 0);
    }

    /// A retained `TripleState` is keyed (and grounded) in the canonical
    /// fingerprint orientation, so a session shared across two programs
    /// that declare the same three transactions in *different order* must
    /// replay the state correctly — not against reshuffled instance spans.
    #[test]
    fn retained_triple_states_survive_transaction_reordering() {
        let forward = parse(RELAY).unwrap();
        // The same three transactions, declared in reverse order.
        let mut reversed = forward.clone();
        reversed.transactions.reverse();
        let engine = DetectionEngine::serial();
        let mut session = DetectSession::new();
        // Prime retained triple state via the forward program at EC…
        let (ec_fwd, _) =
            engine.detect_with_mode(&forward, ConsistencyLevel::EventualConsistency,
                DetectMode::Triples, &mut session);
        // …then query the reversed program at another level: the verdict
        // cache misses (different level) and the retained state is reused.
        let (cc_rev, _) = engine.detect_with_mode(&reversed,
            ConsistencyLevel::CausalConsistency, DetectMode::Triples, &mut session);
        let mut fresh = DetectSession::new();
        let (cc_ref, _) = engine.detect_with_mode(&reversed,
            ConsistencyLevel::CausalConsistency, DetectMode::Triples, &mut fresh);
        assert_eq!(cc_rev, cc_ref);
        // And the reversed program's EC pass replays the forward verdict.
        let before = session.cache_stats();
        let (ec_rev, stats) = engine.detect_with_mode(&reversed,
            ConsistencyLevel::EventualConsistency, DetectMode::Triples, &mut session);
        assert_eq!(ec_rev, ec_fwd);
        assert_eq!(stats.queries, 0, "orientation-normalized entries replay");
        assert!(session.cache_stats().since(&before).triple_hits > 0);
    }

    #[test]
    fn triple_mode_is_thread_count_invariant_here() {
        let p = parse(RELAY).unwrap();
        for level in ConsistencyLevel::ALL {
            let mut reference: Option<Vec<AccessPair>> = None;
            for threads in [1, 2, 8] {
                let engine = DetectionEngine::new(threads);
                let mut session = DetectSession::new();
                let (got, _) =
                    engine.detect_with_mode(&p, level, DetectMode::Triples, &mut session);
                match &reference {
                    None => reference = Some(got),
                    Some(exp) => assert_eq!(&got, exp, "{threads} threads @ {level}"),
                }
            }
        }
    }
}
