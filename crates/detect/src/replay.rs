//! Witness replay: decoding dirty SAT verdicts into concrete schedules.
//!
//! The detector reports an anomaly as an [`AccessPair`] — two command
//! labels, a template, and the witnessing transactions — established by a
//! satisfiable pattern query. The satisfying assignment behind that verdict
//! is a full bounded execution (an arbitration order over every command
//! instance and a visibility relation over every atom), which this module
//! extracts ([`PairSolver::witness`] / [`TripleSolver::witness`]) and
//! decodes into an [`atropos_sim::ConcreteSchedule`]: a total order of
//! per-instance commands with session and replica placement, explicit
//! replication steps realizing the model's read-from edges, and the
//! anomaly's observable predicate as visibility checks. Running the
//! schedule on the simulator ([`atropos_sim::run_schedule`]) then *proves*
//! the verdict: the anomaly manifests as concrete reads observing (or
//! missing) concrete writes on a cluster whose executor enforces honest
//! weak-store semantics.
//!
//! Verdicts do not store their requirement vectors (they travel through
//! the verdict cache and across processes), so the decoder re-derives
//! them: it re-enumerates exactly the template candidates the detector
//! enumerates, keeps those whose reported pair matches the verdict's
//! canonical key, and asks the solver for a witness of the first
//! realizable one. The solver is deterministic, so the same verdict always
//! decodes to the byte-identical schedule.
//!
//! Two anchoring modes serve the two ends of a repair run:
//!
//! * **strict** ([`decode_witness`]) — the candidate must reproduce the
//!   verdict's exact command labels; used on the *original* program, where
//!   every initial dirty verdict must decode and manifest;
//! * **loose** ([`decode_witness_marked`]) — any candidate of the
//!   verdict's template over the same transaction roles counts; used on
//!   the *repaired* program, whose refactored statements carry fresh
//!   labels. Transactions in the marked set are analysed under
//!   [`ConsistencyLevel::Serializable`] when every participant is marked
//!   (the AT-SC rule of the detector), so a verdict whose participants the
//!   repair left to runtime coordination counts as suppressed. `None`
//!   means *suppressed*: no realizable witness of the anomaly survives.

use std::collections::{BTreeMap, BTreeSet};

use atropos_dsl::Program;
use atropos_sim::{
    run_schedule, ConcreteSchedule, RecordAccess, ScheduleEvent, ScheduleOutcome, ScheduledOp,
    VisibilityCheck,
};

use crate::cache::txn_fingerprint;
use crate::detect::{pair_key, AccessPair, AnomalyKind};
use crate::encode::{ConsistencyLevel, InstanceModel, PairSolver, VisRequirement, WitnessTruth};
use crate::model::{summarize_program, CmdKind, TxnSummary};
use crate::triple::{
    anomaly as triple_anomaly, collect_candidates, requirements as triple_requirements,
    TripleModel, TripleSolver,
};

/// A realizable witness found for a verdict: the grounded model, the
/// instance-to-transaction assignment, the requirement vector that was
/// satisfiable, and the decoded truth assignment.
struct Found {
    model: InstanceModel,
    txns: Vec<String>,
    reqs: Vec<VisRequirement>,
    truth: WitnessTruth,
}

/// One template candidate of a pair search: the queries to try in template
/// order (first satisfiable one wins) and the verdict(s) the detector
/// would report for it.
struct PairCandidate {
    queries: Vec<Vec<VisRequirement>>,
    pairs: Vec<AccessPair>,
}

/// Decodes `verdict` into a concrete schedule on `program`, strictly
/// anchored: the witness search only accepts template candidates that
/// reproduce the verdict's exact command labels. Returns `None` when no
/// such candidate is realizable under `level` — which, for a verdict the
/// detector just reported at that level, indicates a detector/replay
/// divergence (the differential harness asserts it never happens).
///
/// # Examples
///
/// ```
/// use atropos_detect::{detect_anomalies, replay_verdict, ConsistencyLevel};
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let ec = ConsistencyLevel::EventualConsistency;
/// let verdicts = detect_anomalies(&p, ec);
/// let outcome = replay_verdict(&p, &verdicts[0], ec).expect("decodes");
/// assert!(outcome.manifested); // the lost update is observable on the cluster
/// ```
pub fn decode_witness(
    program: &Program,
    verdict: &AccessPair,
    level: ConsistencyLevel,
) -> Option<ConcreteSchedule> {
    decode(program, verdict, level, &BTreeSet::new(), true)
}

/// Decodes `verdict` against a (typically repaired) program, loosely
/// anchored: any realizable candidate of the verdict's template over the
/// same transaction roles counts, regardless of command labels (repair
/// rewrites statements, so labels do not survive). Transaction tuples
/// entirely inside `marked` are queried under
/// [`ConsistencyLevel::Serializable`] — the detector's AT-SC rule for
/// transactions the repair left to runtime coordination. Returns `None`
/// when the anomaly is **suppressed**: no realizable witness exists.
pub fn decode_witness_marked(
    program: &Program,
    verdict: &AccessPair,
    level: ConsistencyLevel,
    marked: &BTreeSet<String>,
) -> Option<ConcreteSchedule> {
    decode(program, verdict, level, marked, false)
}

/// Strictly decodes `verdict` ([`decode_witness`]) and runs the schedule
/// on the simulated cluster, returning what the run observed.
pub fn replay_verdict(
    program: &Program,
    verdict: &AccessPair,
    level: ConsistencyLevel,
) -> Option<ScheduleOutcome> {
    Some(run_schedule(&decode_witness(program, verdict, level)?))
}

fn decode(
    program: &Program,
    verdict: &AccessPair,
    level: ConsistencyLevel,
    marked: &BTreeSet<String>,
    strict: bool,
) -> Option<ConcreteSchedule> {
    let summaries = summarize_program(program);
    let found = match verdict.kind {
        AnomalyKind::LostUpdate
        | AnomalyKind::DirtyRead
        | AnomalyKind::NonRepeatableRead
        | AnomalyKind::NonMonotonicRead => {
            find_pair_witness(&summaries, verdict, level, marked, strict)
        }
        AnomalyKind::ObserverChain
        | AnomalyKind::WriteSkewCycle
        | AnomalyKind::FracturedRead => {
            find_triple_witness(&summaries, verdict, level, marked, strict)
        }
    }?;
    Some(build_schedule(found, verdict.kind))
}

/// The detector's AT-SC rule: a tuple whose instances are all marked runs
/// under serializability; anything else runs at the base level.
fn effective_level(
    level: ConsistencyLevel,
    marked: &BTreeSet<String>,
    participants: &[&str],
) -> ConsistencyLevel {
    if !marked.is_empty() && participants.iter().all(|t| marked.contains(*t)) {
        ConsistencyLevel::Serializable
    } else {
        level
    }
}

/// Does a candidate's reported pair satisfy the anchor?
fn anchored(verdict: &AccessPair, produced: &AccessPair, strict: bool) -> bool {
    if strict {
        pair_key(produced) == pair_key(verdict)
    } else {
        produced.kind == verdict.kind
    }
}

fn find_pair_witness(
    summaries: &[TxnSummary],
    verdict: &AccessPair,
    level: ConsistencyLevel,
    marked: &BTreeSet<String>,
    strict: bool,
) -> Option<Found> {
    let by_name = |n: &str| summaries.iter().find(|s| s.name == n);
    // The (instance 0, instance 1) assignments the detector could have
    // analysed this verdict under: lost update anchors its pair across the
    // two instances (either orientation), the read-instability templates
    // put both anchor commands in instance 0 and the interfering
    // transaction — recorded as a witness — in instance 1.
    let orderings: Vec<(&TxnSummary, &TxnSummary)> = match verdict.kind {
        AnomalyKind::LostUpdate => {
            let s1 = by_name(&verdict.txn1)?;
            let s2 = by_name(&verdict.txn2)?;
            if verdict.txn1 == verdict.txn2 {
                vec![(s1, s2)]
            } else {
                vec![(s1, s2), (s2, s1)]
            }
        }
        _ => {
            let s1 = by_name(&verdict.txn1)?;
            verdict
                .witnesses
                .iter()
                .filter_map(|w| Some((s1, by_name(w)?)))
                .collect()
        }
    };
    for (t1, t2) in orderings {
        let model = InstanceModel::new(t1, t2);
        let eff = effective_level(level, marked, &[&t1.name, &t2.name]);
        let mut solver = PairSolver::new(&model);
        for cand in pair_candidates(verdict.kind, t1, t2, &model) {
            if !cand.pairs.iter().any(|p| anchored(verdict, p, strict)) {
                continue;
            }
            for reqs in cand.queries {
                if let Some(truth) = solver.witness(&model, eff, &reqs) {
                    return Some(Found {
                        model,
                        txns: vec![t1.name.clone(), t2.name.clone()],
                        reqs,
                        truth,
                    });
                }
            }
        }
    }
    None
}

/// Re-enumerates the pair template candidates of one kind, mirroring the
/// enumeration order of the detector's `analyse_pair` — without the
/// first-hit breaks (anchor matching replaces them) and without issuing
/// queries (the caller solves the matching candidates).
fn pair_candidates(
    kind: AnomalyKind,
    t1: &TxnSummary,
    t2: &TxnSummary,
    model: &InstanceModel,
) -> Vec<PairCandidate> {
    let n1 = model.n1;
    let mut out = Vec::new();

    let cmd_records = |range: std::ops::Range<usize>| -> Vec<(usize, usize)> {
        range
            .flat_map(|c| {
                model.cmds[c]
                    .records
                    .iter()
                    .map(move |&r| (c, r))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    match kind {
        AnomalyKind::LostUpdate => {
            for &(r1, w1, ref f) in &t1.rmw_pairs() {
                for &(r2, w2, ref f2) in &t2.rmw_pairs() {
                    if f != f2 || t1.commands[w1].schema != t2.commands[w2].schema {
                        continue;
                    }
                    let (c1, cw1, c2, cw2) = (r1, w1, n1 + r2, n1 + w2);
                    let rec1 = model.cmds[c1]
                        .records
                        .iter()
                        .copied()
                        .find(|r| model.cmds[cw1].records.contains(r));
                    let rec2 = model.cmds[c2]
                        .records
                        .iter()
                        .copied()
                        .find(|r| model.cmds[cw2].records.contains(r));
                    let (Some(rec1), Some(rec2)) = (rec1, rec2) else { continue };
                    if !model.may_alias_records(rec1, rec2) {
                        continue;
                    }
                    let (Some(a_w1), Some(a_w2)) =
                        (model.atom(cw1, rec1), model.atom(cw2, rec2))
                    else {
                        continue;
                    };
                    let fs = BTreeSet::from([f.clone()]);
                    out.push(PairCandidate {
                        queries: vec![vec![(a_w2, c1, false), (a_w1, c2, false)]],
                        pairs: vec![
                            crate::detect::make_pair(
                                t1,
                                &t1.commands[r1],
                                fs.clone(),
                                t2,
                                &t2.commands[w2],
                                fs.clone(),
                                BTreeSet::new(),
                                AnomalyKind::LostUpdate,
                            ),
                            crate::detect::make_pair(
                                t2,
                                &t2.commands[r2],
                                fs.clone(),
                                t1,
                                &t1.commands[w1],
                                fs,
                                BTreeSet::new(),
                                AnomalyKind::LostUpdate,
                            ),
                        ],
                    });
                }
            }
        }
        AnomalyKind::DirtyRead => {
            let writes1: Vec<(usize, usize)> = cmd_records(0..n1)
                .into_iter()
                .filter(|&(c, _)| !model.cmds[c].summary.writes.is_empty())
                .collect();
            let reads2: Vec<(usize, usize)> = cmd_records(n1..model.cmds.len())
                .into_iter()
                .filter(|&(c, _)| model.cmds[c].summary.kind == CmdKind::Select)
                .collect();
            for (wi, &(w1, r1)) in writes1.iter().enumerate() {
                for &(w2, r2) in &writes1[wi + 1..] {
                    for &(d1, dr1) in &reads2 {
                        if !model.may_alias_records(dr1, r1) {
                            continue;
                        }
                        let f1: BTreeSet<String> = model.cmds[w1]
                            .summary
                            .writes
                            .intersection(&model.cmds[d1].summary.reads)
                            .cloned()
                            .collect();
                        if f1.is_empty() {
                            continue;
                        }
                        for &(d2, dr2) in &reads2 {
                            if !model.may_alias_records(dr2, r2) {
                                continue;
                            }
                            let f2: BTreeSet<String> = model.cmds[w2]
                                .summary
                                .writes
                                .intersection(&model.cmds[d2].summary.reads)
                                .cloned()
                                .collect();
                            if f2.is_empty() {
                                continue;
                            }
                            let (Some(a1), Some(a2)) =
                                (model.atom(w1, r1), model.atom(w2, r2))
                            else {
                                continue;
                            };
                            out.push(PairCandidate {
                                queries: vec![
                                    vec![(a1, d1, true), (a2, d2, false)],
                                    vec![(a2, d2, true), (a1, d1, false)],
                                ],
                                pairs: vec![crate::detect::make_pair(
                                    t1,
                                    &model.cmds[w1].summary,
                                    f1.clone(),
                                    t1,
                                    &model.cmds[w2].summary,
                                    f2,
                                    BTreeSet::from([t2.name.clone()]),
                                    AnomalyKind::DirtyRead,
                                )],
                            });
                        }
                    }
                }
            }
        }
        AnomalyKind::NonRepeatableRead | AnomalyKind::NonMonotonicRead => {
            let reads1: Vec<(usize, usize)> = cmd_records(0..n1)
                .into_iter()
                .filter(|&(c, _)| model.cmds[c].summary.kind == CmdKind::Select)
                .collect();
            let writes2: Vec<(usize, usize)> = cmd_records(n1..model.cmds.len())
                .into_iter()
                .filter(|&(c, _)| !model.cmds[c].summary.writes.is_empty())
                .collect();
            // Two-writes instability (non-repeatable read only).
            if kind == AnomalyKind::NonRepeatableRead {
                for (ri, &(c1, r1)) in reads1.iter().enumerate() {
                    for &(c2, r2) in &reads1[ri..] {
                        if c1 == c2 && r1 == r2 {
                            continue;
                        }
                        for &(d1, dr1) in &writes2 {
                            if !model.may_alias_records(dr1, r1) {
                                continue;
                            }
                            let f1: BTreeSet<String> = model.cmds[d1]
                                .summary
                                .writes
                                .intersection(&model.cmds[c1].summary.reads)
                                .cloned()
                                .collect();
                            if f1.is_empty() {
                                continue;
                            }
                            for &(d2, dr2) in &writes2 {
                                if !model.may_alias_records(dr2, r2) {
                                    continue;
                                }
                                if d1 == d2 && dr1 == dr2 {
                                    continue;
                                }
                                let f2: BTreeSet<String> = model.cmds[d2]
                                    .summary
                                    .writes
                                    .intersection(&model.cmds[c2].summary.reads)
                                    .cloned()
                                    .collect();
                                if f2.is_empty() {
                                    continue;
                                }
                                let (Some(a1), Some(a2)) =
                                    (model.atom(d1, r1), model.atom(d2, r2))
                                else {
                                    continue;
                                };
                                out.push(PairCandidate {
                                    queries: vec![
                                        vec![(a2, c2, true), (a1, c1, false)],
                                        vec![(a1, c1, true), (a2, c2, false)],
                                    ],
                                    pairs: vec![crate::detect::make_pair(
                                        t1,
                                        &model.cmds[c1].summary,
                                        f1.clone(),
                                        t1,
                                        &model.cmds[c2].summary,
                                        f2,
                                        BTreeSet::from([t2.name.clone()]),
                                        AnomalyKind::NonRepeatableRead,
                                    )],
                                });
                            }
                        }
                    }
                }
            }
            // Single-write instability: the seen-late orientation is a
            // non-repeatable read, the seen-then-lost orientation a
            // non-monotonic read.
            for (ri, &(c1, r1)) in reads1.iter().enumerate() {
                for &(c2, r2) in &reads1[ri + 1..] {
                    if !model.prog_before(c1, c2) {
                        continue;
                    }
                    for &(d, dr) in &writes2 {
                        if !model.may_alias_records(dr, r1) || !model.may_alias_records(dr, r2)
                        {
                            continue;
                        }
                        let f1: BTreeSet<String> = model.cmds[d]
                            .summary
                            .writes
                            .intersection(&model.cmds[c1].summary.reads)
                            .cloned()
                            .collect();
                        if f1.is_empty() {
                            continue;
                        }
                        let f2: BTreeSet<String> = model.cmds[d]
                            .summary
                            .writes
                            .intersection(&model.cmds[c2].summary.reads)
                            .cloned()
                            .collect();
                        if f2.is_empty() {
                            continue;
                        }
                        let Some(a) = model.atom(d, dr) else { continue };
                        let query = if kind == AnomalyKind::NonRepeatableRead {
                            vec![(a, c2, true), (a, c1, false)]
                        } else {
                            vec![(a, c1, true), (a, c2, false)]
                        };
                        out.push(PairCandidate {
                            queries: vec![query],
                            pairs: vec![crate::detect::make_pair(
                                t1,
                                &model.cmds[c1].summary,
                                f1,
                                t1,
                                &model.cmds[c2].summary,
                                f2,
                                BTreeSet::from([t2.name.clone()]),
                                kind,
                            )],
                        });
                    }
                }
            }
        }
        _ => unreachable!("triple kinds are handled by find_triple_witness"),
    }
    out
}

fn find_triple_witness(
    summaries: &[TxnSummary],
    verdict: &AccessPair,
    level: ConsistencyLevel,
    marked: &BTreeSet<String>,
    strict: bool,
) -> Option<Found> {
    for w in &verdict.witnesses {
        let names = BTreeSet::from([
            verdict.txn1.as_str(),
            verdict.txn2.as_str(),
            w.as_str(),
        ]);
        if names.len() != 3 {
            continue;
        }
        // Summaries in program order, matching the engine's enumeration.
        let trio: Vec<&TxnSummary> = summaries
            .iter()
            .filter(|s| names.contains(s.name.as_str()))
            .collect();
        if trio.len() != 3 {
            continue;
        }
        // All three rotations of the trio: the write-skew enumeration pins
        // the cycle's first role to instance 0 (rotations of a cycle are
        // deduplicated), so the engine's reported `txn1` depends on which
        // transaction its canonical orientation put first — rotating here
        // guarantees every transaction gets a turn at instance 0 and the
        // anchor can match whatever orientation produced the verdict.
        for rot in 0..3 {
            let ts = [trio[rot], trio[(rot + 1) % 3], trio[(rot + 2) % 3]];
            let fps = [
                txn_fingerprint(ts[0]),
                txn_fingerprint(ts[1]),
                txn_fingerprint(ts[2]),
            ];
            let eff = effective_level(
                level,
                marked,
                &[&ts[0].name, &ts[1].name, &ts[2].name],
            );
            let mut state: Option<(TripleModel, TripleSolver)> = None;
            for (_, cand) in collect_candidates(ts, fps, usize::MAX) {
                let produced = triple_anomaly(ts, &cand);
                if !anchored(verdict, &produced, strict) {
                    continue;
                }
                let (tm, solver) = state.get_or_insert_with(|| {
                    let tm = TripleModel::new(ts[0], ts[1], ts[2]);
                    let solver = TripleSolver::new(&tm);
                    (tm, solver)
                });
                let Some(reqs) = triple_requirements(tm, &cand) else { continue };
                if let Some(truth) = solver.witness(tm, eff, &reqs) {
                    let model = state.expect("state grounded above").0.model;
                    return Some(Found {
                        model,
                        txns: ts.iter().map(|t| t.name.clone()).collect(),
                        reqs,
                        truth,
                    });
                }
            }
        }
    }
    None
}

/// Union-find over witness-record indices: requirement-involved record
/// pairs are unified so the reads and writes of the anomaly predicate land
/// on the same *concrete* record in the schedule.
struct RecordUnion {
    parent: Vec<usize>,
}

impl RecordUnion {
    fn new(n: usize) -> RecordUnion {
        RecordUnion {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut c = x;
        while self.parent[c] != r {
            let next = self.parent[c];
            self.parent[c] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Deterministic representative: the smaller index wins.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

/// Decodes one found witness into a concrete schedule.
///
/// * **Sessions**: one per transaction instance; a session's commands are
///   its ops in program order (the `cmds` vector is already grouped that
///   way).
/// * **Replicas**: one home replica per session, where its writes apply,
///   plus one dedicated serving replica per read — the freedom that lets
///   an eventually consistent read observe any prefix of the write history
///   (and two reads of one session observe *different* prefixes).
/// * **Events**: invocations in the model's arbitration order; before each
///   read's invocation, every write the truth assignment makes visible to
///   it is replicated to its serving replica (visibility implies
///   arbitration, so the write is always already invoked).
/// * **Checks**: the satisfied requirement vector verbatim — each `(atom,
///   command, polarity)` becomes "read *command* must (not) have observed
///   the atom's producer".
fn build_schedule(found: Found, kind: AnomalyKind) -> ConcreteSchedule {
    let model = &found.model;
    let n = model.cmds.len();
    let sessions = model.instances();

    // Concretize records: unify each requirement atom's record with the
    // observing command's first aliasing record, then hand every class a
    // dense id.
    let mut uf = RecordUnion::new(model.records.len());
    for &(a, c, _) in &found.reqs {
        let ar = model.atoms[a].record;
        if model.cmds[c].records.contains(&ar) {
            continue;
        }
        if let Some(&r) = model.cmds[c]
            .records
            .iter()
            .find(|&&r| model.may_alias_records(ar, r))
        {
            uf.union(ar, r);
        }
    }
    let mut ids: BTreeMap<usize, u64> = BTreeMap::new();
    for r in 0..model.records.len() {
        let root = uf.find(r);
        let next = ids.len() as u64;
        ids.entry(root).or_insert(next);
    }

    let mut ops = Vec::with_capacity(n);
    let mut read_count = 0usize;
    for cmd in &model.cmds {
        let is_write = cmd.summary.kind != CmdKind::Select;
        let replica = if is_write {
            cmd.instance as usize
        } else {
            let r = sessions + read_count;
            read_count += 1;
            r
        };
        let fields = if is_write {
            &cmd.summary.writes
        } else {
            &cmd.summary.reads
        };
        let accesses = cmd
            .records
            .iter()
            .map(|&r| RecordAccess {
                table: model.records[r].schema.clone(),
                record: ids[&uf.find(r)],
                fields: fields.clone(),
            })
            .collect();
        ops.push(ScheduledOp {
            session: cmd.instance as usize,
            txn: found.txns[cmd.instance as usize].clone(),
            label: cmd.summary.label.0.clone(),
            is_write,
            replica,
            accesses,
        });
    }
    let replicas = sessions + read_count;

    // A negative requirement pins "read c does not observe the atom's
    // producer": never replicate that producer to c's serving replica,
    // even if another of its atoms is model-visible to c.
    let mut banned: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for &(a, c, polarity) in &found.reqs {
        if !polarity {
            banned.entry(c).or_default().insert(model.atoms[a].cmd);
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&c| found.truth.arbitration_position(c));

    let mut events = Vec::new();
    for &c in &order {
        if !ops[c].is_write {
            let ban = banned.get(&c);
            let mut replicated: BTreeSet<usize> = BTreeSet::new();
            for (ai, atom) in model.atoms.iter().enumerate() {
                let w = atom.cmd;
                if !ops[w].is_write || !found.truth.vis[ai][c] {
                    continue;
                }
                if ban.is_some_and(|b| b.contains(&w)) {
                    continue;
                }
                if replicated.insert(w) {
                    events.push(ScheduleEvent::Replicate {
                        op: w,
                        to: ops[c].replica,
                    });
                }
            }
        }
        events.push(ScheduleEvent::Invoke(c));
    }

    let checks = found
        .reqs
        .iter()
        .map(|&(a, c, polarity)| VisibilityCheck {
            read: c,
            write: model.atoms[a].cmd,
            expect_seen: polarity,
        })
        .collect();

    ConcreteSchedule {
        anomaly: kind.to_string(),
        sessions,
        replicas,
        ops,
        events,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_anomalies, detect_anomalies_triples};
    use atropos_dsl::parse;

    const COUNTER: &str = "schema T { id: int key, v: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }";

    const RELAY: &str = "schema MSG { m_id: int key, m_body: string }
         schema FEED { f_id: int key, f_body: string }
         txn post(m: int, body: string) {
             @W1 update MSG set m_body = body where m_id = m;
             return 0;
         }
         txn relay(m: int, f: int) {
             @R2 x := select m_body from MSG where m_id = m;
             @W2 update FEED set f_body = x.m_body where f_id = f;
             return 0;
         }
         txn timeline(f: int, m: int) {
             @R3 y := select f_body from FEED where f_id = f;
             @R4 z := select m_body from MSG where m_id = m;
             return 0;
         }";

    #[test]
    fn lost_update_decodes_and_manifests() {
        let p = parse(COUNTER).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let verdicts = detect_anomalies(&p, ec);
        assert_eq!(verdicts.len(), 1);
        let s = decode_witness(&p, &verdicts[0], ec).expect("decodes");
        assert_eq!(s.anomaly, "lost-update");
        assert_eq!(s.sessions, 2);
        // Two RMW instances: 2 writes at home replicas, 2 reads on
        // dedicated serving replicas.
        assert_eq!(s.replicas, 4);
        let out = run_schedule(&s);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.manifested, "{out:?}");
    }

    #[test]
    fn serializability_yields_no_witness() {
        let p = parse(COUNTER).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let verdicts = detect_anomalies(&p, ec);
        assert!(decode_witness(&p, &verdicts[0], ConsistencyLevel::Serializable).is_none());
    }

    #[test]
    fn marking_every_participant_suppresses_the_witness() {
        let p = parse(COUNTER).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let verdicts = detect_anomalies(&p, ec);
        let marked = BTreeSet::from(["bump".to_owned()]);
        assert!(decode_witness_marked(&p, &verdicts[0], ec, &marked).is_none());
        // An unrelated marked set leaves the anomaly realizable.
        let other = BTreeSet::from(["other".to_owned()]);
        assert!(decode_witness_marked(&p, &verdicts[0], ec, &other).is_some());
    }

    #[test]
    fn observer_chain_decodes_and_manifests() {
        let p = parse(RELAY).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let (verdicts, _) = detect_anomalies_triples(&p, ec);
        let chain = verdicts
            .iter()
            .find(|v| v.kind == AnomalyKind::ObserverChain)
            .expect("relay chain detected");
        let s = decode_witness(&p, chain, ec).expect("decodes");
        assert_eq!(s.anomaly, "observer-chain");
        assert_eq!(s.sessions, 3);
        let out = run_schedule(&s);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.manifested, "{out:?}");
        // Causal consistency refutes the chain: no witness decodes.
        assert!(decode_witness(&p, chain, ConsistencyLevel::CausalConsistency).is_none());
    }

    #[test]
    fn decoding_is_deterministic() {
        let p = parse(RELAY).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let (verdicts, _) = detect_anomalies_triples(&p, ec);
        for v in &verdicts {
            assert_eq!(
                decode_witness(&p, v, ec),
                decode_witness(&p, v, ec),
                "{v}"
            );
        }
    }

    /// Every pair-mode verdict of a program with dirty reads and
    /// non-repeatable reads decodes into a schedule that manifests.
    #[test]
    fn mixed_pair_verdicts_all_replay() {
        let src = "schema A { id: int key, x: int, y: int }
             txn wr(k: int) {
                 @WX update A set x = 1 where id = k;
                 @WY update A set y = 2 where id = k;
                 return 0;
             }
             txn rd(k: int) {
                 @RX a := select x from A where id = k;
                 @RY b := select x, y from A where id = k;
                 return 0;
             }";
        let p = parse(src).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let verdicts = detect_anomalies(&p, ec);
        assert!(!verdicts.is_empty());
        for v in &verdicts {
            let out = replay_verdict(&p, v, ec).unwrap_or_else(|| panic!("{v} must decode"));
            assert!(out.manifested, "{v}: {out:?}");
        }
    }
}
