//! # atropos-detect
//!
//! Static serializability-anomaly detection for database programs, the
//! oracle `O(P)` of the repair algorithm (§5–§6 of the paper).
//!
//! The paper reduces anomaly detection to the satisfiability of an FOL
//! formula over transactional dependencies, visibility, and global
//! timestamps, discharged with Z3. This crate grounds the same queries over
//! a bounded two-instance execution skeleton and decides them with the
//! workspace's own CDCL solver (`atropos-sat`):
//!
//! * [`model`] — static command summaries (read/write sets, key specs);
//! * [`encode`] — witness records, atoms, and the CNF encoding of `ord`,
//!   `vis`, and the per-level axioms (EC / CC / RR / SC), shared by the
//!   fresh reference path ([`pattern_satisfiable`]) and the incremental
//!   [`PairSolver`] (one solver per transaction pair, level axioms as
//!   activation-literal-guarded groups, queries via assumptions);
//! * [`detect`] — the four violation templates, the public oracle
//!   [`detect_anomalies`] (plus multi-level, instrumented, fresh, and
//!   differential variants), and [`DetectStats`];
//! * [`cache`] — transaction-pair fingerprinting and the [`VerdictCache`]
//!   behind [`detect_anomalies_cached`], the near-incremental oracle the
//!   repair loop re-invokes after every refactoring step;
//! * [`engine`] — the [`DetectionEngine`]: the same cached oracle with the
//!   dirty pairs solved on a scoped-thread worker pool
//!   (`ATROPOS_THREADS`-controlled) and merged deterministically;
//! * [`session`] — the [`DetectSession`]: a verdict cache with a session
//!   lifetime, shared across repair runs so common transaction shapes hit
//!   warm verdicts (cross-run counters in [`CacheStats`]);
//! * [`corpus`] — fleet scale: the sharded `verdict_cache.v2` store
//!   (per-shard advisory locks, checksummed record logs, union merge,
//!   compaction/eviction) and the [`CorpusService`] that fingerprint-dedups
//!   a whole directory of programs before solving;
//! * [`replay`] — witness replay: the satisfying assignment behind a dirty
//!   verdict is decoded ([`decode_witness`]) into a concrete
//!   [`atropos_sim::ConcreteSchedule`] and executed deterministically on
//!   the simulated cluster, proving the anomaly observable (and, after
//!   repair, suppressed).
//!
//! # Examples
//!
//! ```
//! use atropos_detect::{detect_anomalies, ConsistencyLevel};
//!
//! let program = atropos_dsl::parse(
//!     "schema ACC { id: int key, bal: int }
//!      txn deposit(a: int, amt: int) {
//!          x := select bal from ACC where id = a;
//!          update ACC set bal = x.bal + amt where id = a;
//!          return 0;
//!      }",
//! ).unwrap();
//! let anomalies = detect_anomalies(&program, ConsistencyLevel::EventualConsistency);
//! assert_eq!(anomalies.len(), 1); // concurrent deposits can lose updates
//! ```

#![warn(missing_docs)]

pub mod cache;
pub(crate) mod certify;
pub mod corpus;
pub mod detect;
pub mod encode;
pub mod engine;
pub mod model;
pub mod replay;
pub mod session;
pub mod triple;

pub use cache::{
    cmd_fingerprint, txn_fingerprint, CacheStats, LearntPool, VerdictAudit, VerdictCache,
};
pub use corpus::{
    analyse_corpus, CompactionReport, CorpusReport, CorpusService, CorpusStats, CorpusStore,
    CorpusVerdict, EvictionPolicy,
};
pub use engine::{DetectMode, DetectionEngine, WorkerStats};
pub use session::DetectSession;
pub use detect::{
    detect_anomalies, detect_anomalies_at_levels, detect_anomalies_cached,
    detect_anomalies_fresh, detect_anomalies_marked, detect_anomalies_triples,
    detect_anomalies_with_stats, detect_differential, AccessPair, AnomalyKind, DetectStats,
    DifferentialReport,
};
pub use encode::{pattern_satisfiable, ConsistencyLevel, InstanceModel, PairSolver, WitnessTruth};
pub use replay::{decode_witness, decode_witness_marked, replay_verdict};
pub use model::{summarize_program, summarize_txn, CmdKind, CmdSummary, KeySpec, TxnSummary};
pub use triple::{TripleModel, TripleSolver};
