//! The anomaly oracle `O(P)`: enumerating candidate access pairs and
//! discharging them with the SAT backend.
//!
//! Four violation templates cover the anomalies of §2 (the general FOL
//! condition of §3.2 restricted to the events of a command pair):
//!
//! * **Lost update** — both instances read-modify-write the same record
//!   field and neither sees the other's write;
//! * **Dirty read** — an observer sees one write of a transaction but not a
//!   sibling write (violating strong atomicity);
//! * **Non-repeatable read** — a later read of a transaction observes a
//!   foreign write that an earlier read did not (violating strong
//!   isolation);
//! * **Non-monotonic read** — an earlier read observes a foreign write
//!   that a later read of the same transaction no longer sees (a causal
//!   session violation: the observed state moved backwards).
//!
//! Queries are discharged incrementally: one [`PairSolver`] per
//! transaction pair carries the ordering/visibility encoding across every
//! pattern and consistency level, and each query travels as an assumption
//! set. The fresh-solver reference path ([`detect_anomalies_fresh`]) and
//! the CLOTHO-style differential runner ([`detect_differential`]) guard
//! the equivalence of the two paths.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

use atropos_dsl::{CmdLabel, Program};

use crate::cache::VerdictCache;
use crate::encode::{
    fresh_query, ConsistencyLevel, InstanceModel, PairSolver, VisRequirement,
};
use crate::model::{summarize_program, CmdKind, TxnSummary};

/// The anomaly template a pair was confirmed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnomalyKind {
    /// Conflicting read-modify-writes overwrite each other.
    LostUpdate,
    /// A transaction's sibling writes are observed non-atomically.
    DirtyRead,
    /// A transaction's reads observe foreign commits inconsistently.
    NonRepeatableRead,
    /// A transaction's later read loses sight of a foreign commit an
    /// earlier read observed.
    NonMonotonicRead,
    /// A causality violation relayed through an observer chain: a third
    /// transaction observes a relay's derived write while missing the
    /// origin write the relay itself observed (triple mode only).
    ObserverChain,
    /// A circular write skew over three keys: each transaction's
    /// read-modify-write misses the previous transaction's write, closing
    /// a dependency cycle no pairwise schedule exhibits (triple mode only).
    WriteSkewCycle,
    /// A transaction's sibling writes observed fractured across a relay:
    /// one half reaches the observer through a chain, the other half never
    /// arrives (triple mode only).
    FracturedRead,
}

impl AnomalyKind {
    /// Stable serialization tag (the `verdict_cache.v1` on-disk format).
    pub(crate) fn tag(self) -> u8 {
        match self {
            AnomalyKind::LostUpdate => 0,
            AnomalyKind::DirtyRead => 1,
            AnomalyKind::NonRepeatableRead => 2,
            AnomalyKind::NonMonotonicRead => 3,
            AnomalyKind::ObserverChain => 4,
            AnomalyKind::WriteSkewCycle => 5,
            AnomalyKind::FracturedRead => 6,
        }
    }

    /// Inverse of [`AnomalyKind::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<AnomalyKind> {
        Some(match tag {
            0 => AnomalyKind::LostUpdate,
            1 => AnomalyKind::DirtyRead,
            2 => AnomalyKind::NonRepeatableRead,
            3 => AnomalyKind::NonMonotonicRead,
            4 => AnomalyKind::ObserverChain,
            5 => AnomalyKind::WriteSkewCycle,
            6 => AnomalyKind::FracturedRead,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AnomalyKind::LostUpdate => "lost-update",
            AnomalyKind::DirtyRead => "dirty-read",
            AnomalyKind::NonRepeatableRead => "non-repeatable-read",
            AnomalyKind::NonMonotonicRead => "non-monotonic-read",
            AnomalyKind::ObserverChain => "observer-chain",
            AnomalyKind::WriteSkewCycle => "write-skew-cycle",
            AnomalyKind::FracturedRead => "fractured-read-chain",
        };
        f.write_str(s)
    }
}

/// Instrumentation of one detection run: how much SAT work the oracle did
/// and how much encoding the incremental path avoided re-emitting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectStats {
    /// Ordered transaction pairs analysed.
    pub pairs: u64,
    /// Unordered transaction triples analysed (zero outside
    /// [`crate::DetectMode::Triples`] passes).
    pub triples: u64,
    /// Satisfiability queries issued (post-memoization).
    pub queries: u64,
    /// Queries answered SAT (a realizable anomaly witness).
    pub sat_queries: u64,
    /// Queries answered from the per-pair memo without touching a solver.
    pub memo_hits: u64,
    /// Clauses actually encoded into solvers.
    pub clauses_encoded: u64,
    /// Clauses a fresh-solver-per-query strategy would have encoded.
    pub clauses_fresh_equivalent: u64,
    /// Solver conflicts across all queries.
    pub conflicts: u64,
    /// Solver propagations across all queries.
    pub propagations: u64,
    /// Solver decisions across all queries.
    pub decisions: u64,
    /// Learnt clauses seeded into freshly built solvers from the engine's
    /// [`crate::LearntPool`] — lemmas published by an earlier
    /// fingerprint-identical solve and offered to this pass's solvers at
    /// construction (clauses the sibling already holds as root facts are
    /// absorbed for free during import).
    pub learnt_seeded: u64,
    /// Wall-clock seconds spent in detection.
    pub seconds: f64,
}

impl DetectStats {
    /// Fraction of the fresh-equivalent clause volume the run did *not*
    /// have to encode thanks to per-pair solver reuse (0 when nothing was
    /// saved, approaching 1 as reuse grows).
    pub fn reused_clause_ratio(&self) -> f64 {
        if self.clauses_fresh_equivalent == 0 {
            return 0.0;
        }
        let saved = self
            .clauses_fresh_equivalent
            .saturating_sub(self.clauses_encoded);
        saved as f64 / self.clauses_fresh_equivalent as f64
    }
}

/// An anomalous access pair χ = (c1, f̄1, c2, f̄2) (§3.2), labelled with the
/// transactions containing the commands and the violation template.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessPair {
    /// First command label.
    pub cmd1: CmdLabel,
    /// Fields of `cmd1` involved in the conflict.
    pub fields1: BTreeSet<String>,
    /// Second command label.
    pub cmd2: CmdLabel,
    /// Fields of `cmd2` involved in the conflict.
    pub fields2: BTreeSet<String>,
    /// Transaction containing `cmd1`.
    pub txn1: String,
    /// Transaction containing `cmd2`.
    pub txn2: String,
    /// The interfering transactions that witness (or produce) the
    /// conflicting events beyond `txn1`/`txn2` — e.g. the readers observing
    /// a dirty write pair. Running the pair under serializability only
    /// helps if these transactions coordinate too.
    pub witnesses: BTreeSet<String>,
    /// Violation template.
    pub kind: AnomalyKind,
}

impl std::fmt::Display for AccessPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {:?}, {}, {:?}) [{}]",
            self.cmd1, self.fields1, self.cmd2, self.fields2, self.kind
        )
    }
}

/// Detects every anomalous access pair of `program` under `level`.
///
/// # Examples
///
/// ```
/// use atropos_detect::{detect_anomalies, ConsistencyLevel};
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let ec = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
/// assert_eq!(ec.len(), 1); // the lost update
/// let sc = detect_anomalies(&p, ConsistencyLevel::Serializable);
/// assert!(sc.is_empty());
/// ```
pub fn detect_anomalies(program: &Program, level: ConsistencyLevel) -> Vec<AccessPair> {
    detect_anomalies_marked(program, level, &BTreeSet::new())
}

/// Like [`detect_anomalies`], but transactions named in `serializable_txns`
/// are analysed under [`ConsistencyLevel::Serializable`] when paired with
/// each other (the AT-SC configuration of §7.2).
pub fn detect_anomalies_marked(
    program: &Program,
    level: ConsistencyLevel,
    serializable_txns: &BTreeSet<String>,
) -> Vec<AccessPair> {
    let (mut by_level, _) = detect_core(
        program,
        &[level],
        serializable_txns,
        SolvePath::Incremental,
        None,
    );
    by_level.remove(&level).unwrap_or_default()
}

/// [`detect_anomalies`] plus the run's [`DetectStats`].
pub fn detect_anomalies_with_stats(
    program: &Program,
    level: ConsistencyLevel,
) -> (Vec<AccessPair>, DetectStats) {
    let (mut by_level, stats) = detect_core(
        program,
        &[level],
        &BTreeSet::new(),
        SolvePath::Incremental,
        None,
    );
    (by_level.remove(&level).unwrap_or_default(), stats)
}

/// Detects anomalies under several consistency levels in one pass, sharing
/// each transaction pair's incremental solver across all of them — the
/// cheap way to produce Table 1's EC/CC/RR columns.
pub fn detect_anomalies_at_levels(
    program: &Program,
    levels: &[ConsistencyLevel],
) -> (BTreeMap<ConsistencyLevel, Vec<AccessPair>>, DetectStats) {
    detect_core(program, levels, &BTreeSet::new(), SolvePath::Incremental, None)
}

/// The reference implementation: identical templates, but every query goes
/// to a freshly constructed solver ([`crate::pattern_satisfiable`]). Slow;
/// kept for differential testing and speedup accounting.
pub fn detect_anomalies_fresh(
    program: &Program,
    level: ConsistencyLevel,
) -> (Vec<AccessPair>, DetectStats) {
    let (mut by_level, stats) = detect_core(
        program,
        &[level],
        &BTreeSet::new(),
        SolvePath::Fresh,
        None,
    );
    (by_level.remove(&level).unwrap_or_default(), stats)
}

/// Outcome of a [`detect_differential`] run.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Anomalies per level (from the agreed verdicts).
    pub by_level: BTreeMap<ConsistencyLevel, Vec<AccessPair>>,
    /// Detection statistics of the paired run.
    pub stats: DetectStats,
    /// Human-readable descriptions of every query where the incremental
    /// and fresh paths disagreed. Empty means the paths are equivalent on
    /// this program.
    pub mismatches: Vec<String>,
}

/// CLOTHO-style differential detection: every query is answered by *both*
/// the incremental [`PairSolver`] and a fresh solver, and any disagreement
/// is recorded. The returned anomalies use the incremental verdicts.
pub fn detect_differential(
    program: &Program,
    levels: &[ConsistencyLevel],
) -> DifferentialReport {
    let mut mismatches = Vec::new();
    let (by_level, stats) = detect_core(
        program,
        levels,
        &BTreeSet::new(),
        SolvePath::Differential,
        Some(&mut mismatches),
    );
    DifferentialReport {
        by_level,
        stats,
        mismatches,
    }
}

/// One incremental pattern query against a (lazily created) [`PairSolver`]:
/// the solver-creation and fresh-equivalent clause accounting shared by the
/// one-shot oracle ([`detect_core`]) and the cached oracle
/// ([`detect_anomalies_cached`]), so the two cannot drift apart.
fn pair_query(
    solver: &mut Option<PairSolver>,
    model: &InstanceModel,
    level: ConsistencyLevel,
    reqs: &[VisRequirement],
    stats: &mut DetectStats,
    seed: Option<&[Vec<atropos_sat::Lit>]>,
    proofs: bool,
) -> bool {
    let ps = solver.get_or_insert_with(|| {
        let mut ps = PairSolver::with_proofs(model, proofs);
        if let Some(seed) = seed {
            ps.seed_learnts(seed);
            stats.learnt_seeded += seed.len() as u64;
        }
        ps
    });
    let r = ps.satisfiable(model, level, reqs);
    stats.clauses_fresh_equivalent += ps.fresh_equivalent_clauses(level) as u64;
    r
}

/// How queries are discharged.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SolvePath {
    /// One incremental solver per pair, queries via assumptions.
    Incremental,
    /// A fresh solver per query (the paper's Z3-per-query shape).
    Fresh,
    /// Both, with verdict comparison.
    Differential,
}

fn detect_core(
    program: &Program,
    levels: &[ConsistencyLevel],
    serializable_txns: &BTreeSet<String>,
    path: SolvePath,
    mut mismatches: Option<&mut Vec<String>>,
) -> (BTreeMap<ConsistencyLevel, Vec<AccessPair>>, DetectStats) {
    let started = Instant::now();
    let summaries = summarize_program(program);
    let mut found: BTreeMap<ConsistencyLevel, BTreeMap<(String, String, AnomalyKind), AccessPair>> =
        levels.iter().map(|&l| (l, BTreeMap::new())).collect();
    let mut stats = DetectStats::default();

    for (i, t1) in summaries.iter().enumerate() {
        for (j, t2) in summaries.iter().enumerate() {
            let model = InstanceModel::new(t1, t2);
            stats.pairs += 1;
            // The incremental solver is shared across every level queried
            // for this pair; built lazily so the fresh path never pays.
            let mut pair_solver: Option<PairSolver> = None;
            for &level in levels {
                // A pair is only analysed as serializable when *both*
                // instances of the bounded execution coordinate.
                let eff = if serializable_txns.contains(&t1.name)
                    && serializable_txns.contains(&t2.name)
                {
                    ConsistencyLevel::Serializable
                } else {
                    level
                };
                // Memoize SAT calls on their requirement signature.
                let mut memo: HashMap<Vec<VisRequirement>, bool> = HashMap::new();
                let mut sat = |reqs: Vec<VisRequirement>| -> bool {
                    if let Some(&r) = memo.get(&reqs) {
                        stats.memo_hits += 1;
                        return r;
                    }
                    stats.queries += 1;
                    let incremental = (path != SolvePath::Fresh)
                        .then(|| {
                            pair_query(&mut pair_solver, &model, eff, &reqs, &mut stats, None, false)
                        });
                    let fresh = if path != SolvePath::Incremental {
                        let (r, s, clauses) = fresh_query(&model, eff, &reqs);
                        if path == SolvePath::Fresh {
                            stats.conflicts += s.conflicts;
                            stats.propagations += s.propagations;
                            stats.decisions += s.decisions;
                            stats.clauses_encoded += clauses as u64;
                            stats.clauses_fresh_equivalent += clauses as u64;
                        }
                        Some(r)
                    } else {
                        None
                    };
                    if let (Some(a), Some(b)) = (incremental, fresh) {
                        if a != b {
                            if let Some(log) = mismatches.as_deref_mut() {
                                log.push(format!(
                                    "{} × {} @ {eff}: reqs {reqs:?}: incremental={a} fresh={b}",
                                    t1.name, t2.name
                                ));
                            }
                        }
                    }
                    let r = incremental.or(fresh).expect("some path ran");
                    if r {
                        stats.sat_queries += 1;
                    }
                    memo.insert(reqs, r);
                    r
                };
                let pairs = analyse_pair(t1, t2, &model, i <= j, &mut sat);
                accumulate(found.get_mut(&level).expect("level registered"), pairs);
            }
            if let Some(ps) = &pair_solver {
                let s = ps.solver_stats();
                stats.conflicts += s.conflicts;
                stats.propagations += s.propagations;
                stats.decisions += s.decisions;
                stats.clauses_encoded += ps.encoded_clauses() as u64;
            }
        }
    }
    stats.seconds = started.elapsed().as_secs_f64();
    let by_level = found
        .into_iter()
        .map(|(l, m)| (l, m.into_values().collect()))
        .collect();
    (by_level, stats)
}

/// Folds one ordered pair's raw `analyse_pair` output into the per-level
/// result map, merging field sets and witnesses of duplicate keys exactly
/// like repeated template hits within one pass would. Merge order is part
/// of the oracle's observable behaviour (the first entry of a key provides
/// its base orientation), so the parallel engine replays this fold in the
/// serial pair order regardless of which worker finished first.
pub(crate) fn accumulate(
    per_level: &mut BTreeMap<(String, String, AnomalyKind), AccessPair>,
    pairs: Vec<AccessPair>,
) {
    for p in pairs {
        per_level
            .entry(pair_key(&p))
            .and_modify(|e| {
                e.fields1.extend(p.fields1.iter().cloned());
                e.fields2.extend(p.fields2.iter().cloned());
                e.witnesses.extend(p.witnesses.iter().cloned());
            })
            .or_insert(p);
    }
}

/// Detects every anomalous access pair of `program` under `level`,
/// answering untouched transaction pairs from `cache` (and refreshing it
/// with everything analysed) — the oracle the near-incremental repair
/// driver calls after each refactoring step. This is the serial form; the
/// [`crate::DetectionEngine`] runs the same pass (one shared
/// implementation) with the dirty pairs fanned out over a worker pool.
///
/// Equivalent to [`detect_anomalies`] on every input (the
/// `repair_incremental_vs_scratch` differential suite pins this on all nine
/// workloads); the only difference is how much work is re-done. A pair is
/// answered from the cache when both transactions' [`txn_fingerprint`]s
/// match a previous analysis at this level; otherwise the pair is analysed
/// with its retained [`PairSolver`] if its fingerprints survived (e.g. the
/// verdict entry was evicted or another level is being queried), or from
/// scratch if not.
pub fn detect_anomalies_cached(
    program: &Program,
    level: ConsistencyLevel,
    cache: &mut VerdictCache,
) -> (Vec<AccessPair>, DetectStats) {
    crate::engine::detect_with_cache(
        1,
        program,
        level,
        crate::DetectMode::Pairs,
        cache,
        None,
        None,
        crate::engine::proofs_enabled_from_env(),
    )
}

/// Detects every anomaly of `program` under `level` in the bounded
/// **three-instance** mode ([`crate::DetectMode::Triples`]): the pair
/// oracle's verdicts plus the chain templates of [`crate::triple`]. The
/// result is a superset of [`detect_anomalies`] by construction.
///
/// # Examples
///
/// ```
/// use atropos_detect::{detect_anomalies, detect_anomalies_triples, ConsistencyLevel};
///
/// // A 3-hop relay: post → relay → timeline. Pairwise clean, yet the
/// // observer chain is realizable under eventual consistency.
/// let p = atropos_dsl::parse(
///     "schema MSG { m_id: int key, m_body: string }
///      schema FEED { f_id: int key, f_body: string }
///      txn post(m: int, body: string) {
///          update MSG set m_body = body where m_id = m;
///          return 0;
///      }
///      txn relay(m: int, f: int) {
///          x := select m_body from MSG where m_id = m;
///          update FEED set f_body = x.m_body where f_id = f;
///          return 0;
///      }
///      txn timeline(f: int, m: int) {
///          y := select f_body from FEED where f_id = f;
///          z := select m_body from MSG where m_id = m;
///          return 0;
///      }",
/// ).unwrap();
/// let ec = ConsistencyLevel::EventualConsistency;
/// assert!(detect_anomalies(&p, ec).is_empty());
/// let (triples, _) = detect_anomalies_triples(&p, ec);
/// assert_eq!(triples.len(), 1); // the relayed causality violation
/// ```
pub fn detect_anomalies_triples(
    program: &Program,
    level: ConsistencyLevel,
) -> (Vec<AccessPair>, DetectStats) {
    let mut cache = VerdictCache::new();
    crate::engine::detect_with_cache(
        1,
        program,
        level,
        crate::DetectMode::Triples,
        &mut cache,
        None,
        None,
        crate::engine::proofs_enabled_from_env(),
    )
}

/// Analyses one dirty (cache-missed) ordered pair against its retained (or
/// freshly grounded) [`crate::cache::PairState`], returning the raw
/// verdicts and this pair's [`DetectStats`] delta. The single solving path
/// shared by the serial cached oracle and every worker of the parallel
/// [`crate::DetectionEngine`] — so the two cannot drift apart.
pub(crate) fn solve_pair_with_state(
    t1: &TxnSummary,
    t2: &TxnSummary,
    symmetric: bool,
    level: ConsistencyLevel,
    state: &mut crate::cache::PairState,
    seed: Option<&[Vec<atropos_sat::Lit>]>,
    proofs: bool,
) -> (Vec<AccessPair>, DetectStats, Vec<Vec<u8>>) {
    let mut stats = DetectStats::default();
    let clauses_before = state
        .solver
        .as_ref()
        .map(|s| (s.encoded_clauses(), s.solver_stats()));
    let pairs = {
        let (model, solver) = (&state.model, &mut state.solver);
        let mut memo: HashMap<Vec<VisRequirement>, bool> = HashMap::new();
        let mut sat = |reqs: Vec<VisRequirement>| -> bool {
            if let Some(&r) = memo.get(&reqs) {
                stats.memo_hits += 1;
                return r;
            }
            stats.queries += 1;
            let r = pair_query(solver, model, level, &reqs, &mut stats, seed, proofs);
            if r {
                stats.sat_queries += 1;
            }
            memo.insert(reqs, r);
            r
        };
        analyse_pair(t1, t2, model, symmetric, &mut sat)
    };
    let mut certs = Vec::new();
    if let Some(ps) = &mut state.solver {
        // A retained solver's counters are cumulative across calls;
        // charge this pass only with the delta it caused.
        let (c0, s0) = clauses_before.unwrap_or_default();
        let s = ps.solver_stats();
        stats.conflicts += s.conflicts - s0.conflicts;
        stats.propagations += s.propagations - s0.propagations;
        stats.decisions += s.decisions - s0.decisions;
        stats.clauses_encoded += (ps.encoded_clauses() - c0) as u64;
        certs = ps.take_certificates();
    }
    (pairs, stats, certs)
}

/// Canonical dedup key of one verdict: labels in sorted order plus the
/// template. The replay pipeline ([`crate::replay`]) anchors its targeted
/// witness searches on this key, so it must stay in lock-step with
/// [`accumulate`]'s merging.
pub(crate) fn pair_key(p: &AccessPair) -> (String, String, AnomalyKind) {
    let (a, b) = if p.cmd1.0 <= p.cmd2.0 {
        (p.cmd1.0.clone(), p.cmd2.0.clone())
    } else {
        (p.cmd2.0.clone(), p.cmd1.0.clone())
    };
    (a, b, p.kind)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn make_pair(
    t1: &TxnSummary,
    c1: &crate::model::CmdSummary,
    f1: BTreeSet<String>,
    t2: &TxnSummary,
    c2: &crate::model::CmdSummary,
    f2: BTreeSet<String>,
    witnesses: BTreeSet<String>,
    kind: AnomalyKind,
) -> AccessPair {
    // Canonical orientation by label for stable dedup.
    if c1.label.0 <= c2.label.0 {
        AccessPair {
            cmd1: c1.label.clone(),
            fields1: f1,
            cmd2: c2.label.clone(),
            fields2: f2,
            txn1: t1.name.clone(),
            txn2: t2.name.clone(),
            witnesses,
            kind,
        }
    } else {
        AccessPair {
            cmd1: c2.label.clone(),
            fields1: f2,
            cmd2: c1.label.clone(),
            fields2: f1,
            txn1: t2.name.clone(),
            txn2: t1.name.clone(),
            witnesses,
            kind,
        }
    }
}

/// Analyses one ordered transaction pair against the query oracle `sat`
/// (which fixes the consistency level and the solving path).
/// `run_symmetric` gates the symmetric lost-update template so it runs
/// once per unordered pair.
fn analyse_pair(
    t1: &TxnSummary,
    t2: &TxnSummary,
    model: &InstanceModel,
    run_symmetric: bool,
    sat: &mut dyn FnMut(Vec<VisRequirement>) -> bool,
) -> Vec<AccessPair> {
    let n1 = model.n1;
    let mut out = Vec::new();

    // ---- Lost update: RMW in both instances on a shared record field. ----
    if run_symmetric {
        for &(r1, w1, ref f) in &t1.rmw_pairs() {
            for &(r2, w2, ref f2) in &t2.rmw_pairs() {
                if f != f2 || t1.commands[w1].schema != t2.commands[w2].schema {
                    continue;
                }
                // Commands in model coordinates.
                let (c1, cw1, c2, cw2) = (r1, w1, n1 + r2, n1 + w2);
                // A record of instance 1's RMW that may alias a record of
                // instance 2's RMW.
                let rec1 = model.cmds[c1]
                    .records
                    .iter()
                    .copied()
                    .find(|r| model.cmds[cw1].records.contains(r));
                let rec2 = model.cmds[c2]
                    .records
                    .iter()
                    .copied()
                    .find(|r| model.cmds[cw2].records.contains(r));
                let (Some(rec1), Some(rec2)) = (rec1, rec2) else { continue };
                if !model.may_alias_records(rec1, rec2) {
                    continue;
                }
                let (Some(a_w1), Some(a_w2)) = (model.atom(cw1, rec1), model.atom(cw2, rec2))
                else {
                    continue;
                };
                let reqs = vec![(a_w2, c1, false), (a_w1, c2, false)];
                if sat(reqs) {
                    let fs = BTreeSet::from([f.clone()]);
                    out.push(make_pair(
                        t1,
                        &t1.commands[r1],
                        fs.clone(),
                        t2,
                        &t2.commands[w2],
                        fs.clone(),
                        BTreeSet::new(),
                        AnomalyKind::LostUpdate,
                    ));
                    out.push(make_pair(
                        t2,
                        &t2.commands[r2],
                        fs.clone(),
                        t1,
                        &t1.commands[w1],
                        fs,
                        BTreeSet::new(),
                        AnomalyKind::LostUpdate,
                    ));
                }
            }
        }
    }

    // ---- Dirty read: two writes of instance 1 observed half-way by reads
    // of instance 2. ----
    let writes1: Vec<(usize, usize)> = (0..n1)
        .flat_map(|c| {
            model.cmds[c]
                .records
                .iter()
                .map(move |&r| (c, r))
                .collect::<Vec<_>>()
        })
        .filter(|&(c, _)| !model.cmds[c].summary.writes.is_empty())
        .collect();
    let reads2: Vec<(usize, usize)> = (n1..model.cmds.len())
        .flat_map(|c| {
            model.cmds[c]
                .records
                .iter()
                .map(move |&r| (c, r))
                .collect::<Vec<_>>()
        })
        .filter(|&(c, _)| model.cmds[c].summary.kind == CmdKind::Select)
        .collect();

    for (wi, &(w1, r1)) in writes1.iter().enumerate() {
        for &(w2, r2) in &writes1[wi + 1..] {
            for &(d1, dr1) in &reads2 {
                if !model.may_alias_records(dr1, r1) {
                    continue;
                }
                let f1: BTreeSet<String> = model.cmds[w1]
                    .summary
                    .writes
                    .intersection(&model.cmds[d1].summary.reads)
                    .cloned()
                    .collect();
                if f1.is_empty() {
                    continue;
                }
                for &(d2, dr2) in &reads2 {
                    if !model.may_alias_records(dr2, r2) {
                        continue;
                    }
                    let f2: BTreeSet<String> = model.cmds[w2]
                        .summary
                        .writes
                        .intersection(&model.cmds[d2].summary.reads)
                        .cloned()
                        .collect();
                    if f2.is_empty() {
                        continue;
                    }
                    let (Some(a1), Some(a2)) = (model.atom(w1, r1), model.atom(w2, r2)) else {
                        continue;
                    };
                    // Either half observed without the other.
                    let q1 = vec![(a1, d1, true), (a2, d2, false)];
                    let q2 = vec![(a2, d2, true), (a1, d1, false)];
                    if sat(q1) || sat(q2) {
                        out.push(make_pair(
                            t1,
                            &model.cmds[w1].summary,
                            f1.clone(),
                            t1,
                            &model.cmds[w2].summary,
                            f2,
                            BTreeSet::from([t2.name.clone()]),
                            AnomalyKind::DirtyRead,
                        ));
                        break;
                    }
                }
            }
        }
    }

    // ---- Non-repeatable read: two reads of instance 1 observing writes of
    // instance 2 inconsistently. ----
    let reads1: Vec<(usize, usize)> = (0..n1)
        .flat_map(|c| {
            model.cmds[c]
                .records
                .iter()
                .map(move |&r| (c, r))
                .collect::<Vec<_>>()
        })
        .filter(|&(c, _)| model.cmds[c].summary.kind == CmdKind::Select)
        .collect();
    let writes2: Vec<(usize, usize)> = (n1..model.cmds.len())
        .flat_map(|c| {
            model.cmds[c]
                .records
                .iter()
                .map(move |&r| (c, r))
                .collect::<Vec<_>>()
        })
        .filter(|&(c, _)| !model.cmds[c].summary.writes.is_empty())
        .collect();

    for (ri, &(c1, r1)) in reads1.iter().enumerate() {
        for &(c2, r2) in &reads1[ri..] {
            if c1 == c2 && r1 == r2 {
                continue;
            }
            for &(d1, dr1) in &writes2 {
                if !model.may_alias_records(dr1, r1) {
                    continue;
                }
                let f1: BTreeSet<String> = model.cmds[d1]
                    .summary
                    .writes
                    .intersection(&model.cmds[c1].summary.reads)
                    .cloned()
                    .collect();
                if f1.is_empty() {
                    continue;
                }
                for &(d2, dr2) in &writes2 {
                    if !model.may_alias_records(dr2, r2) {
                        continue;
                    }
                    if d1 == d2 && dr1 == dr2 {
                        continue;
                    }
                    let f2: BTreeSet<String> = model.cmds[d2]
                        .summary
                        .writes
                        .intersection(&model.cmds[c2].summary.reads)
                        .cloned()
                        .collect();
                    if f2.is_empty() {
                        continue;
                    }
                    let (Some(a1), Some(a2)) = (model.atom(d1, r1), model.atom(d2, r2)) else {
                        continue;
                    };
                    let q1 = vec![(a2, c2, true), (a1, c1, false)];
                    let q2 = vec![(a1, c1, true), (a2, c2, false)];
                    if sat(q1) || sat(q2) {
                        out.push(make_pair(
                            t1,
                            &model.cmds[c1].summary,
                            f1,
                            t1,
                            &model.cmds[c2].summary,
                            f2,
                            BTreeSet::from([t2.name.clone()]),
                            AnomalyKind::NonRepeatableRead,
                        ));
                        break;
                    }
                }
                if out.last().is_some_and(|p| {
                    p.kind == AnomalyKind::NonRepeatableRead
                        && (p.cmd1 == model.cmds[c1].summary.label
                            || p.cmd2 == model.cmds[c1].summary.label)
                        && (p.cmd1 == model.cmds[c2].summary.label
                            || p.cmd2 == model.cmds[c2].summary.label)
                }) {
                    break;
                }
            }
        }
    }

    // ---- Read instability on a single foreign write: two program-ordered
    // reads of instance 1 observing one write atom of instance 2
    // differently. Seen-late-only is a non-repeatable read; seen-then-lost
    // is a non-monotonic read — the causal session violation that
    // distinguishes CC (and RR) from EC. ----
    for (ri, &(c1, r1)) in reads1.iter().enumerate() {
        for &(c2, r2) in &reads1[ri + 1..] {
            if !model.prog_before(c1, c2) {
                continue;
            }
            let mut found_nrr = false;
            let mut found_nmr = false;
            for &(d, dr) in &writes2 {
                if !model.may_alias_records(dr, r1) || !model.may_alias_records(dr, r2) {
                    continue;
                }
                let f1: BTreeSet<String> = model.cmds[d]
                    .summary
                    .writes
                    .intersection(&model.cmds[c1].summary.reads)
                    .cloned()
                    .collect();
                if f1.is_empty() {
                    continue;
                }
                let f2: BTreeSet<String> = model.cmds[d]
                    .summary
                    .writes
                    .intersection(&model.cmds[c2].summary.reads)
                    .cloned()
                    .collect();
                if f2.is_empty() {
                    continue;
                }
                let Some(a) = model.atom(d, dr) else { continue };
                if !found_nrr && sat(vec![(a, c2, true), (a, c1, false)]) {
                    out.push(make_pair(
                        t1,
                        &model.cmds[c1].summary,
                        f1.clone(),
                        t1,
                        &model.cmds[c2].summary,
                        f2.clone(),
                        BTreeSet::from([t2.name.clone()]),
                        AnomalyKind::NonRepeatableRead,
                    ));
                    found_nrr = true;
                }
                if !found_nmr && sat(vec![(a, c1, true), (a, c2, false)]) {
                    out.push(make_pair(
                        t1,
                        &model.cmds[c1].summary,
                        f1,
                        t1,
                        &model.cmds[c2].summary,
                        f2,
                        BTreeSet::from([t2.name.clone()]),
                        AnomalyKind::NonMonotonicRead,
                    ));
                    found_nmr = true;
                }
                if found_nrr && found_nmr {
                    break;
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    /// The course-management program of Fig. 1.
    pub(crate) const COURSEWARE: &str = r#"
        schema STUDENT { st_id: int key, st_name: string, st_em_id: int, st_co_id: int, st_reg: bool }
        schema COURSE  { co_id: int key, co_avail: bool, co_st_cnt: int }
        schema EMAIL   { em_id: int key, em_addr: string }

        txn getSt(id: int) {
            @S1 x := select * from STUDENT where st_id = id;
            @S2 y := select em_addr from EMAIL where em_id = x.st_em_id;
            @S3 z := select co_avail from COURSE where co_id = x.st_co_id;
            return 0;
        }
        txn setSt(id: int, name: string, email: string) {
            @S4 x := select st_em_id from STUDENT where st_id = id;
            @U1 update STUDENT set st_name = name where st_id = id;
            @U2 update EMAIL set em_addr = email where em_id = x.st_em_id;
            return 0;
        }
        txn regSt(id: int, course: int) {
            @U3 update STUDENT set st_co_id = course, st_reg = true where st_id = id;
            @S5 x := select co_st_cnt from COURSE where co_id = course;
            @U4 update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
            return 0;
        }
    "#;

    fn labels(pairs: &[AccessPair]) -> BTreeSet<(String, String)> {
        pairs
            .iter()
            .map(|p| (p.cmd1.0.clone(), p.cmd2.0.clone()))
            .collect()
    }

    #[test]
    fn courseware_anomalies_match_paper_examples() {
        let p = parse(COURSEWARE).unwrap();
        let pairs = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        let ls = labels(&pairs);
        // χ1: (U3, U4) dirty read; χ2: (S5, U4) lost update;
        // the non-repeatable read pairs (S1, S2) and (U1, U2).
        assert!(ls.contains(&("U3".into(), "U4".into())), "{ls:?}");
        assert!(ls.contains(&("S5".into(), "U4".into())), "{ls:?}");
        assert!(ls.contains(&("S1".into(), "S2".into())), "{ls:?}");
        assert!(ls.contains(&("U1".into(), "U2".into())), "{ls:?}");
    }

    #[test]
    fn serializable_level_has_no_anomalies() {
        let p = parse(COURSEWARE).unwrap();
        assert!(detect_anomalies(&p, ConsistencyLevel::Serializable).is_empty());
    }

    /// A transaction reading the same record twice while another updates
    /// it: the observed state can move backwards under EC (non-monotonic
    /// read), which the causal session axioms and read stability forbid —
    /// so CC and RR must count strictly fewer anomalies than EC.
    const DOUBLE_READ: &str = "schema T { id: int key, v: int, w: int }
         txn audit(k: int) {
             @R1 x := select v from T where id = k;
             @R2 y := select v, w from T where id = k;
             return x.v + y.v;
         }
         txn bump(k: int) {
             @B1 x := select v from T where id = k;
             @B2 update T set v = x.v + 1 where id = k;
             return 0;
         }";

    #[test]
    fn cc_strictly_prunes_ec_on_double_reads() {
        let p = parse(DOUBLE_READ).unwrap();
        let ec = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        let cc = detect_anomalies(&p, ConsistencyLevel::CausalConsistency);
        let rr = detect_anomalies(&p, ConsistencyLevel::RepeatableRead);
        assert!(
            ec.iter().any(|a| a.kind == AnomalyKind::NonMonotonicRead),
            "EC must witness the non-monotonic read: {ec:?}"
        );
        assert!(
            cc.iter().all(|a| a.kind != AnomalyKind::NonMonotonicRead),
            "causal sessions forbid non-monotonic reads: {cc:?}"
        );
        assert!(cc.len() < ec.len(), "CC {} !< EC {}", cc.len(), ec.len());
        assert!(rr.len() < ec.len(), "RR {} !< EC {}", rr.len(), ec.len());
    }

    #[test]
    fn stronger_levels_are_monotone_on_courseware() {
        let p = parse(COURSEWARE).unwrap();
        let ec = detect_anomalies(&p, ConsistencyLevel::EventualConsistency).len();
        let cc = detect_anomalies(&p, ConsistencyLevel::CausalConsistency).len();
        let rr = detect_anomalies(&p, ConsistencyLevel::RepeatableRead).len();
        assert!(cc <= ec && rr <= ec);
    }

    #[test]
    fn multi_level_pass_matches_single_level_runs() {
        let p = parse(COURSEWARE).unwrap();
        let (by_level, stats) = detect_anomalies_at_levels(&p, &ConsistencyLevel::ALL);
        for level in ConsistencyLevel::ALL {
            assert_eq!(
                by_level[&level],
                detect_anomalies(&p, level),
                "shared-solver pass diverged at {level}"
            );
        }
        assert!(stats.queries > 0);
        assert!(
            stats.reused_clause_ratio() > 0.5,
            "per-pair reuse should dominate: {stats:?}"
        );
    }

    #[test]
    fn differential_paths_agree_on_courseware() {
        let p = parse(COURSEWARE).unwrap();
        let report = detect_differential(&p, &ConsistencyLevel::ALL);
        assert!(
            report.mismatches.is_empty(),
            "incremental vs fresh mismatches: {:?}",
            report.mismatches
        );
        let (fresh_ec, _) = detect_anomalies_fresh(&p, ConsistencyLevel::EventualConsistency);
        assert_eq!(
            report.by_level[&ConsistencyLevel::EventualConsistency],
            fresh_ec
        );
    }

    #[test]
    fn cached_detection_matches_plain_and_reuses_across_edits() {
        let p = parse(COURSEWARE).unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let mut cache = VerdictCache::new();
        let (first, _) = detect_anomalies_cached(&p, ec, &mut cache);
        assert_eq!(first, detect_anomalies(&p, ec));
        assert_eq!(cache.stats().hits, 0);

        // Same program again: all 9 ordered pairs answered from the cache,
        // not a single SAT query issued.
        let (second, s2) = detect_anomalies_cached(&p, ec, &mut cache);
        assert_eq!(second, first);
        assert_eq!(s2.queries, 0);
        assert_eq!(cache.stats().hits, 9);

        // Another level misses the verdict cache but reuses the retained
        // pair solvers (no re-grounding, no base re-encoding).
        let (cc, _) = detect_anomalies_cached(&p, ConsistencyLevel::CausalConsistency, &mut cache);
        assert_eq!(cc, detect_anomalies(&p, ConsistencyLevel::CausalConsistency));
        assert!(cache.stats().solver_reuses > 0, "{:?}", cache.stats());

        // Editing one transaction re-solves only the pairs that touch it:
        // 4 of the 9 ordered pairs (setSt × regSt combinations) still hit.
        let edited = parse(&COURSEWARE.replace(
            "@S3 z := select co_avail from COURSE where co_id = x.st_co_id;",
            "",
        ))
        .unwrap();
        let before = cache.stats();
        let (after_edit, _) = detect_anomalies_cached(&edited, ec, &mut cache);
        assert_eq!(after_edit, detect_anomalies(&edited, ec));
        let delta_hits = cache.stats().hits - before.hits;
        let delta_misses = cache.stats().misses - before.misses;
        assert_eq!(delta_hits, 4, "{:?}", cache.stats());
        assert_eq!(delta_misses, 5, "{:?}", cache.stats());
    }

    #[test]
    fn refactored_courseware_is_anomaly_free() {
        // The Fig. 3 refactoring: one wide STUDENT row + an insert-only log.
        let src = r#"
            schema STUDENT { st_id: int key, st_name: string, st_em_addr: string,
                             st_co_id: int, st_co_avail: bool, st_reg: bool }
            schema COURSE_LOG { co_id: int key, log_id: uuid key, cnt: int }
            txn getSt(id: int) {
                @RS1 x := select * from STUDENT where st_id = id;
                return 0;
            }
            txn setSt(id: int, name: string, email: string) {
                @RU1 update STUDENT set st_name = name, st_em_addr = email where st_id = id;
                return 0;
            }
            txn regSt(id: int, course: int) {
                @RU3 update STUDENT set st_co_id = course, st_co_avail = true, st_reg = true
                     where st_id = id;
                @RU4 insert into COURSE_LOG values (co_id = course, log_id = uuid(), cnt = 1);
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        let pairs = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        assert!(pairs.is_empty(), "expected no anomalies, got {pairs:?}");
    }

    #[test]
    fn marking_transactions_serializable_suppresses_their_pairs() {
        let p = parse(
            "schema T { id: int key, v: int }
             txn bump(k: int) {
                 x := select v from T where id = k;
                 update T set v = x.v + 1 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let all: BTreeSet<String> = BTreeSet::from(["bump".to_owned()]);
        let pairs = detect_anomalies_marked(&p, ConsistencyLevel::EventualConsistency, &all);
        assert!(pairs.is_empty());
        let none = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        assert_eq!(none.len(), 1);
        assert_eq!(none[0].kind, AnomalyKind::LostUpdate);
    }

    #[test]
    fn disjoint_constant_keys_do_not_conflict() {
        let p = parse(
            "schema T { id: int key, v: int }
             txn a() {
                 x := select v from T where id = 1;
                 update T set v = x.v + 1 where id = 1;
                 return 0;
             }
             txn b() {
                 y := select v from T where id = 2;
                 update T set v = y.v + 1 where id = 2;
                 return 0;
             }",
        )
        .unwrap();
        let pairs = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        // a×a and b×b lose updates, but a×b never conflicts.
        for pr in &pairs {
            assert_eq!(pr.txn1, pr.txn2);
        }
    }

    #[test]
    fn single_atomic_update_observed_by_single_read_is_safe() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             txn w(k: int) { update T set a = 1, b = 2 where id = k; return 0; }
             txn r(k: int) { x := select a, b from T where id = k; return x.a; }",
        )
        .unwrap();
        let pairs = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        assert!(pairs.is_empty(), "row-level atomicity protects {pairs:?}");
    }

    #[test]
    fn two_updates_same_record_are_dirty() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             txn w(k: int) {
                 @W1 update T set a = 1 where id = k;
                 @W2 update T set b = 2 where id = k;
                 return 0;
             }
             txn r(k: int) { @R x := select a, b from T where id = k; return x.a; }",
        )
        .unwrap();
        let pairs = detect_anomalies(&p, ConsistencyLevel::EventualConsistency);
        assert!(pairs
            .iter()
            .any(|p| p.kind == AnomalyKind::DirtyRead && p.cmd1.0 == "W1" && p.cmd2.0 == "W2"));
    }
}
