//! Bridging solver proof logs into checkable certificates.
//!
//! The checker crate (`atropos_proof`) deliberately shares no code with the
//! solver stack — its only vocabulary is the DIMACS `i32` literal
//! convention. This module owns the translation: a [`PairSolver`]'s
//! cumulative [`ProofEvent`] log plus the failed assumption core of one
//! UNSAT query become an encoded certificate blob whose acceptance by
//! [`atropos_proof::check_blob`] is independent evidence for the verdict.
//!
//! [`PairSolver`]: crate::encode::PairSolver

use atropos_proof::{ProofWriter, Step};
use atropos_sat::{Lit, ProofEvent};

/// The `Lit` → DIMACS bridge: variable `v` becomes `v + 1`, negated
/// literals become negative numbers.
fn dimacs_lit(l: Lit) -> i32 {
    let v = l.var().0 as i32 + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

/// An incremental certificate producer for one solver's lifetime: the
/// solver's cumulative event log is encoded once as it grows (the shared
/// prefix of every certificate the solver will emit), and each UNSAT
/// answer snapshots it with its own trailer. Without this, a solver
/// answering `q` UNSAT queries re-encodes the whole log `q` times — on
/// TPC-C that alone pushed proof logging past the benchmarked overhead
/// ceiling.
#[derive(Debug, Default)]
pub(crate) struct Certifier {
    writer: ProofWriter,
    /// Events already encoded into `writer`.
    consumed: usize,
}

impl Certifier {
    /// Assembles the certificate for one UNSAT answer and encodes it: the
    /// cumulative event log, then the trailer — `Add(¬core)` justified by
    /// the solver's final conflict analysis, one `Assume` per failed
    /// assumption, and the empty clause. A root refutation (empty core)
    /// needs only the empty clause.
    pub(crate) fn certificate_blob(&mut self, events: &[ProofEvent], core: &[Lit]) -> Vec<u8> {
        for e in &events[self.consumed..] {
            match e {
                ProofEvent::Input(l) => self
                    .writer
                    .push_input(l.iter().copied().map(dimacs_lit)),
                ProofEvent::Add(l) => self.writer.push_add(l.iter().copied().map(dimacs_lit)),
                ProofEvent::Delete(l) => self
                    .writer
                    .push_delete(l.iter().copied().map(dimacs_lit)),
            }
        }
        self.consumed = events.len();
        let mut trailer = Vec::with_capacity(core.len() + 2);
        if !core.is_empty() {
            trailer.push(Step::Add(core.iter().map(|&l| dimacs_lit(!l)).collect()));
            for &l in core {
                trailer.push(Step::Assume(dimacs_lit(l)));
            }
        }
        trailer.push(Step::Add(vec![]));
        self.writer.snapshot_with(&trailer)
    }
}

/// One-shot [`Certifier::certificate_blob`], for callers outside a solver
/// loop (and the unit tests below).
#[cfg(test)]
pub(crate) fn certificate_blob(events: &[ProofEvent], core: &[Lit]) -> Vec<u8> {
    Certifier::default().certificate_blob(events, core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_sat::Var;

    #[test]
    fn bridge_matches_dimacs_convention() {
        assert_eq!(dimacs_lit(Lit::new(Var(0), true)), 1);
        assert_eq!(dimacs_lit(Lit::new(Var(0), false)), -1);
        assert_eq!(dimacs_lit(Lit::new(Var(6), true)), 7);
        assert_eq!(dimacs_lit(Lit::new(Var(6), false)), -7);
    }

    #[test]
    fn root_refutation_blob_checks() {
        // x ∧ ¬x, refuted at the root: the log alone plus Add([]) must be
        // accepted by the independent checker.
        let x = Lit::new(Var(0), true);
        let events = vec![ProofEvent::Input(vec![x]), ProofEvent::Input(vec![!x])];
        let blob = certificate_blob(&events, &[]);
        assert!(atropos_proof::check_blob(&blob).is_ok());
    }

    #[test]
    fn assumption_core_trailer_checks() {
        // (¬a ∨ ¬b) with failed core {a, b}: the trailer adds ¬core (RUP
        // against the input), assumes the core, and closes with ⊥.
        let a = Lit::new(Var(0), true);
        let b = Lit::new(Var(1), true);
        let events = vec![ProofEvent::Input(vec![!a, !b])];
        let blob = certificate_blob(&events, &[a, b]);
        assert!(atropos_proof::check_blob(&blob).is_ok());
    }
}
