//! Session-scoped detection state: one [`VerdictCache`] (plus per-worker
//! accounting) shared across many detection passes *and many repair runs*.
//!
//! PR 3's verdict cache lived and died with a single `repair_with_config`
//! call. A [`DetectSession`] promotes it to a session lifetime: an ablation
//! sweep, a random-search baseline, or a whole benchmark suite constructs
//! one session and hands it to every run, so transaction shapes shared
//! between runs (CLOTHO-style sweeps re-analyse the same workloads under
//! many configurations) are answered from warm verdicts instead of
//! re-solved. Run boundaries are explicit ([`DetectSession::begin_run`]);
//! the cache attributes hits crossing a boundary to its cross-run counters,
//! and [`DetectSession::sweep`] bounds memory between runs by resetting
//! liveness to a single program (see the liveness-union contract in
//! [`crate::cache`]).

use atropos_dsl::Program;
use std::collections::BTreeMap;

use crate::cache::{CacheStats, VerdictCache};
use crate::engine::WorkerStats;

/// A verdict cache with a session lifetime, plus the per-worker counters
/// of every [`crate::DetectionEngine`] pass run against it.
///
/// # Examples
///
/// Sharing one session across two repair-style runs of the same program:
///
/// ```
/// use atropos_detect::{ConsistencyLevel, DetectionEngine, DetectSession};
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let engine = DetectionEngine::serial();
/// let mut session = DetectSession::new();
/// session.begin_run();
/// engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// session.begin_run(); // a second run: same shapes hit warm
/// engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// assert!(session.cache_stats().cross_run_hit_ratio() > 0.99);
/// ```
#[derive(Default)]
pub struct DetectSession {
    cache: VerdictCache,
    per_worker: Vec<WorkerStats>,
}

impl DetectSession {
    /// Creates an empty session.
    pub fn new() -> DetectSession {
        DetectSession {
            cache: VerdictCache::new(),
            per_worker: Vec::new(),
        }
    }

    /// Marks the start of one run (a repair call, one sweep configuration,
    /// one random-search round). Warm entries stay; hits on entries from
    /// earlier runs count towards [`CacheStats::cross_run_hits`].
    pub fn begin_run(&mut self) {
        self.cache.advance_run();
    }

    /// Runs started on this session.
    pub fn runs(&self) -> u64 {
        self.cache.runs()
    }

    /// The session cache's lifetime counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cached verdict entries currently held.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when no verdicts are cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Cumulative per-worker counters across every engine pass this
    /// session served, indexed by worker slot.
    pub fn per_worker(&self) -> &[WorkerStats] {
        &self.per_worker
    }

    /// Forwards a refactoring step's pure relabelings to the cache (see
    /// [`VerdictCache::record_renames`]).
    pub fn record_renames(&mut self, renames: &BTreeMap<String, String>) {
        self.cache.record_renames(renames);
    }

    /// Explicit between-runs sweep: resets liveness to exactly `program`
    /// and evicts everything else (see [`VerdictCache::sweep`]). Returns
    /// the number of verdict entries evicted.
    pub fn sweep(&mut self, program: &Program) -> usize {
        self.cache.sweep(program)
    }

    /// Split borrow for the engine: the cache and the per-worker counters.
    pub(crate) fn cache_and_workers(&mut self) -> (&mut VerdictCache, &mut Vec<WorkerStats>) {
        (&mut self.cache, &mut self.per_worker)
    }
}
