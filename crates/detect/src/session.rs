//! Session-scoped detection state: one [`VerdictCache`] (plus per-worker
//! accounting) shared across many detection passes *and many repair runs*.
//!
//! PR 3's verdict cache lived and died with a single `repair_with_config`
//! call. A [`DetectSession`] promotes it to a session lifetime: an ablation
//! sweep, a random-search baseline, or a whole benchmark suite constructs
//! one session and hands it to every run, so transaction shapes shared
//! between runs (CLOTHO-style sweeps re-analyse the same workloads under
//! many configurations) are answered from warm verdicts instead of
//! re-solved. Run boundaries are explicit ([`DetectSession::begin_run`]);
//! the cache attributes hits crossing a boundary to its cross-run counters,
//! and [`DetectSession::sweep`] bounds memory between runs by resetting
//! liveness to a single program (see the liveness-union contract in
//! [`crate::cache`]).

use atropos_dsl::Program;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::cache::{CacheStats, VerdictCache};
use crate::engine::WorkerStats;

/// A verdict cache with a session lifetime, plus the per-worker counters
/// of every [`crate::DetectionEngine`] pass run against it.
///
/// # Examples
///
/// Sharing one session across two repair-style runs of the same program:
///
/// ```
/// use atropos_detect::{ConsistencyLevel, DetectionEngine, DetectSession};
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let engine = DetectionEngine::serial();
/// let mut session = DetectSession::new();
/// session.begin_run();
/// engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// session.begin_run(); // a second run: same shapes hit warm
/// engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
/// assert!(session.cache_stats().cross_run_hit_ratio() > 0.99);
/// ```
#[derive(Default)]
pub struct DetectSession {
    cache: VerdictCache,
    per_worker: Vec<WorkerStats>,
}

impl DetectSession {
    /// Creates an empty session.
    pub fn new() -> DetectSession {
        DetectSession {
            cache: VerdictCache::new(),
            per_worker: Vec::new(),
        }
    }

    /// Marks the start of one run (a repair call, one sweep configuration,
    /// one random-search round). Warm entries stay; hits on entries from
    /// earlier runs count towards [`CacheStats::cross_run_hits`].
    pub fn begin_run(&mut self) {
        self.cache.advance_run();
    }

    /// Runs started on this session.
    pub fn runs(&self) -> u64 {
        self.cache.runs()
    }

    /// The session cache's lifetime counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cached pair-verdict entries currently held.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Cached triple-verdict entries currently held.
    pub fn triple_len(&self) -> usize {
        self.cache.triple_len()
    }

    /// True when no verdicts are cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Cumulative per-worker counters across every engine pass this
    /// session served, indexed by worker slot.
    pub fn per_worker(&self) -> &[WorkerStats] {
        &self.per_worker
    }

    /// Every proof certificate blob stored in the session's cache, in
    /// deterministic entry order (see [`VerdictCache::proof_blobs`]).
    /// Empty unless a proof-capturing engine ran against this session.
    pub fn proof_blobs(&self) -> Vec<Vec<u8>> {
        self.cache.proof_blobs()
    }

    /// One audit record per cached verdict, in deterministic entry order
    /// (see [`VerdictCache::audits`]) — the raw material of the anomaly
    /// reports.
    pub fn audits(&self) -> Vec<crate::cache::VerdictAudit> {
        self.cache.audits()
    }

    /// Forwards a refactoring step's pure relabelings to the cache (see
    /// [`VerdictCache::record_renames`]).
    pub fn record_renames(&mut self, renames: &BTreeMap<String, String>) {
        self.cache.record_renames(renames);
    }

    /// Explicit between-runs sweep: resets liveness to exactly `program`
    /// and evicts everything else (see [`VerdictCache::sweep`]). Returns
    /// the number of verdict entries evicted.
    pub fn sweep(&mut self, program: &Program) -> usize {
        self.cache.sweep(program)
    }

    /// Between-runs sweep for corpus drivers: resets liveness to the
    /// **union** of every program in `programs` (rather than the single
    /// program of [`DetectSession::sweep`]), evicting entries stranded by
    /// intermediate refactoring states while keeping every corpus
    /// program's shapes warm. Returns the number of verdict entries
    /// evicted.
    pub fn sweep_corpus<'a>(
        &mut self,
        programs: impl IntoIterator<Item = &'a Program>,
    ) -> usize {
        let fps = programs
            .into_iter()
            .flat_map(|p| {
                crate::model::summarize_program(p)
                    .iter()
                    .map(crate::cache::txn_fingerprint)
                    .collect::<Vec<_>>()
            })
            .collect();
        self.cache.sweep_fps(fps)
    }

    /// Evicts exactly the cached verdicts whose transactions *changed
    /// shape* in `after` — a renamed-but-identical transaction (its
    /// summary fingerprint is label-blind) keeps its entries, so a
    /// rename-only refactoring step stays fully warm (see
    /// [`VerdictCache::invalidate_txns_changed`]). Returns the number of
    /// verdict entries evicted.
    pub fn invalidate_txns_changed(
        &mut self,
        txns: &std::collections::BTreeSet<String>,
        after: &Program,
    ) -> usize {
        self.cache.invalidate_txns_changed(txns, after)
    }

    /// Split borrow for the engine: the cache and the per-worker counters.
    pub(crate) fn cache_and_workers(&mut self) -> (&mut VerdictCache, &mut Vec<WorkerStats>) {
        (&mut self.cache, &mut self.per_worker)
    }

    /// The session's cache (the corpus store merges from it).
    pub(crate) fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// Mutable access for in-crate callers that drive the cache directly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn cache_mut(&mut self) -> &mut VerdictCache {
        &mut self.cache
    }

    /// Wraps an already-loaded cache (the v2 store's load path).
    pub(crate) fn from_cache(cache: VerdictCache) -> DetectSession {
        DetectSession {
            cache,
            per_worker: Vec::new(),
        }
    }

    /// Persists every pair and triple verdict entry to `path`, dispatching
    /// on what `path` is:
    ///
    /// * an existing **directory** is treated as a sharded
    ///   `verdict_cache.v2` store ([`crate::corpus::CorpusStore`]): this
    ///   session's verdicts are **union-merged** in under per-shard
    ///   advisory locks, so concurrent sessions saving to one store
    ///   combine instead of clobbering each other;
    /// * any other path gets the monolithic length-prefixed
    ///   `verdict_cache.v1` file (conventionally
    ///   `experiments/verdict_cache.v1`; the bench bins wire this behind
    ///   the `ATROPOS_CACHE_FILE` environment variable), written via a
    ///   sibling tempfile and an atomic rename so a crash mid-save leaves
    ///   the previous file intact — never the truncated files
    ///   [`DetectSession::load_from`] rejects.
    ///
    /// Retained solvers are transient and not persisted — a loaded
    /// session re-encodes on its first miss but never re-solves a
    /// persisted verdict. Returns the number of entries written (for a v2
    /// store: the number this session contributed, merged or already
    /// present).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing `path`.
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let path = path.as_ref();
        if path.is_dir() {
            crate::corpus::CorpusStore::open(path)?.merge_cache(&self.cache)?;
            return Ok(self.cache.len() + self.cache.triple_len());
        }
        let mut bytes = Vec::new();
        let entries = self.cache.save_entries(&mut bytes);
        crate::corpus::write_atomic(path, &bytes)?;
        Ok(entries)
    }

    /// Reconstructs a session from a [`DetectSession::save_to`] path — a
    /// `verdict_cache.v1` file or a `verdict_cache.v2` store directory.
    /// All entries load into run 0 (warm for every following run), and the
    /// liveness union is seeded with every persisted fingerprint so a pass
    /// over one program does not sweep away another program's entries.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns
    /// [`std::io::ErrorKind::InvalidData`] on a malformed or
    /// version-incompatible file.
    pub fn load_from(path: impl AsRef<Path>) -> io::Result<DetectSession> {
        let path = path.as_ref();
        if path.is_dir() {
            let cache = crate::corpus::CorpusStore::open(path)?.load_cache()?;
            return Ok(DetectSession::from_cache(cache));
        }
        let bytes = std::fs::read(path)?;
        Ok(DetectSession {
            cache: VerdictCache::load_entries(&bytes)?,
            per_worker: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DetectMode, DetectionEngine};
    use crate::ConsistencyLevel;

    const RELAY: &str = "schema MSG { m_id: int key, m_body: string }
         schema FEED { f_id: int key, f_body: string }
         txn post(m: int, body: string) {
             @W1 update MSG set m_body = body where m_id = m;
             return 0;
         }
         txn relay(m: int, f: int) {
             @R2 x := select m_body from MSG where m_id = m;
             @W2 update FEED set f_body = x.m_body where f_id = f;
             return 0;
         }
         txn timeline(f: int, m: int) {
             @R3 y := select f_body from FEED where f_id = f;
             @R4 z := select m_body from MSG where m_id = m;
             return 0;
         }";

    #[test]
    fn verdicts_roundtrip_across_processes() {
        let p = atropos_dsl::parse(RELAY).unwrap();
        let engine = DetectionEngine::serial();
        let ec = ConsistencyLevel::EventualConsistency;

        // "Process one": detect in both modes and persist.
        let mut first = DetectSession::new();
        let (pairs, _) = engine.detect(&p, ec, &mut first);
        let (triples, _) = engine.detect_with_mode(&p, ec, DetectMode::Triples, &mut first);
        let path = std::env::temp_dir().join(format!(
            "atropos_verdict_cache_{}.v1",
            std::process::id()
        ));
        let entries = first.save_to(&path).expect("save");
        assert!(entries > 0);

        // "Process two": load and re-detect — same verdicts, zero queries.
        let mut second = DetectSession::load_from(&path).expect("load");
        let before = second.cache_stats();
        let (again_pairs, sp) = engine.detect(&p, ec, &mut second);
        let (again_triples, st) =
            engine.detect_with_mode(&p, ec, DetectMode::Triples, &mut second);
        assert_eq!(again_pairs, pairs);
        assert_eq!(again_triples, triples);
        assert_eq!(sp.queries + st.queries, 0, "persisted verdicts must replay");
        let delta = second.cache_stats().since(&before);
        assert_eq!(delta.misses + delta.triple_misses, 0, "{delta:?}");

        // Corrupt data is refused, not misread.
        std::fs::write(&path, b"not a verdict cache").expect("overwrite");
        assert!(DetectSession::load_from(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    /// A zero-length cache file (crash before the first write, or an
    /// `ATROPOS_CACHE_FILE` created by `touch`) must be refused with a
    /// clear `InvalidData` error, not misread as an empty cache.
    #[test]
    fn zero_length_cache_file_is_refused() {
        let path = std::env::temp_dir().join(format!(
            "atropos_zero_length_{}.v1",
            std::process::id()
        ));
        std::fs::write(&path, b"").expect("write");
        let err = match DetectSession::load_from(&path) {
            Err(e) => e,
            Ok(_) => panic!("zero-length file accepted"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("empty file"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    /// A file cut off *inside* a length-prefixed record — valid magic,
    /// valid revision, clean EOF mid-entry (a partial write or copy) —
    /// must be refused with a clear `InvalidData` error rather than loading
    /// a silently incomplete cache.
    #[test]
    fn mid_record_truncation_is_refused() {
        let p = atropos_dsl::parse(RELAY).unwrap();
        let engine = DetectionEngine::serial();
        let mut session = DetectSession::new();
        engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
        let path = std::env::temp_dir().join(format!(
            "atropos_truncated_{}.v1",
            std::process::id()
        ));
        session.save_to(&path).expect("save");

        let bytes = std::fs::read(&path).expect("read");
        // Cut off mid-record at several depths: just past the header (the
        // entry count promises records the bytes can't hold), and a few
        // bytes short of the end (EOF inside the final record).
        for cut in [13, bytes.len() - 5, bytes.len() - 1] {
            assert!(cut < bytes.len(), "fixture large enough");
            std::fs::write(&path, &bytes[..cut]).expect("write");
            let err = match DetectSession::load_from(&path) {
                Err(e) => e,
                Ok(_) => panic!("file truncated at {cut} accepted"),
            };
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut at {cut}");
            assert!(err.to_string().contains("truncated"), "cut at {cut}: {err}");
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A crash mid-`save_to` must never damage the previously saved file:
    /// the write stages into a sibling tempfile and lands via atomic
    /// rename. The test replays the kill by planting exactly the partial
    /// bytes a writer killed partway would leave at the staging path —
    /// the original file must still load, byte-for-byte warm.
    #[test]
    fn killed_save_leaves_previous_file_loadable() {
        let p = atropos_dsl::parse(RELAY).unwrap();
        let engine = DetectionEngine::serial();
        let mut session = DetectSession::new();
        let (pairs, _) = engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
        let path = std::env::temp_dir().join(format!(
            "atropos_crash_save_{}.v1",
            std::process::id()
        ));
        let entries = session.save_to(&path).expect("first save");
        assert!(entries > 0);
        let good = std::fs::read(&path).expect("read saved file");

        // "Kill" a second save partway: the staging sibling holds a
        // truncated prefix, but no rename ever happens.
        let staged = crate::corpus::tmp_sibling(&path);
        std::fs::write(&staged, &good[..good.len() / 2]).expect("partial write");

        // The real file is untouched and still loads to the same verdicts.
        assert_eq!(std::fs::read(&path).expect("reread"), good);
        let mut reloaded = DetectSession::load_from(&path).expect("load survives the crash");
        let (again, stats) =
            engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut reloaded);
        assert_eq!(again, pairs);
        assert_eq!(stats.queries, 0, "reloaded verdicts replay warm");

        // And a completed save atomically replaces the file, leaving no
        // staging debris behind at its own sibling.
        session.save_to(&path).expect("second save");
        assert_eq!(std::fs::read(&path).expect("reread"), good);
        let _ = std::fs::remove_file(&staged);
        let _ = std::fs::remove_file(&path);
    }

    /// `save_to`/`load_from` pointed at a *directory* speak the sharded
    /// v2 store format: saving union-merges, loading replays warm.
    #[test]
    fn directory_paths_dispatch_to_the_v2_store() {
        let p = atropos_dsl::parse(RELAY).unwrap();
        let engine = DetectionEngine::serial();
        let ec = ConsistencyLevel::EventualConsistency;
        let mut first = DetectSession::new();
        let (pairs, _) = engine.detect(&p, ec, &mut first);
        let (triples, _) = engine.detect_with_mode(&p, ec, DetectMode::Triples, &mut first);

        let dir = std::env::temp_dir().join(format!(
            "atropos_session_store_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let entries = first.save_to(&dir).expect("save to store");
        assert_eq!(entries, first.len() + first.triple_len());

        let mut second = DetectSession::load_from(&dir).expect("load from store");
        let (again_pairs, sp) = engine.detect(&p, ec, &mut second);
        let (again_triples, st) = engine.detect_with_mode(&p, ec, DetectMode::Triples, &mut second);
        assert_eq!(again_pairs, pairs);
        assert_eq!(again_triples, triples);
        assert_eq!(sp.queries + st.queries, 0, "store verdicts replay warm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A cache persisted by a different encoder revision must be refused
    /// with a clear error, not silently trusted: its verdicts may not mean
    /// what this build thinks (stale-verdict replay would bypass
    /// re-detection entirely).
    #[test]
    fn stale_encoder_revision_is_refused() {
        let p = atropos_dsl::parse(RELAY).unwrap();
        let engine = DetectionEngine::serial();
        let mut session = DetectSession::new();
        engine.detect(&p, ConsistencyLevel::EventualConsistency, &mut session);
        let path = std::env::temp_dir().join(format!(
            "atropos_stale_revision_{}.v1",
            std::process::id()
        ));
        session.save_to(&path).expect("save");

        // Rewind the encoder-revision field (the 4 bytes after the magic)
        // to a foreign value, leaving everything else byte-identical.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");

        let err = match DetectSession::load_from(&path) {
            Err(e) => e,
            Ok(_) => panic!("stale revision accepted"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("encoder revision"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
