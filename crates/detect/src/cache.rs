//! Pair-verdict caching across program edits: the oracle-reuse layer of the
//! near-incremental repair loop.
//!
//! A refactoring step (split / merge / redirect / logging) touches a handful
//! of commands, yet the Fig. 10 driver re-runs the whole anomaly oracle on
//! the mutated program. The [`VerdictCache`] closes that gap one level above
//! the SAT layer: every ordered transaction pair's verdicts ([`AccessPair`]
//! lists) are memoized under a **canonical fingerprint** of the two
//! transactions' command summaries, so re-detection after a step only
//! re-encodes and re-solves the pairs whose fingerprint changed.
//!
//! # The fingerprint
//!
//! [`txn_fingerprint`] hashes everything the two-instance encoding and the
//! violation templates can observe about a transaction: its name and, per
//! command in program order, the kind, schema, read/write field sets, key
//! specification, bound variable, and used variables. Command **labels are
//! deliberately excluded** — a pure relabeling preserves verdicts, and the
//! cache remaps labels in cached [`AccessPair`]s through the rename map the
//! refactoring rules report ([`VerdictCache::record_renames`]). Anything
//! else a rewrite can change (field sets, filters, schemas, command order)
//! lands in the fingerprint, so a stale hit is impossible as long as the
//! fingerprint is *sound*: any mutation that changes a command's access
//! behaviour must change it. That soundness obligation is pinned by the
//! property suite in `crates/detect/tests/fingerprint_prop.rs`, not by the
//! end-to-end tests.
//!
//! # The invalidation contract
//!
//! Soundness never depends on explicit invalidation (a changed pair simply
//! misses), but every refactoring rule still reports the transactions it
//! dirtied so the driver can call [`VerdictCache::invalidate_txns`]: this
//! evicts the stale entries (bounding memory across long repair runs) and
//! keeps the reuse statistics honest. Rules that relabel commands without
//! changing their summaries must report the relabeling via
//! [`VerdictCache::record_renames`] instead.
//!
//! # Solver retention
//!
//! Besides verdicts, the cache retains each pair's [`PairSolver`] (keyed by
//! the fingerprint pair), so a pair that is re-queried — e.g. at another
//! consistency level, or after its verdict entry was evicted while its
//! fingerprint survived — reuses the already-encoded ordering/visibility
//! matrix and every learnt clause instead of re-encoding from scratch.
//! Retained states live in a **sharded map** ([`ShardedStateMap`]):
//! independent mutex-guarded shards keyed by the fingerprint pair, so the
//! parallel detection engine's workers can take and return solvers
//! concurrently without a global lock (retained solvers migrate freely
//! between workers — [`PairState`] is `Send`).
//!
//! # Triple verdicts
//!
//! [`crate::DetectMode::Triples`] passes additionally memoize each
//! transaction triple's chain-anomaly verdicts under the **canonical
//! 3-fingerprint** — the three fingerprints in sorted order, so the entry
//! is orientation-normalized (every role permutation is analysed inside
//! one entry) — with their own retained [`crate::triple::TripleSolver`]s
//! in a second sharded map. Triple entries follow the same contracts as
//! pair entries: label renames remap them eagerly
//! ([`VerdictCache::record_renames`]), liveness sweeps keep an entry only
//! while all three fingerprints are live, and `invalidate_txns` evicts by
//! any member transaction's name.
//!
//! # Multi-run lifetimes
//!
//! A cache may outlive one repair run: a [`crate::DetectSession`] shares it
//! across an ablation sweep or a whole benchmark suite. Liveness for the
//! per-pass garbage sweep is therefore computed against the **union of all
//! programs seen** since construction (or since the last explicit
//! [`VerdictCache::sweep`]), so warm entries from a prior run are neither
//! stranded behind a narrower program nor prematurely dropped before that
//! run's program comes back. Callers that want memory bounded between runs
//! call [`VerdictCache::sweep`] explicitly, which resets liveness to exactly
//! one program. Run boundaries ([`VerdictCache::advance_run`]) additionally
//! let the cache attribute hits to entries born in earlier runs — the
//! cross-run counters of [`CacheStats`].

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use atropos_dsl::Program;
use atropos_sat::Lit;

use crate::detect::AccessPair;
use crate::encode::{ConsistencyLevel, InstanceModel, PairSolver};
use crate::model::{summarize_program, CmdSummary, KeySpec, TxnSummary};
use crate::triple::TripleState;

/// Canonical fingerprint of one transaction's command summaries: the exact
/// information the pair encoding and the violation templates consume.
///
/// Two summaries with equal fingerprints produce identical detection
/// verdicts when paired with equal-fingerprint partners (up to command
/// labels, which are excluded — see the module docs). The fingerprint is a
/// 64-bit hash of a canonical serialization; collisions are possible in
/// principle but vanishingly unlikely at repair-loop cache sizes
/// (tens of entries).
pub fn txn_fingerprint(txn: &TxnSummary) -> u64 {
    let mut h = DefaultHasher::new();
    txn.name.hash(&mut h);
    txn.commands.len().hash(&mut h);
    for c in &txn.commands {
        hash_cmd(c, &mut h);
    }
    h.finish()
}

/// Canonical fingerprint of one command summary (the same detector-visible
/// fields [`txn_fingerprint`] folds per command, label excluded) — the
/// command-granular building block `dirty_between`-style diffs use to name
/// exactly which commands a refactoring step changed.
pub fn cmd_fingerprint(c: &CmdSummary) -> u64 {
    let mut h = DefaultHasher::new();
    hash_cmd(c, &mut h);
    h.finish()
}

fn hash_cmd(c: &CmdSummary, h: &mut impl Hasher) {
    // NOT hashed: c.label — relabelings resolve through the rename map.
    (c.kind as u8).hash(h);
    c.schema.hash(h);
    c.prog_index.hash(h);
    c.reads.hash(h);
    c.writes.hash(h);
    c.bound_var.hash(h);
    c.uses_vars.hash(h);
    match &c.key {
        KeySpec::Keyed { key, constant } => {
            0u8.hash(h);
            key.hash(h);
            constant.hash(h);
        }
        KeySpec::Scan => 1u8.hash(h),
        KeySpec::Fresh => 2u8.hash(h),
    }
}

/// Counters describing how much oracle work a [`VerdictCache`] saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verdict lookups performed (one per ordered pair per detection pass).
    pub lookups: u64,
    /// Lookups answered from the cache without touching a solver.
    pub hits: u64,
    /// Lookups that had to re-analyse the pair.
    pub misses: u64,
    /// Misses that nevertheless reused a retained [`PairSolver`] (and its
    /// encoded clauses and learnt clauses) instead of re-encoding.
    pub solver_reuses: u64,
    /// Entries evicted — by the fingerprint-liveness sweep each
    /// [`crate::detect_anomalies_cached`] pass runs (stranded by program
    /// edits), or by an explicit [`VerdictCache::invalidate_txns`] /
    /// [`VerdictCache::sweep`] call.
    pub invalidated: u64,
    /// Lookups performed in any run after the session's first (see
    /// [`VerdictCache::advance_run`]); zero when the cache never crossed a
    /// run boundary. Counts pair and triple lookups alike.
    pub cross_run_lookups: u64,
    /// Of those, lookups answered by an entry inserted in an *earlier* run —
    /// the warm verdicts one repair run hands the next.
    pub cross_run_hits: u64,
    /// Triple-verdict lookups performed (one per unordered transaction
    /// triple per [`crate::DetectMode::Triples`] detection pass).
    pub triple_lookups: u64,
    /// Triple lookups answered from the cache without touching a solver.
    pub triple_hits: u64,
    /// Triple lookups that had to re-analyse the triple.
    pub triple_misses: u64,
    /// Learnt clauses seeded into freshly built solvers from the engine's
    /// [`LearntPool`] — lemmas a fingerprint-identical earlier solve
    /// published, offered to this cache's misses at solver construction
    /// (root facts the sibling re-derives on its own are absorbed for
    /// free during import).
    pub learnt_seeded: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Fraction of post-first-run lookups answered by an earlier run's
    /// entry (0 when the cache never crossed a run boundary).
    pub fn cross_run_hit_ratio(&self) -> f64 {
        if self.cross_run_lookups == 0 {
            return 0.0;
        }
        self.cross_run_hits as f64 / self.cross_run_lookups as f64
    }

    /// Counter-wise difference `self - earlier`: the work attributable to
    /// the span between two snapshots of one cache's lifetime statistics.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups - earlier.lookups,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            solver_reuses: self.solver_reuses - earlier.solver_reuses,
            invalidated: self.invalidated - earlier.invalidated,
            cross_run_lookups: self.cross_run_lookups - earlier.cross_run_lookups,
            cross_run_hits: self.cross_run_hits - earlier.cross_run_hits,
            triple_lookups: self.triple_lookups - earlier.triple_lookups,
            triple_hits: self.triple_hits - earlier.triple_hits,
            triple_misses: self.triple_misses - earlier.triple_misses,
            learnt_seeded: self.learnt_seeded - earlier.learnt_seeded,
        }
    }
}

/// Key of one verdict entry: the ordered pair's fingerprints, whether the
/// symmetric (lost-update) template ran for this orientation, and the
/// consistency level queried.
pub(crate) type VerdictKey = (u64, u64, bool, ConsistencyLevel);

#[derive(Debug, Clone)]
pub(crate) struct VerdictEntry {
    pub(crate) txn1: String,
    pub(crate) txn2: String,
    /// Run (see [`VerdictCache::advance_run`]) this entry was inserted in.
    pub(crate) run: u64,
    /// Raw `analyse_pair` output for this ordered pair (pre-deduplication).
    pub(crate) pairs: Vec<AccessPair>,
    /// Proof certificates of the UNSAT queries behind this verdict
    /// (`atropos_proof` blobs); empty unless the analysing engine had
    /// proof capture on.
    pub(crate) proofs: Vec<Vec<u8>>,
}

/// Key of one triple-verdict entry: the **canonical 3-fingerprint** — the
/// three transaction fingerprints in sorted order (orientation-normalized;
/// every role permutation of the instances is analysed inside one entry,
/// so the verdict is independent of which orientation grounded it) — plus
/// the consistency level queried.
pub(crate) type TripleVerdictKey = (u64, u64, u64, ConsistencyLevel);

#[derive(Debug, Clone)]
pub(crate) struct TripleEntry {
    pub(crate) txns: [String; 3],
    /// Run (see [`VerdictCache::advance_run`]) this entry was inserted in.
    pub(crate) run: u64,
    /// Raw `analyse_triple` output for this triple (pre-deduplication).
    pub(crate) pairs: Vec<AccessPair>,
    /// Proof certificates of the UNSAT queries behind this verdict.
    pub(crate) proofs: Vec<Vec<u8>>,
}

/// Retained per-pair analysis state: the grounded two-instance model and,
/// once a query was issued, the incremental solver built on it.
///
/// `PairState` is `Send` (a compile-time guarantee pinned below): the
/// parallel detection engine hands retained states to whichever worker
/// claims the pair, so a solver built on one thread freely migrates to
/// another between passes.
pub(crate) struct PairState {
    pub(crate) model: InstanceModel,
    pub(crate) solver: Option<PairSolver>,
    txns: (String, String),
}

impl PairState {
    /// Grounds a fresh analysis state for one ordered transaction pair.
    pub(crate) fn new(t1: &TxnSummary, t2: &TxnSummary) -> PairState {
        PairState {
            model: InstanceModel::new(t1, t2),
            solver: None,
            txns: (t1.name.clone(), t2.name.clone()),
        }
    }
}

// The whole retained-state payload must be able to migrate between the
// engine's workers; a non-Send field sneaking into the solver stack should
// fail compilation here, not at every use site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PairState>();
};

/// How many independently locked shards a [`ShardedMap`] spreads its
/// retained states over. Sixteen comfortably exceeds the engine's worker
/// cap, so two workers rarely contend on one mutex.
const STATE_SHARDS: usize = 16;

/// A solver-retention map: retained analysis states keyed by a fingerprint
/// tuple, split over [`STATE_SHARDS`] mutex-guarded shards so parallel
/// workers can `take`/`store` concurrently through a shared reference.
/// Serial callers go through the same API (an uncontended mutex lock is a
/// few nanoseconds), keeping one code path. Instantiated for pair states
/// ([`ShardedStateMap`]) and triple states ([`ShardedTripleMap`]).
pub(crate) struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

/// Retained [`PairState`]s keyed by the ordered fingerprint pair.
pub(crate) type ShardedStateMap = ShardedMap<(u64, u64), PairState>;

/// Retained [`TripleState`]s keyed by the canonical (sorted) 3-fingerprint.
pub(crate) type ShardedTripleMap = ShardedMap<(u64, u64, u64), TripleState>;

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: (0..STATE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(key: &K) -> usize {
        // The keys are tuples of high-entropy fingerprints; one SipHash
        // round over them is deterministic and distribution enough.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % STATE_SHARDS as u64) as usize
    }

    /// Removes and returns the retained state for a key, if any.
    pub(crate) fn take(&self, key: K) -> Option<V> {
        self.shards[Self::shard_of(&key)]
            .lock()
            .expect("state shard poisoned")
            .remove(&key)
    }

    /// Whether a state is currently retained for `key`.
    pub(crate) fn contains(&self, key: &K) -> bool {
        self.shards[Self::shard_of(key)]
            .lock()
            .expect("state shard poisoned")
            .contains_key(key)
    }

    /// Returns a state to the map for later reuse.
    pub(crate) fn store(&self, key: K, state: V) {
        self.shards[Self::shard_of(&key)]
            .lock()
            .expect("state shard poisoned")
            .insert(key, state);
    }

    /// Keeps only the states satisfying `f` (exclusive access, no locking).
    fn retain(&mut self, mut f: impl FnMut(&K, &V) -> bool) {
        for shard in &mut self.shards {
            shard.get_mut().expect("state shard poisoned").retain(|k, s| f(k, s));
        }
    }

    /// Mutable visit of every retained state (exclusive access).
    fn for_each_mut(&mut self, mut f: impl FnMut(&mut V)) {
        for shard in &mut self.shards {
            for s in shard.get_mut().expect("state shard poisoned").values_mut() {
                f(s);
            }
        }
    }
}

/// Key of one pair entry in the [`LearntPool`]: the ordered fingerprint
/// pair plus the consistency level whose queries derived the lemmas.
type PairPoolKey = (u64, u64, ConsistencyLevel);

/// A deterministic pool of learnt clauses shared across
/// **fingerprint-identical** solvers, owned by a
/// [`crate::DetectionEngine`] and outliving any one [`VerdictCache`].
///
/// Two [`PairSolver`]s built for the same canonical `(fingerprint,
/// fingerprint, level)` key ground the same [`InstanceModel`] and emit the
/// same base encoding over the same variable numbering, so lemmas one of
/// them derived over **base variables only** (see
/// `atropos_sat::Solver::retained_learnts` for the soundness argument) are
/// valid verbatim in the other. The first solve of a key *publishes* its
/// retained clauses here — at the engine's serial-order merge point, and
/// only when the solve started from a fresh state and was the key's only
/// solve of the batch, so the published set is byte-identical at any
/// thread count. Later solvers built for the same key *seed* from the
/// published set before their first query instead of re-deriving the
/// lemmas (duplicated programs in a corpus, scratch-reference passes,
/// ablation sweeps re-grounding the same shapes).
///
/// The pool is frozen while a batch's workers run — publication happens
/// strictly between batches — so whether a worker sees a key published is
/// a plan-time fact, not a race.
#[derive(Default)]
pub struct LearntPool {
    pairs: Mutex<HashMap<PairPoolKey, Arc<Vec<Vec<Lit>>>>>,
    triples: Mutex<HashMap<TripleVerdictKey, Arc<Vec<Vec<Lit>>>>>,
}

impl LearntPool {
    /// An empty pool.
    pub fn new() -> LearntPool {
        LearntPool::default()
    }

    /// Published clause sets (pair plus triple keys) — for reporting.
    pub fn published(&self) -> usize {
        self.pairs.lock().expect("learnt pool poisoned").len()
            + self.triples.lock().expect("learnt pool poisoned").len()
    }

    /// Total clauses across every published set — for reporting.
    pub fn published_clauses(&self) -> usize {
        let pairs = self.pairs.lock().expect("learnt pool poisoned");
        let triples = self.triples.lock().expect("learnt pool poisoned");
        pairs.values().chain(triples.values()).map(|c| c.len()).sum()
    }

    pub(crate) fn has_pair(&self, fp1: u64, fp2: u64, level: ConsistencyLevel) -> bool {
        self.pairs
            .lock()
            .expect("learnt pool poisoned")
            .contains_key(&(fp1, fp2, level))
    }

    pub(crate) fn pair_seed(
        &self,
        fp1: u64,
        fp2: u64,
        level: ConsistencyLevel,
    ) -> Option<Arc<Vec<Vec<Lit>>>> {
        self.pairs
            .lock()
            .expect("learnt pool poisoned")
            .get(&(fp1, fp2, level))
            .cloned()
    }

    /// Publish-once: the first set wins, later calls are ignored (the
    /// caller's plan-time `has_pair` check makes them unreachable in the
    /// engine anyway).
    pub(crate) fn publish_pair(
        &self,
        fp1: u64,
        fp2: u64,
        level: ConsistencyLevel,
        clauses: Vec<Vec<Lit>>,
    ) {
        self.pairs
            .lock()
            .expect("learnt pool poisoned")
            .entry((fp1, fp2, level))
            .or_insert_with(|| Arc::new(clauses));
    }

    pub(crate) fn has_triple(&self, key: &TripleVerdictKey) -> bool {
        self.triples
            .lock()
            .expect("learnt pool poisoned")
            .contains_key(key)
    }

    pub(crate) fn triple_seed(&self, key: &TripleVerdictKey) -> Option<Arc<Vec<Vec<Lit>>>> {
        self.triples
            .lock()
            .expect("learnt pool poisoned")
            .get(key)
            .cloned()
    }

    pub(crate) fn publish_triple(&self, key: TripleVerdictKey, clauses: Vec<Vec<Lit>>) {
        self.triples
            .lock()
            .expect("learnt pool poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(clauses));
    }
}

/// A cache of per-pair anomaly verdicts and solvers, keyed by transaction
/// fingerprints. The repair driver owns one per run — or, via
/// [`crate::DetectSession`], one per whole benchmark sweep — and threads it
/// through every detection pass via [`crate::detect_anomalies_cached`] or
/// the [`crate::DetectionEngine`].
///
/// See the [module docs](self) for the fingerprint, invalidation, and
/// multi-run liveness contracts.
pub struct VerdictCache {
    verdicts: HashMap<VerdictKey, VerdictEntry>,
    states: ShardedStateMap,
    /// Triple verdicts, keyed by the canonical (sorted) 3-fingerprint.
    triples: HashMap<TripleVerdictKey, TripleEntry>,
    triple_states: ShardedTripleMap,
    stats: CacheStats,
    /// Union of every live transaction fingerprint seen since construction
    /// or the last explicit [`VerdictCache::sweep`] — the liveness set the
    /// per-pass garbage sweep checks entries against.
    session_live: BTreeSet<u64>,
    /// Current run number; 0 until [`VerdictCache::advance_run`] is called.
    run: u64,
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

impl VerdictCache {
    /// Creates an empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache {
            verdicts: HashMap::new(),
            states: ShardedStateMap::new(),
            triples: HashMap::new(),
            triple_states: ShardedTripleMap::new(),
            stats: CacheStats::default(),
            session_live: BTreeSet::new(),
            run: 0,
        }
    }

    /// Marks the boundary between two runs sharing this cache (e.g. two
    /// `repair` calls of an ablation sweep). Hits on entries inserted
    /// before the boundary count as *cross-run* hits in [`CacheStats`];
    /// the entries themselves stay warm — eviction is the business of
    /// [`VerdictCache::sweep`], not of run accounting.
    pub fn advance_run(&mut self) {
        self.run += 1;
    }

    /// Runs started on this cache (0 until the first
    /// [`VerdictCache::advance_run`]).
    pub fn runs(&self) -> u64 {
        self.run
    }

    /// Shared handle to the sharded solver-retention map, for the parallel
    /// engine's workers.
    pub(crate) fn states(&self) -> &ShardedStateMap {
        &self.states
    }

    /// Shared handle to the sharded triple-state retention map, for the
    /// engine's triple-phase workers.
    pub(crate) fn triple_states(&self) -> &ShardedTripleMap {
        &self.triple_states
    }

    /// Mutable access to the lifetime counters, for the engine to merge
    /// worker-local statistics after a parallel pass.
    pub(crate) fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Cumulative statistics of this cache's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of pair-verdict entries currently cached.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Number of triple-verdict entries currently cached.
    pub fn triple_len(&self) -> usize {
        self.triples.len()
    }

    /// True when no verdicts (pair or triple) are cached.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty() && self.triples.is_empty()
    }

    /// Records the label renames of one refactoring step that *did not*
    /// change the renamed commands' summaries (a pure relabeling), applying
    /// them **eagerly and simultaneously** to every cached verdict and to
    /// every retained pair model — so a swap batch `{a → b, b → a}` is
    /// exact, and renames across successive steps compose by construction
    /// (`a → b` now, `b → c` later, serves `c`). After this call the cache
    /// speaks only the post-step label language, for hits and for fresh
    /// analyses through retained state alike.
    pub fn record_renames(&mut self, renames: &BTreeMap<String, String>) {
        if renames.is_empty() {
            return;
        }
        let remap = |label: &mut String| {
            if let Some(to) = renames.get(label.as_str()) {
                *label = to.clone();
            }
        };
        for e in self.verdicts.values_mut() {
            for p in &mut e.pairs {
                remap(&mut p.cmd1.0);
                remap(&mut p.cmd2.0);
            }
        }
        for e in self.triples.values_mut() {
            for p in &mut e.pairs {
                remap(&mut p.cmd1.0);
                remap(&mut p.cmd2.0);
            }
        }
        self.states.for_each_mut(|s| {
            for c in s.model.cmds.iter_mut() {
                remap(&mut c.summary.label.0);
            }
        });
        self.triple_states.for_each_mut(|s| {
            for c in s.model.model.cmds.iter_mut() {
                remap(&mut c.summary.label.0);
            }
        });
    }

    /// Evicts every verdict entry and retained solver involving one of the
    /// named transactions. Returns the number of verdict entries evicted.
    ///
    /// This is the coarse, name-keyed form of invalidation — useful when
    /// the caller knows which transactions changed but no longer has the
    /// program they belonged to. The repair driver prefers the precise
    /// [`VerdictCache::sweep`], which keeps entries whose fingerprints
    /// survived the step. Content-addressed misses make both optional for
    /// soundness — they bound memory and keep [`CacheStats`] honest.
    pub fn invalidate_txns(&mut self, txns: &BTreeSet<String>) -> usize {
        let before = self.verdicts.len() + self.triples.len();
        self.verdicts
            .retain(|_, e| !txns.contains(&e.txn1) && !txns.contains(&e.txn2));
        self.states
            .retain(|_, s| !txns.contains(&s.txns.0) && !txns.contains(&s.txns.1));
        self.triples
            .retain(|_, e| e.txns.iter().all(|t| !txns.contains(t)));
        self.triple_states
            .retain(|_, s| s.txns.iter().all(|t| !txns.contains(t)));
        let evicted = before - self.verdicts.len() - self.triples.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// Precise, fingerprint-checked eviction: evicts a verdict entry (or
    /// retained solver) involving one of the named transactions **only if
    /// that transaction's summary fingerprint actually changed** — i.e. the
    /// name is absent from `after`, or present with a different
    /// fingerprint. A pure relabeling leaves every fingerprint intact, so
    /// (unlike the coarse [`VerdictCache::invalidate_txns`]) this keeps the
    /// warm entries the rename map already composes lookups through, and a
    /// warm re-detection after a rename-only step equals a cold oracle
    /// without re-solving anything. Returns the number of verdict entries
    /// evicted.
    pub fn invalidate_txns_changed(&mut self, txns: &BTreeSet<String>, after: &Program) -> usize {
        // Fingerprints the post-edit program assigns to each txn name; a
        // dirtied name keeps its entries only if its fingerprint survived.
        let after_fps: HashMap<String, u64> = summarize_program(after)
            .iter()
            .map(|t| (t.name.clone(), txn_fingerprint(t)))
            .collect();
        let changed = |name: &str, fp: u64| {
            txns.contains(name) && after_fps.get(name) != Some(&fp)
        };
        let before = self.verdicts.len() + self.triples.len();
        self.verdicts
            .retain(|k, e| !changed(&e.txn1, k.0) && !changed(&e.txn2, k.1));
        self.states
            .retain(|k, s| !changed(&s.txns.0, k.0) && !changed(&s.txns.1, k.1));
        self.triples.retain(|k, e| {
            let fps = [k.0, k.1, k.2];
            e.txns.iter().zip(fps).all(|(t, fp)| !changed(t, fp))
        });
        self.triple_states.retain(|k, s| {
            let fps = [k.0, k.1, k.2];
            s.txns.iter().zip(fps).all(|(t, fp)| !changed(t, fp))
        });
        let evicted = before - self.verdicts.len() - self.triples.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// **Resets** liveness to exactly `program` and garbage-collects every
    /// verdict and retained solver whose fingerprints do not occur in it.
    ///
    /// This is the explicit between-runs sweep of a multi-run cache: the
    /// per-pass sweep ([`VerdictCache::sweep_live`]) only ever checks
    /// against the *union* of programs seen — so a sweep over benchmark B
    /// never strands or prematurely drops benchmark A's warm entries — and
    /// it is this call that a session uses to bound memory once a run's
    /// entries are genuinely dead. An entry the sweep keeps is guaranteed
    /// to hit again on the next detection pass over `program` (its
    /// transactions' summaries are unchanged), so sweeping never converts a
    /// would-be hit into a re-solve. Returns the number of verdict entries
    /// evicted.
    pub fn sweep(&mut self, program: &Program) -> usize {
        self.session_live = summarize_program(program)
            .iter()
            .map(txn_fingerprint)
            .collect();
        self.retain_session_live()
    }

    /// The per-pass sweep: folds the pass's live transaction fingerprints
    /// into the session's liveness union, then garbage-collects entries
    /// outside the union. [`crate::detect_anomalies_cached`] and the
    /// [`crate::DetectionEngine`] call this at the start of every pass with
    /// the fingerprints they compute anyway. Within a single-program
    /// lifetime this degenerates to the precise per-program sweep; across a
    /// session it keeps warm entries of *every* program seen alive (bound
    /// memory with the explicit [`VerdictCache::sweep`]).
    pub(crate) fn sweep_live(&mut self, fps: &[u64]) -> usize {
        self.session_live.extend(fps.iter().copied());
        self.retain_session_live()
    }

    /// **Resets** liveness to exactly the given fingerprint set — the
    /// corpus-driver variant of [`VerdictCache::sweep`]: a batch run over
    /// many programs bounds memory to the whole corpus at once, so no
    /// program's pass strands another's warm entries. Returns the number
    /// of verdict entries evicted.
    pub(crate) fn sweep_fps(&mut self, fps: BTreeSet<u64>) -> usize {
        self.session_live = fps;
        self.retain_session_live()
    }

    fn retain_session_live(&mut self) -> usize {
        let live = std::mem::take(&mut self.session_live);
        let before = self.verdicts.len() + self.triples.len();
        self.verdicts
            .retain(|k, _| live.contains(&k.0) && live.contains(&k.1));
        self.states
            .retain(|k, _| live.contains(&k.0) && live.contains(&k.1));
        self.triples
            .retain(|k, _| live.contains(&k.0) && live.contains(&k.1) && live.contains(&k.2));
        self.triple_states
            .retain(|k, _| live.contains(&k.0) && live.contains(&k.1) && live.contains(&k.2));
        self.session_live = live;
        let evicted = before - self.verdicts.len() - self.triples.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// Looks up the cached verdicts for an ordered pair (already in the
    /// current label language — see [`VerdictCache::record_renames`]).
    /// Bumps hit/miss statistics.
    pub(crate) fn lookup(
        &mut self,
        fp1: u64,
        fp2: u64,
        symmetric: bool,
        level: ConsistencyLevel,
    ) -> Option<Vec<AccessPair>> {
        self.stats.lookups += 1;
        // Cross-run accounting engages from the second run onwards: only
        // then can a lookup possibly be served by an earlier run's entry.
        let cross = self.run >= 2;
        if cross {
            self.stats.cross_run_lookups += 1;
        }
        match self.verdicts.get(&(fp1, fp2, symmetric, level)) {
            Some(e) => {
                self.stats.hits += 1;
                if cross && e.run < self.run {
                    self.stats.cross_run_hits += 1;
                }
                Some(e.pairs.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts the raw verdicts of one ordered-pair analysis.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &mut self,
        fp1: u64,
        fp2: u64,
        symmetric: bool,
        level: ConsistencyLevel,
        t1: &TxnSummary,
        t2: &TxnSummary,
        pairs: Vec<AccessPair>,
        proofs: Vec<Vec<u8>>,
    ) {
        self.verdicts.insert(
            (fp1, fp2, symmetric, level),
            VerdictEntry {
                txn1: t1.name.clone(),
                txn2: t2.name.clone(),
                run: self.run,
                pairs,
                proofs,
            },
        );
    }

    /// Looks up the cached verdicts for a transaction triple under its
    /// canonical key (fingerprints sorted — see [`TripleVerdictKey`]).
    /// Bumps the triple hit/miss statistics and, past the first run
    /// boundary, the shared cross-run counters.
    pub(crate) fn lookup_triple(&mut self, key: TripleVerdictKey) -> Option<Vec<AccessPair>> {
        self.stats.triple_lookups += 1;
        let cross = self.run >= 2;
        if cross {
            self.stats.cross_run_lookups += 1;
        }
        match self.triples.get(&key) {
            Some(e) => {
                self.stats.triple_hits += 1;
                if cross && e.run < self.run {
                    self.stats.cross_run_hits += 1;
                }
                Some(e.pairs.clone())
            }
            None => {
                self.stats.triple_misses += 1;
                None
            }
        }
    }

    /// Inserts the raw verdicts of one triple analysis.
    pub(crate) fn insert_triple(
        &mut self,
        key: TripleVerdictKey,
        txns: [&TxnSummary; 3],
        pairs: Vec<AccessPair>,
        proofs: Vec<Vec<u8>>,
    ) {
        self.triples.insert(
            key,
            TripleEntry {
                txns: [
                    txns[0].name.clone(),
                    txns[1].name.clone(),
                    txns[2].name.clone(),
                ],
                run: self.run,
                pairs,
                proofs,
            },
        );
    }

    /// Serializes every pair and triple verdict entry into the
    /// `verdict_cache.v1` byte format (see [`persist`]); entries are
    /// written in sorted key order so equal caches produce equal bytes.
    /// Retained solvers are transient and not persisted. Returns the
    /// number of entries written.
    pub(crate) fn save_entries(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(persist::MAGIC);
        persist::put_u32(out, persist::ENCODER_REVISION);
        let mut pair_keys: Vec<&VerdictKey> = self.verdicts.keys().collect();
        pair_keys.sort();
        persist::put_u64(out, pair_keys.len() as u64);
        for k in &pair_keys {
            let e = &self.verdicts[*k];
            persist::put_u64(out, k.0);
            persist::put_u64(out, k.1);
            out.push(u8::from(k.2));
            out.push(k.3.index() as u8);
            persist::put_str(out, &e.txn1);
            persist::put_str(out, &e.txn2);
            persist::put_pairs(out, &e.pairs);
            persist::put_blobs(out, &e.proofs);
        }
        let mut triple_keys: Vec<&TripleVerdictKey> = self.triples.keys().collect();
        triple_keys.sort();
        persist::put_u64(out, triple_keys.len() as u64);
        for k in &triple_keys {
            let e = &self.triples[*k];
            persist::put_u64(out, k.0);
            persist::put_u64(out, k.1);
            persist::put_u64(out, k.2);
            out.push(k.3.index() as u8);
            for t in &e.txns {
                persist::put_str(out, t);
            }
            persist::put_pairs(out, &e.pairs);
            persist::put_blobs(out, &e.proofs);
        }
        pair_keys.len() + triple_keys.len()
    }

    /// Reconstructs a cache from [`VerdictCache::save_entries`] bytes.
    /// Every entry loads into run 0, and the liveness union is seeded with
    /// every fingerprint occurring in a key — so a later pass over *any*
    /// of the programs the entries came from answers warm instead of
    /// sweeping the rest away first.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic, an
    /// encoder-revision mismatch, an unknown tag, or a truncated buffer.
    pub(crate) fn load_entries(bytes: &[u8]) -> std::io::Result<VerdictCache> {
        let mut r = persist::Reader::new(bytes);
        r.expect_magic()?;
        r.expect_revision()?;
        let mut cache = VerdictCache::new();
        let n_pairs = r.u64()?;
        for _ in 0..n_pairs {
            let fp1 = r.u64()?;
            let fp2 = r.u64()?;
            let symmetric = r.u8()? != 0;
            let level = ConsistencyLevel::from_index(r.u8()? as usize)
                .ok_or_else(|| persist::bad("unknown consistency-level tag"))?;
            let txn1 = r.string()?;
            let txn2 = r.string()?;
            let pairs = r.pairs()?;
            let proofs = r.blobs()?;
            cache.verdicts.insert(
                (fp1, fp2, symmetric, level),
                VerdictEntry {
                    txn1,
                    txn2,
                    run: 0,
                    pairs,
                    proofs,
                },
            );
            cache.session_live.extend([fp1, fp2]);
        }
        let n_triples = r.u64()?;
        for _ in 0..n_triples {
            let fp1 = r.u64()?;
            let fp2 = r.u64()?;
            let fp3 = r.u64()?;
            let level = ConsistencyLevel::from_index(r.u8()? as usize)
                .ok_or_else(|| persist::bad("unknown consistency-level tag"))?;
            let txns = [r.string()?, r.string()?, r.string()?];
            let pairs = r.pairs()?;
            let proofs = r.blobs()?;
            cache.triples.insert(
                (fp1, fp2, fp3, level),
                TripleEntry {
                    txns,
                    run: 0,
                    pairs,
                    proofs,
                },
            );
            cache.session_live.extend([fp1, fp2, fp3]);
        }
        Ok(cache)
    }

    /// True when a pair verdict is cached under `key`. Unlike
    /// [`VerdictCache::lookup`] this is a pure probe: no statistics are
    /// bumped — the corpus planner uses it to dedup dirty pairs across a
    /// whole corpus without inflating the per-program hit accounting.
    pub(crate) fn contains_pair(&self, key: &VerdictKey) -> bool {
        self.verdicts.contains_key(key)
    }

    /// True when a triple verdict is cached under `key` (pure probe, no
    /// statistics — see [`VerdictCache::contains_pair`]).
    pub(crate) fn contains_triple(&self, key: &TripleVerdictKey) -> bool {
        self.triples.contains_key(key)
    }

    /// Every pair entry, sorted by key — the deterministic iteration order
    /// the sharded store encodes records in.
    pub(crate) fn pair_entries(&self) -> Vec<(&VerdictKey, &VerdictEntry)> {
        let mut out: Vec<_> = self.verdicts.iter().collect();
        out.sort_by_key(|(k, _)| **k);
        out
    }

    /// Every triple entry, sorted by key (see
    /// [`VerdictCache::pair_entries`]).
    pub(crate) fn triple_entries(&self) -> Vec<(&TripleVerdictKey, &TripleEntry)> {
        let mut out: Vec<_> = self.triples.iter().collect();
        out.sort_by_key(|(k, _)| **k);
        out
    }

    /// Installs a pair entry loaded from a persistent store, seeding the
    /// liveness union with its fingerprints (the same contract as
    /// [`VerdictCache::load_entries`]).
    pub(crate) fn absorb_pair_entry(&mut self, key: VerdictKey, entry: VerdictEntry) {
        self.session_live.extend([key.0, key.1]);
        self.verdicts.insert(key, entry);
    }

    /// Installs a triple entry loaded from a persistent store (see
    /// [`VerdictCache::absorb_pair_entry`]).
    pub(crate) fn absorb_triple_entry(&mut self, key: TripleVerdictKey, entry: TripleEntry) {
        self.session_live.extend([key.0, key.1, key.2]);
        self.triples.insert(key, entry);
    }

    /// Every proof certificate blob stored in the cache — pair entries
    /// first, then triple entries, each section in sorted key order, so
    /// the sequence is deterministic across runs and thread counts.
    pub fn proof_blobs(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (_, e) in self.pair_entries() {
            out.extend(e.proofs.iter().cloned());
        }
        for (_, e) in self.triple_entries() {
            out.extend(e.proofs.iter().cloned());
        }
        out
    }

    /// One audit record per cached verdict, pair entries first, then
    /// triple entries, each section in sorted key order — the raw
    /// material of the per-benchmark anomaly reports.
    pub fn audits(&self) -> Vec<VerdictAudit> {
        let mut out = Vec::new();
        for (k, e) in self.pair_entries() {
            out.push(VerdictAudit {
                txns: vec![e.txn1.clone(), e.txn2.clone()],
                level: k.3,
                anomalies: e.pairs.len(),
                proofs: e.proofs.clone(),
            });
        }
        for (k, e) in self.triple_entries() {
            out.push(VerdictAudit {
                txns: e.txns.to_vec(),
                level: k.3,
                anomalies: e.pairs.len(),
                proofs: e.proofs.clone(),
            });
        }
        out
    }
}

/// One auditable verdict of a session's cache: the transactions, the
/// consistency level it was decided under, the anomaly count, and the
/// proof certificates captured for its UNSAT queries (empty when proof
/// capture was off).
#[derive(Debug, Clone)]
pub struct VerdictAudit {
    /// Transaction names — two for a pair verdict, three for a triple.
    pub txns: Vec<String>,
    /// Consistency level the verdict was decided under.
    pub level: ConsistencyLevel,
    /// Raw anomalous access pairs this verdict found.
    pub anomalies: usize,
    /// Proof certificate blobs of the verdict's UNSAT queries.
    pub proofs: Vec<Vec<u8>>,
}

/// The `verdict_cache.v1` on-disk byte format: a magic header, the encoder
/// revision, then the pair entries, then the triple entries, each section
/// length-prefixed.
/// Every integer is little-endian; strings are UTF-8 with a `u32` length
/// prefix; string sets are a `u32` count followed by the strings in set
/// order. No external dependency — the format is a few dozen lines of
/// plain byte plumbing. The sharded `verdict_cache.v2` store
/// ([`crate::corpus`]) reuses these primitives for its per-record
/// payloads, so one entry encoding serves both formats.
pub(crate) mod persist {
    use std::collections::BTreeSet;
    use std::io;

    use crate::detect::{AccessPair, AnomalyKind};

    /// Magic + version header (`v1`).
    pub(crate) const MAGIC: &[u8; 8] = b"ATRVC\x01\0\0";

    /// Revision of the *encoder* that produced the file, written right
    /// after the magic. The format version (`v1`, in the magic) names the
    /// byte layout; the encoder revision names the semantics of what the
    /// verdicts *mean* — bump it whenever the fingerprint function, the
    /// violation templates, or the anomaly vocabulary changes, so a cache
    /// persisted by an older build is refused instead of silently trusted
    /// (stale verdicts would bypass re-detection — unless the record
    /// carries proof certificates that still check, in which case the
    /// sharded store salvages it; see `corpus::read_shard`). The value is
    /// high-entropy on purpose: pre-revision files carry a small entry
    /// count in these bytes, which can never collide with it.
    ///
    /// `0xA750_0002`: verdict entries gained an embedded proof-blob
    /// section.
    pub(crate) const ENCODER_REVISION: u32 = 0xA750_0002;

    pub(crate) fn bad(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("verdict_cache.v1: {msg}"))
    }

    pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    fn put_set(out: &mut Vec<u8>, set: &BTreeSet<String>) {
        out.extend_from_slice(&(set.len() as u32).to_le_bytes());
        for s in set {
            put_str(out, s);
        }
    }

    pub(crate) fn put_pairs(out: &mut Vec<u8>, pairs: &[AccessPair]) {
        put_u64(out, pairs.len() as u64);
        for p in pairs {
            put_str(out, &p.cmd1.0);
            put_set(out, &p.fields1);
            put_str(out, &p.cmd2.0);
            put_set(out, &p.fields2);
            put_str(out, &p.txn1);
            put_str(out, &p.txn2);
            put_set(out, &p.witnesses);
            out.push(p.kind.tag());
        }
    }

    /// Proof certificate blobs: a `u32` count, then each blob as a `u32`
    /// length prefix plus its bytes (the blob itself is an opaque
    /// `atropos_proof` certificate, checksummed internally).
    pub(crate) fn put_blobs(out: &mut Vec<u8>, blobs: &[Vec<u8>]) {
        put_u32(out, blobs.len() as u32);
        for b in blobs {
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
    }

    pub(crate) struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
            Reader { bytes, pos: 0 }
        }

        fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
            let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
            let Some(end) = end else {
                return Err(bad(&format!(
                    "truncated: need {n} more bytes at offset {}, file ends after {} \
                     (clean EOF inside a length-prefixed record)",
                    self.pos,
                    self.bytes.len()
                )));
            };
            let s = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        pub(crate) fn expect_magic(&mut self) -> io::Result<()> {
            // An empty file is the common crash-before-first-write case;
            // name it instead of reporting a generic truncation.
            if self.bytes.is_empty() {
                return Err(bad("empty file (zero bytes; was the cache ever written?)"));
            }
            if self.take(MAGIC.len())? != MAGIC {
                return Err(bad("bad magic (not a verdict cache, or a future version)"));
            }
            Ok(())
        }

        pub(crate) fn expect_revision(&mut self) -> io::Result<()> {
            let got = self.u32()?;
            if got != ENCODER_REVISION {
                return Err(bad(&format!(
                    "encoder revision mismatch: file was written by encoder {got:#010x}, \
                     this build expects {ENCODER_REVISION:#010x} — the cached verdicts may \
                     not mean what this build thinks; delete the cache file and regenerate it"
                )));
            }
            Ok(())
        }

        pub(crate) fn u8(&mut self) -> io::Result<u8> {
            Ok(self.take(1)?[0])
        }

        pub(crate) fn u64(&mut self) -> io::Result<u64> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
        }

        pub(crate) fn u32(&mut self) -> io::Result<u32> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
        }

        pub(crate) fn string(&mut self) -> io::Result<String> {
            let len = self.u32()? as usize;
            let s = self.take(len)?;
            String::from_utf8(s.to_vec()).map_err(|_| bad("non-UTF-8 string"))
        }

        fn set(&mut self) -> io::Result<BTreeSet<String>> {
            let n = self.u32()? as usize;
            let mut out = BTreeSet::new();
            for _ in 0..n {
                out.insert(self.string()?);
            }
            Ok(out)
        }

        /// Smallest possible encoded [`AccessPair`]: seven empty
        /// strings/sets (4 length bytes each) plus the kind tag — bounds
        /// how many entries a length prefix can honestly promise.
        const MIN_ENCODED_PAIR: usize = 29;

        pub(crate) fn pairs(&mut self) -> io::Result<Vec<AccessPair>> {
            let n = self.u64()? as usize;
            // A length prefix can't promise more entries than bytes left —
            // checked against the minimum encoding so a garbage count in a
            // corrupt file fails here instead of sizing a huge allocation.
            if n > self.bytes.len().saturating_sub(self.pos) / Self::MIN_ENCODED_PAIR {
                return Err(bad("truncated"));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(AccessPair {
                    cmd1: atropos_dsl::CmdLabel(self.string()?),
                    fields1: self.set()?,
                    cmd2: atropos_dsl::CmdLabel(self.string()?),
                    fields2: self.set()?,
                    txn1: self.string()?,
                    txn2: self.string()?,
                    witnesses: self.set()?,
                    kind: AnomalyKind::from_tag(self.u8()?)
                        .ok_or_else(|| bad("unknown anomaly-kind tag"))?,
                });
            }
            Ok(out)
        }

        pub(crate) fn blobs(&mut self) -> io::Result<Vec<Vec<u8>>> {
            let n = self.u32()? as usize;
            // Each promised blob costs at least its 4-byte length prefix.
            if n > self.bytes.len().saturating_sub(self.pos) / 4 {
                return Err(bad("truncated"));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let len = self.u32()? as usize;
                out.push(self.take(len)?.to_vec());
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::summarize_program;
    use atropos_dsl::parse;

    fn summaries(src: &str) -> Vec<TxnSummary> {
        summarize_program(&parse(src).unwrap())
    }

    const COUNTER: &str = "schema T { id: int key, v: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }";

    #[test]
    fn fingerprint_is_deterministic_and_label_blind() {
        let a = summaries(COUNTER);
        let b = summaries(COUNTER);
        assert_eq!(txn_fingerprint(&a[0]), txn_fingerprint(&b[0]));
        // Relabeling @R/@W leaves the fingerprint unchanged…
        let relabeled = summaries(&COUNTER.replace("@R", "@R9").replace("@W", "@W9"));
        assert_eq!(txn_fingerprint(&a[0]), txn_fingerprint(&relabeled[0]));
        // …while touching the key spec / access set changes it.
        let scanned = summaries(&COUNTER.replace("select v from T where id = k", "select v from T"));
        assert_ne!(txn_fingerprint(&a[0]), txn_fingerprint(&scanned[0]));
    }

    #[test]
    fn renames_apply_to_cached_pairs_and_compose() {
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        let pair = AccessPair {
            cmd1: "R".into(),
            fields1: BTreeSet::from(["v".to_owned()]),
            cmd2: "W".into(),
            fields2: BTreeSet::from(["v".to_owned()]),
            txn1: t.name.clone(),
            txn2: t.name.clone(),
            witnesses: BTreeSet::new(),
            kind: crate::AnomalyKind::LostUpdate,
        };
        cache.insert(fp, fp, true, ConsistencyLevel::EventualConsistency, t, t, vec![pair], vec![]);
        cache.record_renames(&BTreeMap::from([("R".to_owned(), "R2".to_owned())]));
        cache.record_renames(&BTreeMap::from([("R2".to_owned(), "R3".to_owned())]));
        let got = cache
            .lookup(fp, fp, true, ConsistencyLevel::EventualConsistency)
            .unwrap();
        assert_eq!(got[0].cmd1.0, "R3");
        assert_eq!(got[0].cmd2.0, "W");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn a_swap_batch_renames_simultaneously() {
        // One step that exchanges two summary-identical commands' labels
        // reports {R → W, W → R}; sequential application would corrupt it.
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        let pair = AccessPair {
            cmd1: "R".into(),
            fields1: BTreeSet::new(),
            cmd2: "W".into(),
            fields2: BTreeSet::new(),
            txn1: t.name.clone(),
            txn2: t.name.clone(),
            witnesses: BTreeSet::new(),
            kind: crate::AnomalyKind::LostUpdate,
        };
        cache.insert(fp, fp, true, ConsistencyLevel::EventualConsistency, t, t, vec![pair], vec![]);
        cache.record_renames(&BTreeMap::from([
            ("R".to_owned(), "W".to_owned()),
            ("W".to_owned(), "R".to_owned()),
        ]));
        let got = cache
            .lookup(fp, fp, true, ConsistencyLevel::EventualConsistency)
            .unwrap();
        assert_eq!(got[0].cmd1.0, "W");
        assert_eq!(got[0].cmd2.0, "R");
    }

    #[test]
    fn renames_reach_retained_pair_models() {
        // A retained state re-analysed after a pure relabeling must emit
        // the *current* labels, not the ones it was grounded with.
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        cache.states().store((fp, fp), PairState::new(t, t));
        cache.record_renames(&BTreeMap::from([("R".to_owned(), "R9".to_owned())]));
        let state = cache.states().take((fp, fp)).expect("retained");
        let labels: Vec<&str> = state
            .model
            .cmds
            .iter()
            .map(|c| c.summary.label.0.as_str())
            .collect();
        assert_eq!(labels, vec!["R9", "W", "R9", "W"]);
    }

    /// Satellite regression for multi-run cache lifetimes: a detection pass
    /// over program B must not strand or prematurely drop warm entries of a
    /// previously seen program A — liveness is the union of programs seen —
    /// while the explicit [`VerdictCache::sweep`] resets liveness to one
    /// program and evicts the rest.
    #[test]
    fn per_pass_sweep_keeps_warm_entries_of_earlier_runs() {
        use crate::{detect_anomalies_cached, ConsistencyLevel};
        let prog_a = atropos_dsl::parse(COUNTER).unwrap();
        let prog_b = atropos_dsl::parse(
            "schema U { id: int key, n: int }
             txn touch(k: int) {
                 @T update U set n = 1 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let ec = ConsistencyLevel::EventualConsistency;
        let mut cache = VerdictCache::new();

        cache.advance_run();
        let (a1, _) = detect_anomalies_cached(&prog_a, ec, &mut cache);
        // A different program's pass must not evict A's entries…
        cache.advance_run();
        detect_anomalies_cached(&prog_b, ec, &mut cache);
        assert_eq!(cache.stats().invalidated, 0, "{:?}", cache.stats());
        // …so returning to A answers every pair warm, across two runs.
        cache.advance_run();
        let before = cache.stats();
        let (a2, s) = detect_anomalies_cached(&prog_a, ec, &mut cache);
        assert_eq!(a2, a1);
        assert_eq!(s.queries, 0, "warm re-run must not touch a solver");
        let delta = cache.stats().since(&before);
        assert_eq!(delta.misses, 0, "premature drop: {delta:?}");
        assert!(delta.cross_run_hits > 0, "{delta:?}");
        assert!(cache.stats().cross_run_hit_ratio() > 0.0);

        // The explicit between-runs sweep resets liveness to one program:
        // A's entries go, B's stay warm.
        let evicted = cache.sweep(&prog_b);
        assert!(evicted > 0);
        let before = cache.stats();
        detect_anomalies_cached(&prog_b, ec, &mut cache);
        assert_eq!(cache.stats().since(&before).misses, 0, "B stayed warm");
        let before = cache.stats();
        detect_anomalies_cached(&prog_a, ec, &mut cache);
        assert!(cache.stats().since(&before).misses > 0, "A was swept");
    }

    #[test]
    fn sharded_state_map_takes_and_stores_through_shared_refs() {
        let ts = summaries(COUNTER);
        let t = &ts[0];
        let map = ShardedStateMap::new();
        assert!(map.take((1, 2)).is_none());
        map.store((1, 2), PairState::new(t, t));
        map.store((3, 4), PairState::new(t, t));
        // Concurrent take/store from scoped workers — the engine's pattern.
        std::thread::scope(|scope| {
            let h1 = scope.spawn(|| map.take((1, 2)).is_some());
            let h2 = scope.spawn(|| map.take((3, 4)).is_some());
            assert!(h1.join().unwrap());
            assert!(h2.join().unwrap());
        });
        assert!(map.take((1, 2)).is_none());
    }

    /// Satellite pin: with zero cross-run lookups the ratio is *defined*
    /// as 0.0, never NaN — `repair_stats.csv` renders it with `{:.2}`, so
    /// a NaN here would print literally into the artifact.
    #[test]
    fn cross_run_hit_ratio_is_zero_not_nan_without_cross_run_lookups() {
        let fresh = CacheStats::default();
        assert_eq!(fresh.cross_run_lookups, 0);
        assert!(!fresh.cross_run_hit_ratio().is_nan());
        assert_eq!(fresh.cross_run_hit_ratio(), 0.0);
        // Same for the plain hit ratio, and for a cache that did work but
        // never crossed a run boundary.
        assert_eq!(fresh.hit_ratio(), 0.0);
        let mut cache = VerdictCache::new();
        let ts = summaries(COUNTER);
        let fp = txn_fingerprint(&ts[0]);
        cache.lookup(fp, fp, true, ConsistencyLevel::EventualConsistency);
        assert!(cache.stats().lookups > 0);
        assert_eq!(cache.stats().cross_run_hit_ratio(), 0.0);
        assert!(format!("{:.2}", cache.stats().cross_run_hit_ratio()) == "0.00");
    }

    /// Satellite regression: the precise invalidation keeps entries whose
    /// fingerprints survived the edit (a pure relabeling), evicts entries
    /// whose fingerprints changed, and composes with the rename map so a
    /// warm re-detection equals a cold oracle without re-solving.
    #[test]
    fn precise_invalidation_keeps_rename_only_entries() {
        use crate::detect_anomalies_cached;
        let ec = ConsistencyLevel::EventualConsistency;
        let before = parse(COUNTER).unwrap();
        let renamed = parse(&COUNTER.replace("@R", "@Rx").replace("@W", "@Wx")).unwrap();

        let mut cache = VerdictCache::new();
        let (cold, _) = detect_anomalies_cached(&before, ec, &mut cache);
        assert!(!cold.is_empty());
        assert_eq!(cache.len(), 1, "the one ordered self-pair cached");

        // A rename-only step: the rule reports the relabeling and names the
        // txn dirty, but no fingerprint changed — nothing may be evicted.
        cache.record_renames(&BTreeMap::from([
            ("R".to_owned(), "Rx".to_owned()),
            ("W".to_owned(), "Wx".to_owned()),
        ]));
        let dirty = BTreeSet::from(["bump".to_owned()]);
        assert_eq!(cache.invalidate_txns_changed(&dirty, &renamed), 0);
        assert_eq!(cache.len(), 1, "rename-only edit evicted warm entries");

        // Warm ≡ cold on the renamed program, with zero solver work.
        let before_stats = cache.stats();
        let (warm, stats) = detect_anomalies_cached(&renamed, ec, &mut cache);
        assert_eq!(stats.queries, 0, "warm pass touched a solver");
        assert_eq!(cache.stats().since(&before_stats).misses, 0);
        let (cold2, _) = detect_anomalies_cached(&renamed, ec, &mut VerdictCache::new());
        assert_eq!(format!("{warm:?}"), format!("{cold2:?}"));

        // A summary-changing edit to the same txn *is* evicted — the
        // precise form degenerates to the coarse one when work changed.
        let widened = parse(&COUNTER.replace("select v from T where id = k", "select v from T"))
            .unwrap();
        assert_eq!(cache.invalidate_txns_changed(&dirty, &widened), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn invalidation_evicts_by_transaction_name() {
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        cache.insert(fp, fp, true, ConsistencyLevel::EventualConsistency, t, t, vec![], vec![]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_txns(&BTreeSet::from(["other".to_owned()])), 0);
        assert_eq!(cache.invalidate_txns(&BTreeSet::from(["bump".to_owned()])), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
        assert!(cache
            .lookup(fp, fp, true, ConsistencyLevel::EventualConsistency)
            .is_none());
    }

    /// The 3-hop relay chain (the `Relay` workload's shape), used by the
    /// triple-eviction tests below.
    const CHAIN: &str = "schema MSG { m_id: int key, m_body: int }
         schema FEED { f_id: int key, f_body: int }
         txn post(m: int, body: int) {
             @W1 update MSG set m_body = body where m_id = m;
             return 0;
         }
         txn relay(m: int, f: int) {
             @R2 x := select m_body from MSG where m_id = m;
             @W2 update FEED set f_body = x.m_body where f_id = f;
             return 0;
         }
         txn timeline(f: int, m: int) {
             @R3 y := select f_body from FEED where f_id = f;
             @R4 z := select m_body from MSG where m_id = m;
             return y.f_body + z.m_body;
         }";

    #[test]
    fn invalidation_evicts_triples_by_any_member_name() {
        let ts = summaries(CHAIN);
        // The canonical triple key sorts fingerprints, so the invalidated
        // transaction can land in any of the key's three slots — name-keyed
        // eviction must reach all of them.
        let mut fps: Vec<(u64, &TxnSummary)> =
            ts.iter().map(|t| (txn_fingerprint(t), t)).collect();
        fps.sort_by_key(|(fp, _)| *fp);
        let key = (fps[0].0, fps[1].0, fps[2].0, ConsistencyLevel::EventualConsistency);
        for victim in ["post", "relay", "timeline"] {
            let mut cache = VerdictCache::new();
            cache.insert_triple(key, [fps[0].1, fps[1].1, fps[2].1], vec![], vec![]);
            assert_eq!(cache.triple_len(), 1);
            assert_eq!(cache.invalidate_txns(&BTreeSet::from(["other".to_owned()])), 0);
            assert_eq!(
                cache.invalidate_txns(&BTreeSet::from([victim.to_owned()])),
                1,
                "stale triple verdict survived invalidating `{victim}`"
            );
            assert_eq!(cache.triple_len(), 0);
            assert!(cache.lookup_triple(key).is_none());
        }
    }

    /// A chain-rule edit dirties all three chain transactions; name-keyed
    /// invalidation must evict their stale triple verdicts so re-detection
    /// over the rewritten program equals a cold oracle (a stale hit here
    /// would silently replay pre-edit verdicts).
    #[test]
    fn chain_rule_edit_evicts_stale_triple_verdicts() {
        use crate::engine::{detect_with_cache, DetectMode};
        let ec = ConsistencyLevel::EventualConsistency;
        let before = parse(CHAIN).unwrap();
        // The relay materialization's output shape: the derived field lives
        // on the origin row, written and read under `.T` labels.
        let after = parse(
            "schema MSG { m_id: int key, m_body: int, m_f_body: int }
             schema FEED { f_id: int key, f_body: int }
             txn post(m: int, body: int) {
                 @W1 update MSG set m_body = body where m_id = m;
                 return 0;
             }
             txn relay(m: int, f: int) {
                 @R2 x := select m_body from MSG where m_id = m;
                 @W2.T update MSG set m_f_body = x.m_body where m_id = m;
                 return 0;
             }
             txn timeline(f: int, m: int) {
                 @R3.T y := select m_f_body, m_body from MSG where m_id = m;
                 return y.m_f_body + y.m_body;
             }",
        )
        .unwrap();

        let mut cache = VerdictCache::new();
        let (dirty, _) = detect_with_cache(1, &before, ec, DetectMode::Triples, &mut cache, None, None, false);
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert!(cache.triple_len() > 0);

        let edited = BTreeSet::from(["post", "relay", "timeline"].map(str::to_owned));
        assert!(cache.invalidate_txns(&edited) > 0);
        assert_eq!(cache.triple_len(), 0, "stale triple verdicts survived the edit");

        let (warm, _) = detect_with_cache(1, &after, ec, DetectMode::Triples, &mut cache, None, None, false);
        let (cold, _) =
            detect_with_cache(1, &after, ec, DetectMode::Triples, &mut VerdictCache::new(), None, None, false);
        assert_eq!(warm, cold, "invalidated cache must agree with a cold oracle");
        assert!(warm.is_empty(), "{warm:?}");
    }
}
