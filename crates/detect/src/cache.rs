//! Pair-verdict caching across program edits: the oracle-reuse layer of the
//! near-incremental repair loop.
//!
//! A refactoring step (split / merge / redirect / logging) touches a handful
//! of commands, yet the Fig. 10 driver re-runs the whole anomaly oracle on
//! the mutated program. The [`VerdictCache`] closes that gap one level above
//! the SAT layer: every ordered transaction pair's verdicts ([`AccessPair`]
//! lists) are memoized under a **canonical fingerprint** of the two
//! transactions' command summaries, so re-detection after a step only
//! re-encodes and re-solves the pairs whose fingerprint changed.
//!
//! # The fingerprint
//!
//! [`txn_fingerprint`] hashes everything the two-instance encoding and the
//! violation templates can observe about a transaction: its name and, per
//! command in program order, the kind, schema, read/write field sets, key
//! specification, bound variable, and used variables. Command **labels are
//! deliberately excluded** — a pure relabeling preserves verdicts, and the
//! cache remaps labels in cached [`AccessPair`]s through the rename map the
//! refactoring rules report ([`VerdictCache::record_renames`]). Anything
//! else a rewrite can change (field sets, filters, schemas, command order)
//! lands in the fingerprint, so a stale hit is impossible as long as the
//! fingerprint is *sound*: any mutation that changes a command's access
//! behaviour must change it. That soundness obligation is pinned by the
//! property suite in `crates/detect/tests/fingerprint_prop.rs`, not by the
//! end-to-end tests.
//!
//! # The invalidation contract
//!
//! Soundness never depends on explicit invalidation (a changed pair simply
//! misses), but every refactoring rule still reports the transactions it
//! dirtied so the driver can call [`VerdictCache::invalidate_txns`]: this
//! evicts the stale entries (bounding memory across long repair runs) and
//! keeps the reuse statistics honest. Rules that relabel commands without
//! changing their summaries must report the relabeling via
//! [`VerdictCache::record_renames`] instead.
//!
//! # Solver retention
//!
//! Besides verdicts, the cache retains each pair's [`PairSolver`] (keyed by
//! the fingerprint pair), so a pair that is re-queried — e.g. at another
//! consistency level, or after its verdict entry was evicted while its
//! fingerprint survived — reuses the already-encoded ordering/visibility
//! matrix and every learnt clause instead of re-encoding from scratch.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use atropos_dsl::Program;

use crate::detect::AccessPair;
use crate::encode::{ConsistencyLevel, InstanceModel, PairSolver};
use crate::model::{summarize_program, CmdSummary, KeySpec, TxnSummary};

/// Canonical fingerprint of one transaction's command summaries: the exact
/// information the pair encoding and the violation templates consume.
///
/// Two summaries with equal fingerprints produce identical detection
/// verdicts when paired with equal-fingerprint partners (up to command
/// labels, which are excluded — see the module docs). The fingerprint is a
/// 64-bit hash of a canonical serialization; collisions are possible in
/// principle but vanishingly unlikely at repair-loop cache sizes
/// (tens of entries).
pub fn txn_fingerprint(txn: &TxnSummary) -> u64 {
    let mut h = DefaultHasher::new();
    txn.name.hash(&mut h);
    txn.commands.len().hash(&mut h);
    for c in &txn.commands {
        hash_cmd(c, &mut h);
    }
    h.finish()
}

/// Canonical fingerprint of one command summary (the same detector-visible
/// fields [`txn_fingerprint`] folds per command, label excluded) — the
/// command-granular building block `dirty_between`-style diffs use to name
/// exactly which commands a refactoring step changed.
pub fn cmd_fingerprint(c: &CmdSummary) -> u64 {
    let mut h = DefaultHasher::new();
    hash_cmd(c, &mut h);
    h.finish()
}

fn hash_cmd(c: &CmdSummary, h: &mut impl Hasher) {
    // NOT hashed: c.label — relabelings resolve through the rename map.
    (c.kind as u8).hash(h);
    c.schema.hash(h);
    c.prog_index.hash(h);
    c.reads.hash(h);
    c.writes.hash(h);
    c.bound_var.hash(h);
    c.uses_vars.hash(h);
    match &c.key {
        KeySpec::Keyed { key, constant } => {
            0u8.hash(h);
            key.hash(h);
            constant.hash(h);
        }
        KeySpec::Scan => 1u8.hash(h),
        KeySpec::Fresh => 2u8.hash(h),
    }
}

/// Counters describing how much oracle work a [`VerdictCache`] saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verdict lookups performed (one per ordered pair per detection pass).
    pub lookups: u64,
    /// Lookups answered from the cache without touching a solver.
    pub hits: u64,
    /// Lookups that had to re-analyse the pair.
    pub misses: u64,
    /// Misses that nevertheless reused a retained [`PairSolver`] (and its
    /// encoded clauses and learnt clauses) instead of re-encoding.
    pub solver_reuses: u64,
    /// Entries evicted — by the fingerprint-liveness sweep each
    /// [`crate::detect_anomalies_cached`] pass runs (stranded by program
    /// edits), or by an explicit [`VerdictCache::invalidate_txns`] /
    /// [`VerdictCache::sweep`] call.
    pub invalidated: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }
}

/// Key of one verdict entry: the ordered pair's fingerprints, whether the
/// symmetric (lost-update) template ran for this orientation, and the
/// consistency level queried.
type VerdictKey = (u64, u64, bool, ConsistencyLevel);

#[derive(Debug, Clone)]
struct VerdictEntry {
    txn1: String,
    txn2: String,
    /// Raw `analyse_pair` output for this ordered pair (pre-deduplication).
    pairs: Vec<AccessPair>,
}

/// Retained per-pair analysis state: the grounded two-instance model and,
/// once a query was issued, the incremental solver built on it.
pub(crate) struct PairState {
    pub(crate) model: InstanceModel,
    pub(crate) solver: Option<PairSolver>,
    txns: (String, String),
}

/// A cache of per-pair anomaly verdicts and solvers, keyed by transaction
/// fingerprints. The repair driver owns one per run and threads it through
/// every detection pass via [`crate::detect_anomalies_cached`].
///
/// See the [module docs](self) for the fingerprint and invalidation
/// contracts.
pub struct VerdictCache {
    verdicts: HashMap<VerdictKey, VerdictEntry>,
    states: HashMap<(u64, u64), PairState>,
    stats: CacheStats,
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

impl VerdictCache {
    /// Creates an empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache {
            verdicts: HashMap::new(),
            states: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Cumulative statistics of this cache's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of verdict entries currently cached.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// True when no verdicts are cached.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Records the label renames of one refactoring step that *did not*
    /// change the renamed commands' summaries (a pure relabeling), applying
    /// them **eagerly and simultaneously** to every cached verdict and to
    /// every retained pair model — so a swap batch `{a → b, b → a}` is
    /// exact, and renames across successive steps compose by construction
    /// (`a → b` now, `b → c` later, serves `c`). After this call the cache
    /// speaks only the post-step label language, for hits and for fresh
    /// analyses through retained state alike.
    pub fn record_renames(&mut self, renames: &BTreeMap<String, String>) {
        if renames.is_empty() {
            return;
        }
        let remap = |label: &mut String| {
            if let Some(to) = renames.get(label.as_str()) {
                *label = to.clone();
            }
        };
        for e in self.verdicts.values_mut() {
            for p in &mut e.pairs {
                remap(&mut p.cmd1.0);
                remap(&mut p.cmd2.0);
            }
        }
        for s in self.states.values_mut() {
            for c in s.model.cmds.iter_mut() {
                remap(&mut c.summary.label.0);
            }
        }
    }

    /// Evicts every verdict entry and retained solver involving one of the
    /// named transactions. Returns the number of verdict entries evicted.
    ///
    /// This is the coarse, name-keyed form of invalidation — useful when
    /// the caller knows which transactions changed but no longer has the
    /// program they belonged to. The repair driver prefers the precise
    /// [`VerdictCache::sweep`], which keeps entries whose fingerprints
    /// survived the step. Content-addressed misses make both optional for
    /// soundness — they bound memory and keep [`CacheStats`] honest.
    pub fn invalidate_txns(&mut self, txns: &BTreeSet<String>) -> usize {
        let before = self.verdicts.len();
        self.verdicts
            .retain(|_, e| !txns.contains(&e.txn1) && !txns.contains(&e.txn2));
        self.states
            .retain(|_, s| !txns.contains(&s.txns.0) && !txns.contains(&s.txns.1));
        let evicted = before - self.verdicts.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// Garbage-collects entries made unreachable by a program edit: every
    /// verdict and retained solver whose fingerprints no longer occur in
    /// `program` is dropped. Precise where [`VerdictCache::invalidate_txns`]
    /// is coarse — an entry the sweep keeps is guaranteed to hit again on
    /// the next detection pass over `program` (its transactions' summaries
    /// are unchanged), so sweeping never converts a would-be hit into a
    /// re-solve. Returns the number of verdict entries evicted.
    pub fn sweep(&mut self, program: &Program) -> usize {
        let fps: Vec<u64> = summarize_program(program)
            .iter()
            .map(txn_fingerprint)
            .collect();
        self.sweep_live(&fps)
    }

    /// [`VerdictCache::sweep`] against an already-computed set of live
    /// transaction fingerprints. [`crate::detect_anomalies_cached`] calls
    /// this at the start of every pass with the fingerprints it computes
    /// anyway, so the cache continuously prunes itself to the program under
    /// analysis at no extra summarization cost.
    pub(crate) fn sweep_live(&mut self, fps: &[u64]) -> usize {
        let live: BTreeSet<u64> = fps.iter().copied().collect();
        let before = self.verdicts.len();
        self.verdicts
            .retain(|k, _| live.contains(&k.0) && live.contains(&k.1));
        self.states
            .retain(|k, _| live.contains(&k.0) && live.contains(&k.1));
        let evicted = before - self.verdicts.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// Looks up the cached verdicts for an ordered pair (already in the
    /// current label language — see [`VerdictCache::record_renames`]).
    /// Bumps hit/miss statistics.
    pub(crate) fn lookup(
        &mut self,
        fp1: u64,
        fp2: u64,
        symmetric: bool,
        level: ConsistencyLevel,
    ) -> Option<Vec<AccessPair>> {
        self.stats.lookups += 1;
        match self.verdicts.get(&(fp1, fp2, symmetric, level)) {
            Some(e) => {
                self.stats.hits += 1;
                Some(e.pairs.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts the raw verdicts of one ordered-pair analysis.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &mut self,
        fp1: u64,
        fp2: u64,
        symmetric: bool,
        level: ConsistencyLevel,
        t1: &TxnSummary,
        t2: &TxnSummary,
        pairs: Vec<AccessPair>,
    ) {
        self.verdicts.insert(
            (fp1, fp2, symmetric, level),
            VerdictEntry {
                txn1: t1.name.clone(),
                txn2: t2.name.clone(),
                pairs,
            },
        );
    }

    /// Takes (or builds) the retained analysis state for an ordered pair.
    /// Reusing a retained state skips `InstanceModel` grounding and, when a
    /// solver exists, the whole CNF encoding.
    pub(crate) fn take_state(&mut self, fp1: u64, fp2: u64, t1: &TxnSummary, t2: &TxnSummary) -> PairState {
        match self.states.remove(&(fp1, fp2)) {
            Some(s) => {
                if s.solver.is_some() {
                    self.stats.solver_reuses += 1;
                }
                s
            }
            None => PairState {
                model: InstanceModel::new(t1, t2),
                solver: None,
                txns: (t1.name.clone(), t2.name.clone()),
            },
        }
    }

    /// Returns a pair's analysis state to the cache for later reuse.
    pub(crate) fn store_state(&mut self, fp1: u64, fp2: u64, state: PairState) {
        self.states.insert((fp1, fp2), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::summarize_program;
    use atropos_dsl::parse;

    fn summaries(src: &str) -> Vec<TxnSummary> {
        summarize_program(&parse(src).unwrap())
    }

    const COUNTER: &str = "schema T { id: int key, v: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }";

    #[test]
    fn fingerprint_is_deterministic_and_label_blind() {
        let a = summaries(COUNTER);
        let b = summaries(COUNTER);
        assert_eq!(txn_fingerprint(&a[0]), txn_fingerprint(&b[0]));
        // Relabeling @R/@W leaves the fingerprint unchanged…
        let relabeled = summaries(&COUNTER.replace("@R", "@R9").replace("@W", "@W9"));
        assert_eq!(txn_fingerprint(&a[0]), txn_fingerprint(&relabeled[0]));
        // …while touching the key spec / access set changes it.
        let scanned = summaries(&COUNTER.replace("select v from T where id = k", "select v from T"));
        assert_ne!(txn_fingerprint(&a[0]), txn_fingerprint(&scanned[0]));
    }

    #[test]
    fn renames_apply_to_cached_pairs_and_compose() {
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        let pair = AccessPair {
            cmd1: "R".into(),
            fields1: BTreeSet::from(["v".to_owned()]),
            cmd2: "W".into(),
            fields2: BTreeSet::from(["v".to_owned()]),
            txn1: t.name.clone(),
            txn2: t.name.clone(),
            witnesses: BTreeSet::new(),
            kind: crate::AnomalyKind::LostUpdate,
        };
        cache.insert(fp, fp, true, ConsistencyLevel::EventualConsistency, t, t, vec![pair]);
        cache.record_renames(&BTreeMap::from([("R".to_owned(), "R2".to_owned())]));
        cache.record_renames(&BTreeMap::from([("R2".to_owned(), "R3".to_owned())]));
        let got = cache
            .lookup(fp, fp, true, ConsistencyLevel::EventualConsistency)
            .unwrap();
        assert_eq!(got[0].cmd1.0, "R3");
        assert_eq!(got[0].cmd2.0, "W");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn a_swap_batch_renames_simultaneously() {
        // One step that exchanges two summary-identical commands' labels
        // reports {R → W, W → R}; sequential application would corrupt it.
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        let pair = AccessPair {
            cmd1: "R".into(),
            fields1: BTreeSet::new(),
            cmd2: "W".into(),
            fields2: BTreeSet::new(),
            txn1: t.name.clone(),
            txn2: t.name.clone(),
            witnesses: BTreeSet::new(),
            kind: crate::AnomalyKind::LostUpdate,
        };
        cache.insert(fp, fp, true, ConsistencyLevel::EventualConsistency, t, t, vec![pair]);
        cache.record_renames(&BTreeMap::from([
            ("R".to_owned(), "W".to_owned()),
            ("W".to_owned(), "R".to_owned()),
        ]));
        let got = cache
            .lookup(fp, fp, true, ConsistencyLevel::EventualConsistency)
            .unwrap();
        assert_eq!(got[0].cmd1.0, "W");
        assert_eq!(got[0].cmd2.0, "R");
    }

    #[test]
    fn renames_reach_retained_pair_models() {
        // A retained state re-analysed after a pure relabeling must emit
        // the *current* labels, not the ones it was grounded with.
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        let state = cache.take_state(fp, fp, t, t);
        cache.store_state(fp, fp, state);
        cache.record_renames(&BTreeMap::from([("R".to_owned(), "R9".to_owned())]));
        let state = cache.take_state(fp, fp, t, t);
        let labels: Vec<&str> = state
            .model
            .cmds
            .iter()
            .map(|c| c.summary.label.0.as_str())
            .collect();
        assert_eq!(labels, vec!["R9", "W", "R9", "W"]);
    }

    #[test]
    fn invalidation_evicts_by_transaction_name() {
        let ts = summaries(COUNTER);
        let (fp, t) = (txn_fingerprint(&ts[0]), &ts[0]);
        let mut cache = VerdictCache::new();
        cache.insert(fp, fp, true, ConsistencyLevel::EventualConsistency, t, t, vec![]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_txns(&BTreeSet::from(["other".to_owned()])), 0);
        assert_eq!(cache.invalidate_txns(&BTreeSet::from(["bump".to_owned()])), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
        assert!(cache
            .lookup(fp, fp, true, ConsistencyLevel::EventualConsistency)
            .is_none());
    }
}
