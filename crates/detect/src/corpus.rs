//! Fleet-scale detection: the sharded `verdict_cache.v2` store and the
//! batch corpus service (ROADMAP item 2).
//!
//! # The v2 store
//!
//! The monolithic `verdict_cache.v1` file is a load-all/save-all snapshot:
//! two sessions pointed at the same path clobber each other (last writer
//! wins), and a crash mid-save leaves the truncated file `load_from`
//! rejects. [`CorpusStore`] replaces it with a **directory** of
//! [`SHARD_COUNT`] shard files keyed by fingerprint prefix (the high
//! nibble of the entry's first canonical fingerprint picks the shard):
//!
//! * every shard is a record log — a magic/revision header followed by
//!   length-prefixed records, each carrying an FNV-1a checksum, a
//!   coarse unix-seconds stamp (the eviction clock), and one pair or
//!   triple verdict entry in the v1 entry encoding;
//! * shards are written via sibling tempfile + atomic rename, so a crash
//!   at any point leaves either the old shard or the new one — never a
//!   truncated hybrid;
//! * a per-shard advisory lock file (`shard-NN.lock`, acquired with
//!   `O_EXCL`-style `create_new`) serializes writers: a merge reads the
//!   current shard under the lock, unions its entries in, and rewrites —
//!   so two concurrent sessions **merge instead of clobber** (the union
//!   of their verdicts survives, proven by the concurrency tests);
//! * [`CorpusStore::compact`] rewrites every shard under all locks,
//!   applying an [`EvictionPolicy`] (max age, max entry count —
//!   oldest-stamped entries go first).
//!
//! [`crate::DetectSession::save_to`] and
//! [`crate::DetectSession::load_from`] dispatch on the path: a directory
//! is a v2 store (save = union-merge), a file is the v1 format
//! (unchanged, now written atomically). [`CorpusStore::open`] pointed at
//! an existing v1 *file* transparently migrates it into a store
//! directory at the same path.
//!
//! # The corpus service
//!
//! The paper's detection phase is embarrassingly fingerprint-dedupable
//! across programs: millions of users ship near-identical transaction
//! shapes, so a corpus is mostly repeated fingerprints. [`CorpusService`]
//! (and the underlying [`analyse_corpus`]) exploit this with a **global
//! plan**: summarize and fingerprint every program, dedup the dirty
//! pair/triple keys across the whole corpus, solve each unique key
//! exactly once on one shared [`crate::DetectionEngine`] worker pool,
//! then answer every program's verdicts from the warm store. Per-program
//! verdicts are byte-identical to running each program through
//! [`crate::detect_anomalies_cached`] in isolation (pinned by
//! `tests/corpus_differential.rs` at 1/2/8 threads) — the service only
//! changes how often the solver runs, never what it concludes.

use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

use atropos_dsl::Program;

use crate::cache::{
    persist, txn_fingerprint, PairState, TripleEntry, TripleVerdictKey, VerdictCache,
    VerdictEntry, VerdictKey,
};
use crate::detect::{solve_pair_with_state, AccessPair, DetectStats};
use crate::encode::ConsistencyLevel;
use crate::engine::{
    canonical_trio, detect_with_cache, merge_outcome_stats, publish_pair_state,
    publish_trio_state, publishable_flags, run_pool, DetectMode, DetectionEngine, Outcome,
    WorkerStats,
};
use crate::model::{summarize_program, TxnSummary};
use crate::session::DetectSession;
use crate::triple::{has_candidates, solve_triple_with_state, TripleState};

/// Number of shard files a v2 store spreads its entries over. An entry's
/// shard is the high nibble of its first canonical fingerprint, so the
/// assignment is stable across processes and store generations.
pub const SHARD_COUNT: usize = 16;

/// Magic + version header of one v2 shard file.
const SHARD_MAGIC: &[u8; 8] = b"ATRVC\x02\0\0";

/// How long a writer waits for a shard lock before giving up.
const LOCK_TIMEOUT: Duration = Duration::from_secs(10);

/// Age after which a lock file is presumed abandoned (a crashed holder)
/// and taken over.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(30);

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("verdict_cache.v2: {msg}"))
}

/// FNV-1a 64-bit over `bytes`: the per-record checksum. Chosen over the
/// std hasher because its value is pinned by the algorithm, not by the
/// std implementation — records written by one build verify under any
/// other.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Coarse wall-clock stamp (unix seconds) for new records — the eviction
/// clock, not an ordering primitive.
fn now_secs() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` via a sibling tempfile and an atomic rename,
/// so a crash at any point leaves either the old file or the new one —
/// never a truncation. The temp name carries the pid and a process-local
/// sequence number, so concurrent writers in one or many processes never
/// collide on it.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    if let Err(e) = fs::write(&tmp, bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// The sibling tempfile [`write_atomic`] stages into before renaming over
/// `path` — exposed so the crash-regression test can plant exactly the
/// partial file a writer killed mid-write would leave behind.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp.{}.{seq}", std::process::id()))
}

/// RAII advisory lock on one shard: a `shard-NN.lock` file created with
/// `create_new` (fails if it exists), deleted on drop. Waiters poll; a
/// lock older than [`LOCK_STALE_AFTER`] is presumed abandoned by a
/// crashed holder and removed.
struct ShardLock {
    path: PathBuf,
}

impl ShardLock {
    fn acquire(dir: &Path, shard: usize) -> io::Result<ShardLock> {
        let path = dir.join(format!("shard-{shard:02}.lock"));
        let started = Instant::now();
        loop {
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(_) => return Ok(ShardLock { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale {
                        // Take over an abandoned lock; a racing taker just
                        // loops back to create_new.
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if started.elapsed() > LOCK_TIMEOUT {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("timed out waiting for shard lock {}", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for ShardLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// One decoded store record: a pair or triple verdict entry plus its
/// eviction stamp.
enum StoreEntry {
    Pair(VerdictKey, VerdictEntry),
    Triple(TripleVerdictKey, TripleEntry),
}

/// Canonical, totally ordered identity of a record — the union-merge and
/// shard-write key. Pairs and triples share one keyspace (tag first).
type RecordKey = (u8, u64, u64, u64, u8, u8);

fn record_key(e: &StoreEntry) -> RecordKey {
    match e {
        StoreEntry::Pair((fp1, fp2, symmetric, level), _) => {
            (0, *fp1, *fp2, 0, u8::from(*symmetric), level.index() as u8)
        }
        StoreEntry::Triple((fp1, fp2, fp3, level), _) => {
            (1, *fp1, *fp2, *fp3, 0, level.index() as u8)
        }
    }
}

/// The shard an entry lives in: the high nibble of its first canonical
/// fingerprint.
fn shard_of_fp(fp1: u64) -> usize {
    ((fp1 >> 60) as usize) % SHARD_COUNT
}

/// Whether a record from a revision-stale shard may be trusted anyway: it
/// must be a **clean** verdict (an anomaly list would rest on uncertified
/// SAT witnesses) carrying at least one proof certificate, and every
/// certificate must pass the independent `atropos_proof` checker.
fn entry_is_certified(e: &StoreEntry) -> bool {
    let (pairs, proofs) = match e {
        StoreEntry::Pair(_, entry) => (&entry.pairs, &entry.proofs),
        StoreEntry::Triple(_, entry) => (&entry.pairs, &entry.proofs),
    };
    pairs.is_empty()
        && !proofs.is_empty()
        && proofs
            .iter()
            .all(|b| atropos_proof::check_blob(b).is_ok())
}

fn encode_payload(stamp: u64, e: &StoreEntry) -> Vec<u8> {
    let mut out = Vec::new();
    match e {
        StoreEntry::Pair((fp1, fp2, symmetric, level), entry) => {
            out.push(0u8);
            persist::put_u64(&mut out, stamp);
            persist::put_u64(&mut out, *fp1);
            persist::put_u64(&mut out, *fp2);
            out.push(u8::from(*symmetric));
            out.push(level.index() as u8);
            persist::put_str(&mut out, &entry.txn1);
            persist::put_str(&mut out, &entry.txn2);
            persist::put_pairs(&mut out, &entry.pairs);
            persist::put_blobs(&mut out, &entry.proofs);
        }
        StoreEntry::Triple((fp1, fp2, fp3, level), entry) => {
            out.push(1u8);
            persist::put_u64(&mut out, stamp);
            persist::put_u64(&mut out, *fp1);
            persist::put_u64(&mut out, *fp2);
            persist::put_u64(&mut out, *fp3);
            out.push(level.index() as u8);
            for t in &entry.txns {
                persist::put_str(&mut out, t);
            }
            persist::put_pairs(&mut out, &entry.pairs);
            persist::put_blobs(&mut out, &entry.proofs);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> io::Result<(u64, StoreEntry)> {
    let mut r = persist::Reader::new(payload);
    let tag = r.u8()?;
    let stamp = r.u64()?;
    let entry = match tag {
        0 => {
            let fp1 = r.u64()?;
            let fp2 = r.u64()?;
            let symmetric = r.u8()? != 0;
            let level = ConsistencyLevel::from_index(r.u8()? as usize)
                .ok_or_else(|| bad("unknown consistency-level tag"))?;
            let txn1 = r.string()?;
            let txn2 = r.string()?;
            let pairs = r.pairs()?;
            let proofs = r.blobs()?;
            StoreEntry::Pair(
                (fp1, fp2, symmetric, level),
                VerdictEntry {
                    txn1,
                    txn2,
                    run: 0,
                    pairs,
                    proofs,
                },
            )
        }
        1 => {
            let fp1 = r.u64()?;
            let fp2 = r.u64()?;
            let fp3 = r.u64()?;
            let level = ConsistencyLevel::from_index(r.u8()? as usize)
                .ok_or_else(|| bad("unknown consistency-level tag"))?;
            let txns = [r.string()?, r.string()?, r.string()?];
            let pairs = r.pairs()?;
            let proofs = r.blobs()?;
            StoreEntry::Triple(
                (fp1, fp2, fp3, level),
                TripleEntry {
                    txns,
                    run: 0,
                    pairs,
                    proofs,
                },
            )
        }
        t => return Err(bad(&format!("unknown record tag {t}"))),
    };
    Ok((stamp, entry))
}

/// Which records a [`CorpusStore::compact`] pass drops. The default
/// evicts nothing (compaction then only rewrites shards, dropping
/// duplicate generations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Evict records whose stamp is older than this many seconds.
    pub max_age_secs: Option<u64>,
    /// Keep at most this many records store-wide; oldest stamps evicted
    /// first (ties broken by record key, so the cut is deterministic).
    pub max_entries: Option<usize>,
}

/// What one [`CorpusStore::compact`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records surviving in the rewritten store.
    pub kept: usize,
    /// Records dropped by the eviction policy.
    pub evicted: usize,
}

/// A sharded, concurrently mergeable on-disk verdict store — the
/// `verdict_cache.v2` format (see the [module docs](self) for the
/// layout, locking, and migration story).
pub struct CorpusStore {
    dir: PathBuf,
}

impl CorpusStore {
    /// Opens (creating if necessary) the store directory at `path`. If
    /// `path` is an existing **v1 cache file**, it is transparently
    /// migrated: the v1 entries are re-written as a store directory at
    /// the same path (staged at a sibling, so a crash mid-migration
    /// cannot destroy the original until the store is complete).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a v1 file that fails to parse (corrupt,
    /// stale encoder revision) fails the migration with its original
    /// error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<CorpusStore> {
        let path = path.as_ref();
        if path.is_file() {
            return Self::migrate_v1(path);
        }
        fs::create_dir_all(path)?;
        Ok(CorpusStore {
            dir: path.to_path_buf(),
        })
    }

    /// Migrates a monolithic v1 cache file into a v2 store directory at
    /// the same path.
    fn migrate_v1(path: &Path) -> io::Result<CorpusStore> {
        let bytes = fs::read(path)?;
        let cache = VerdictCache::load_entries(&bytes)?;
        let staged = path.with_extension("v2migrate");
        if staged.exists() {
            fs::remove_dir_all(&staged)?;
        }
        fs::create_dir_all(&staged)?;
        let store = CorpusStore { dir: staged.clone() };
        store.merge_cache_stamped(&cache, now_secs())?;
        // The one non-atomic instant of the migration: the v1 file must
        // vacate the path before the finished store directory renames
        // over it. A crash between the two calls leaves the complete
        // store at the staged sibling; re-opening re-runs the migration.
        fs::remove_file(path)?;
        fs::rename(&staged, path)?;
        Ok(CorpusStore {
            dir: path.to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:02}.v2"))
    }

    /// Reads and validates one shard file into `into` (keyed records,
    /// newest stamp wins). A missing shard is an empty shard. A shard
    /// written by a different encoder revision is not refused wholesale:
    /// it degrades to per-record salvage, keeping exactly the clean
    /// verdicts whose proof certificates still check (see
    /// [`entry_is_certified`]).
    fn read_shard(
        &self,
        shard: usize,
        into: &mut BTreeMap<RecordKey, (u64, StoreEntry)>,
    ) -> io::Result<()> {
        let bytes = match fs::read(self.shard_path(shard)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        if bytes.len() < SHARD_MAGIC.len() + 12 {
            return Err(bad("truncated shard header"));
        }
        if &bytes[..8] != SHARD_MAGIC {
            return Err(bad("bad shard magic (not a v2 shard, or a future version)"));
        }
        let revision = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        // A revision mismatch used to refuse the shard wholesale — a stale
        // verdict means "decided by a build whose templates/fingerprints
        // may differ", and trusting it would bypass re-detection. Proof
        // certificates relax this per record: a **clean** verdict whose
        // refutations all still pass the independent checker is evidence
        // in its own right, so it is salvaged; everything else in the
        // stale shard (dirty verdicts — their SAT witnesses carry no
        // certificate — proofless records, and anything malformed) is
        // dropped and will be re-solved.
        let salvage = revision != persist::ENCODER_REVISION;
        let idx = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let count = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        if idx != shard || count != SHARD_COUNT {
            return Err(bad(&format!(
                "shard header names shard {idx}/{count}, expected {shard}/{SHARD_COUNT}"
            )));
        }
        let mut pos = 20;
        while pos < bytes.len() {
            if bytes.len() - pos < 12 {
                if salvage {
                    break;
                }
                return Err(bad("truncated record header"));
            }
            let len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
            pos += 12;
            if bytes.len() - pos < len {
                if salvage {
                    break;
                }
                return Err(bad("truncated record payload"));
            }
            let payload = &bytes[pos..pos + len];
            pos += len;
            if fnv1a(payload) != sum {
                if salvage {
                    continue;
                }
                return Err(bad("record checksum mismatch (corrupt shard)"));
            }
            let (stamp, entry) = match decode_payload(payload) {
                Ok(v) => v,
                Err(_) if salvage => continue,
                Err(e) => return Err(e),
            };
            if salvage && !entry_is_certified(&entry) {
                continue;
            }
            let key = record_key(&entry);
            match into.get(&key) {
                Some((existing, _)) if *existing >= stamp => {}
                _ => {
                    into.insert(key, (stamp, entry));
                }
            }
        }
        Ok(())
    }

    /// Rewrites one shard file (atomically) from its keyed records.
    fn write_shard(
        &self,
        shard: usize,
        records: &BTreeMap<RecordKey, (u64, StoreEntry)>,
    ) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(SHARD_MAGIC);
        persist::put_u32(&mut out, persist::ENCODER_REVISION);
        persist::put_u32(&mut out, shard as u32);
        persist::put_u32(&mut out, SHARD_COUNT as u32);
        for (stamp, entry) in records.values() {
            let payload = encode_payload(*stamp, entry);
            persist::put_u32(&mut out, payload.len() as u32);
            persist::put_u64(&mut out, fnv1a(&payload));
            out.extend_from_slice(&payload);
        }
        write_atomic(&self.shard_path(shard), &out)
    }

    /// Union-merges every verdict entry of `cache` into the store,
    /// stamping new records with the current wall clock. Each touched
    /// shard is read, merged, and atomically rewritten under its
    /// advisory lock, so concurrent sessions merging into one store
    /// produce the union of their verdicts — never a clobber. Returns
    /// the number of records that were new to the store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt shard fails the merge with
    /// `InvalidData` (nothing is overwritten). A revision-stale shard is
    /// salvaged per record instead — certified clean verdicts survive
    /// the merge, everything else is dropped.
    pub fn merge_cache(&self, cache: &VerdictCache) -> io::Result<usize> {
        self.merge_cache_stamped(cache, now_secs())
    }

    /// Union-merges a whole session's verdicts into the store — the
    /// public entry point behind [`crate::DetectSession::save_to`] on a
    /// directory path (see [`CorpusStore::merge_cache`]).
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`CorpusStore::merge_cache`].
    pub fn merge_session(&self, session: &DetectSession) -> io::Result<usize> {
        self.merge_cache(session.cache())
    }

    /// [`CorpusStore::merge_cache`] with an explicit stamp — the
    /// deterministic variant the eviction tests drive the clock with.
    pub fn merge_cache_stamped(&self, cache: &VerdictCache, stamp: u64) -> io::Result<usize> {
        // Bucket the cache's entries by shard first, so each lock is held
        // exactly once.
        let mut by_shard: BTreeMap<usize, Vec<StoreEntry>> = BTreeMap::new();
        for (k, e) in cache.pair_entries() {
            by_shard
                .entry(shard_of_fp(k.0))
                .or_default()
                .push(StoreEntry::Pair(*k, e.clone()));
        }
        for (k, e) in cache.triple_entries() {
            by_shard
                .entry(shard_of_fp(k.0))
                .or_default()
                .push(StoreEntry::Triple(*k, e.clone()));
        }
        let mut added = 0;
        for (shard, entries) in by_shard {
            let _lock = ShardLock::acquire(&self.dir, shard)?;
            let mut records = BTreeMap::new();
            self.read_shard(shard, &mut records)?;
            for entry in entries {
                let key = record_key(&entry);
                match records.get(&key) {
                    Some((existing, _)) => {
                        // Same key ⇒ semantically the same verdict (the
                        // encoder revision pins the semantics); refresh
                        // the stamp so a re-merged entry stays young.
                        if stamp > *existing {
                            records.insert(key, (stamp, entry));
                        }
                    }
                    None => {
                        records.insert(key, (stamp, entry));
                        added += 1;
                    }
                }
            }
            self.write_shard(shard, &records)?;
        }
        Ok(added)
    }

    /// Loads every shard into a fresh [`VerdictCache`]: entries land in
    /// run 0 (warm for every following run) and seed the liveness union,
    /// exactly like a v1 load.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt record (checksum mismatch,
    /// truncation, unknown tag) or a revision-stale shard is refused
    /// with `InvalidData`.
    pub fn load_cache(&self) -> io::Result<VerdictCache> {
        let mut records = BTreeMap::new();
        for shard in 0..SHARD_COUNT {
            self.read_shard(shard, &mut records)?;
        }
        let mut cache = VerdictCache::new();
        for (_, (_, entry)) in records {
            match entry {
                StoreEntry::Pair(key, e) => cache.absorb_pair_entry(key, e),
                StoreEntry::Triple(key, e) => cache.absorb_triple_entry(key, e),
            }
        }
        Ok(cache)
    }

    /// Number of records currently in the store.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`CorpusStore::load_cache`].
    pub fn entry_count(&self) -> io::Result<usize> {
        let mut records = BTreeMap::new();
        for shard in 0..SHARD_COUNT {
            self.read_shard(shard, &mut records)?;
        }
        Ok(records.len())
    }

    /// Compacts the store under `policy`: every shard is read and
    /// rewritten under its lock (locks taken in shard order, so
    /// concurrent compactions cannot deadlock), dropping records older
    /// than `max_age_secs` and then the oldest records beyond
    /// `max_entries`.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`CorpusStore::load_cache`].
    pub fn compact(&self, policy: &EvictionPolicy) -> io::Result<CompactionReport> {
        self.compact_at(policy, now_secs())
    }

    /// [`CorpusStore::compact`] with an explicit "now" — the
    /// deterministic variant the eviction tests drive the clock with.
    pub fn compact_at(&self, policy: &EvictionPolicy, now: u64) -> io::Result<CompactionReport> {
        let _locks: Vec<ShardLock> = (0..SHARD_COUNT)
            .map(|s| ShardLock::acquire(&self.dir, s))
            .collect::<io::Result<_>>()?;
        let mut records = BTreeMap::new();
        for shard in 0..SHARD_COUNT {
            self.read_shard(shard, &mut records)?;
        }
        let total = records.len();
        if let Some(max_age) = policy.max_age_secs {
            records.retain(|_, (stamp, _)| now.saturating_sub(*stamp) <= max_age);
        }
        if let Some(max_entries) = policy.max_entries {
            if records.len() > max_entries {
                // Oldest stamps go first; ties broken by key order so the
                // cut is deterministic.
                let mut order: Vec<(u64, RecordKey)> =
                    records.iter().map(|(k, (stamp, _))| (*stamp, *k)).collect();
                order.sort();
                let doomed: HashSet<RecordKey> = order
                    [..records.len() - max_entries]
                    .iter()
                    .map(|&(_, k)| k)
                    .collect();
                records.retain(|k, _| !doomed.contains(k));
            }
        }
        let kept = records.len();
        let mut by_shard: BTreeMap<usize, BTreeMap<RecordKey, (u64, StoreEntry)>> =
            (0..SHARD_COUNT).map(|s| (s, BTreeMap::new())).collect();
        for (key, rec) in records {
            by_shard
                .get_mut(&shard_of_fp(key.1))
                .expect("all shards present")
                .insert(key, rec);
        }
        for (shard, recs) in by_shard {
            self.write_shard(shard, &recs)?;
        }
        Ok(CompactionReport {
            kept,
            evicted: total - kept,
        })
    }
}

/// Aggregate statistics of one [`analyse_corpus`] pass: how much solver
/// work the corpus-wide fingerprint dedup avoided.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Programs analysed.
    pub programs: usize,
    /// Ordered transaction pairs planned across the whole corpus (what a
    /// program-at-a-time driver would have looked up).
    pub pair_slots: u64,
    /// Unique dirty pair keys actually solved — everything else was a
    /// duplicate fingerprint or already in the store.
    pub unique_pairs: u64,
    /// Unordered transaction triples planned across the corpus (zero
    /// outside [`DetectMode::Triples`]).
    pub triple_slots: u64,
    /// Unique dirty triple keys actually solved.
    pub unique_triples: u64,
    /// Solver-side statistics of the global solve phase.
    pub solve: DetectStats,
    /// Wall-clock seconds of the whole pass (plan + solve + answer).
    pub seconds: f64,
}

/// One program's verdicts out of a corpus pass.
#[derive(Debug, Clone)]
pub struct CorpusVerdict {
    /// The program's corpus name (its file stem, for ingested
    /// directories).
    pub name: String,
    /// The anomaly verdicts — byte-identical to an isolated
    /// [`crate::detect_anomalies_cached`] run over the same program.
    pub verdicts: Vec<AccessPair>,
    /// The answering pass's statistics (all warm: zero queries).
    pub stats: DetectStats,
}

/// One globally planned dirty pair of the corpus work list.
struct CorpusPairMiss {
    prog: usize,
    i: usize,
    j: usize,
    symmetric: bool,
}

/// One globally planned dirty triple of the corpus work list, in
/// canonical orientation.
struct CorpusTrioMiss {
    prog: usize,
    idx: [usize; 3],
    key: TripleVerdictKey,
}

/// Analyses a whole corpus of programs against one shared session:
/// fingerprint-dedups the dirty pair/triple keys **across the corpus**,
/// solves each unique key once on `engine`'s worker pool (merged in plan
/// order — deterministic at any thread count), and answers every
/// program's verdicts from the warm store.
///
/// Per-program verdicts are byte-identical to running each program
/// through [`crate::detect_anomalies_cached`] (or, in triple mode, the
/// engine) in isolation; the corpus pass only changes how often the
/// solver runs.
pub fn analyse_corpus(
    engine: &DetectionEngine,
    programs: &[(String, Program)],
    level: ConsistencyLevel,
    mode: DetectMode,
    session: &mut DetectSession,
) -> (Vec<CorpusVerdict>, CorpusStats) {
    let started = Instant::now();
    let threads = engine.threads();
    let pool = engine.learnt_pool();
    let proofs = engine.proofs_enabled();
    let (cache, per_worker) = session.cache_and_workers();
    let mut stats = CorpusStats {
        programs: programs.len(),
        ..CorpusStats::default()
    };

    // Plan (serial): summarize and fingerprint everything, fold the whole
    // corpus into the liveness union *first* (so no program's pass sweeps
    // another's entries), then dedup dirty keys corpus-wide.
    let sums: Vec<Vec<TxnSummary>> = programs.iter().map(|(_, p)| summarize_program(p)).collect();
    let fps: Vec<Vec<u64>> = sums
        .iter()
        .map(|s| s.iter().map(txn_fingerprint).collect())
        .collect();
    let all_fps: Vec<u64> = fps.iter().flatten().copied().collect();
    cache.sweep_live(&all_fps);

    let mut planned: HashSet<VerdictKey> = HashSet::new();
    let mut misses: Vec<CorpusPairMiss> = Vec::new();
    for (prog, pfps) in fps.iter().enumerate() {
        let n = pfps.len();
        for i in 0..n {
            for j in 0..n {
                stats.pair_slots += 1;
                let symmetric = i <= j;
                let key = (pfps[i], pfps[j], symmetric, level);
                if cache.contains_pair(&key) || !planned.insert(key) {
                    continue;
                }
                misses.push(CorpusPairMiss {
                    prog,
                    i,
                    j,
                    symmetric,
                });
            }
        }
    }
    stats.unique_pairs = misses.len() as u64;

    let absorb = |pw: &mut Vec<WorkerStats>, ws: &[WorkerStats]| {
        if pw.len() < ws.len() {
            pw.resize(ws.len(), WorkerStats::default());
        }
        for (slot, w) in ws.iter().enumerate() {
            pw[slot].absorb(w);
        }
    };

    // Which misses may publish lemmas at the merge point (plan-time, so
    // the pool's evolution is thread-count blind — see the engine).
    let pair_publish: Vec<bool> = match pool {
        Some(p) => {
            let keys: Vec<(u64, u64)> = misses
                .iter()
                .map(|m| (fps[m.prog][m.i], fps[m.prog][m.j]))
                .collect();
            publishable_flags(
                &keys,
                |k| !cache.states().contains(k),
                |k| !p.has_pair(k.0, k.1, level),
            )
        }
        None => vec![false; misses.len()],
    };

    // Solve (parallel): each unique key exactly once, against the shared
    // retained-state shards.
    let (outcomes, worker_stats) = run_pool(threads, &misses, |m| {
        let (t1, t2) = (&sums[m.prog][m.i], &sums[m.prog][m.j]);
        let key = (fps[m.prog][m.i], fps[m.prog][m.j]);
        let mut state = cache.states().take(key).unwrap_or_else(|| PairState::new(t1, t2));
        let solver_reused = state.solver.is_some();
        let seed = match state.solver {
            Some(_) => None,
            None => pool.and_then(|p| p.pair_seed(key.0, key.1, level)),
        };
        let (pairs, st, certs) = solve_pair_with_state(
            t1,
            t2,
            m.symmetric,
            level,
            &mut state,
            seed.as_deref().map(Vec::as_slice),
            proofs,
        );
        cache.states().store(key, state);
        Outcome {
            pairs,
            stats: st,
            solver_reused,
            proofs: certs,
        }
    });
    absorb(per_worker, &worker_stats);

    // Merge (serial, plan order) — same discipline as the engine, so the
    // store's contents are thread-count blind.
    for ((m, o), publish) in misses.iter().zip(outcomes).zip(&pair_publish) {
        let o = o.expect("every corpus miss was solved");
        cache.stats_mut().solver_reuses += u64::from(o.solver_reused);
        cache.stats_mut().learnt_seeded += o.stats.learnt_seeded;
        merge_outcome_stats(&mut stats.solve, &o);
        if *publish {
            publish_pair_state(cache, pool, fps[m.prog][m.i], fps[m.prog][m.j], level);
        }
        cache.insert(
            fps[m.prog][m.i],
            fps[m.prog][m.j],
            m.symmetric,
            level,
            &sums[m.prog][m.i],
            &sums[m.prog][m.j],
            o.pairs,
            o.proofs,
        );
    }

    // The triple plan/solve/merge, same shape (canonical orientation,
    // static prefilter settles template-free triples during planning).
    if mode == DetectMode::Triples {
        let mut planned_t: HashSet<TripleVerdictKey> = HashSet::new();
        let mut trio_misses: Vec<CorpusTrioMiss> = Vec::new();
        for (prog, pfps) in fps.iter().enumerate() {
            let n = pfps.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        stats.triple_slots += 1;
                        let idx = canonical_trio([i, j, k], pfps);
                        let key = (pfps[idx[0]], pfps[idx[1]], pfps[idx[2]], level);
                        if cache.contains_triple(&key) || planned_t.contains(&key) {
                            continue;
                        }
                        planned_t.insert(key);
                        let ts = [
                            &sums[prog][idx[0]],
                            &sums[prog][idx[1]],
                            &sums[prog][idx[2]],
                        ];
                        if has_candidates(ts, [pfps[idx[0]], pfps[idx[1]], pfps[idx[2]]]) {
                            trio_misses.push(CorpusTrioMiss { prog, idx, key });
                        } else {
                            cache.insert_triple(key, ts, Vec::new(), Vec::new());
                        }
                    }
                }
            }
        }
        stats.unique_triples = trio_misses.len() as u64;

        let trio_publish: Vec<bool> = match pool {
            Some(p) => {
                let keys: Vec<(u64, u64, u64)> = trio_misses
                    .iter()
                    .map(|m| (m.key.0, m.key.1, m.key.2))
                    .collect();
                publishable_flags(
                    &keys,
                    |k| !cache.triple_states().contains(k),
                    |k| !p.has_triple(&(k.0, k.1, k.2, level)),
                )
            }
            None => vec![false; trio_misses.len()],
        };

        let (trio_outcomes, trio_workers) = run_pool(threads, &trio_misses, |m| {
            let ts = [
                &sums[m.prog][m.idx[0]],
                &sums[m.prog][m.idx[1]],
                &sums[m.prog][m.idx[2]],
            ];
            let tfps = [
                fps[m.prog][m.idx[0]],
                fps[m.prog][m.idx[1]],
                fps[m.prog][m.idx[2]],
            ];
            let key = (m.key.0, m.key.1, m.key.2);
            let mut state = cache
                .triple_states()
                .take(key)
                .unwrap_or_else(|| TripleState::new(ts));
            let solver_reused = state.solver.is_some();
            let seed = match state.solver {
                Some(_) => None,
                None => pool.and_then(|p| p.triple_seed(&m.key)),
            };
            let (pairs, st, certs) = solve_triple_with_state(
                ts,
                tfps,
                level,
                &mut state,
                seed.as_deref().map(Vec::as_slice),
                proofs,
            );
            cache.triple_states().store(key, state);
            Outcome {
                pairs,
                stats: st,
                solver_reused,
                proofs: certs,
            }
        });
        absorb(per_worker, &trio_workers);

        for ((m, o), publish) in trio_misses.iter().zip(trio_outcomes).zip(&trio_publish) {
            let o = o.expect("every corpus triple miss was solved");
            cache.stats_mut().solver_reuses += u64::from(o.solver_reused);
            cache.stats_mut().learnt_seeded += o.stats.learnt_seeded;
            merge_outcome_stats(&mut stats.solve, &o);
            if *publish {
                publish_trio_state(cache, pool, m.key);
            }
            cache.insert_triple(
                m.key,
                [
                    &sums[m.prog][m.idx[0]],
                    &sums[m.prog][m.idx[1]],
                    &sums[m.prog][m.idx[2]],
                ],
                o.pairs,
                o.proofs,
            );
        }
    }

    // Answer (serial): every program replays entirely from the warm
    // store — the exact per-program pass an isolated run would make, so
    // verdicts (and their merge order) are byte-identical to isolation.
    let verdicts = programs
        .iter()
        .map(|(name, program)| {
            // All-warm by construction (zero queries), so no pool: nothing
            // would be solved, seeded, or published here anyway.
            let (v, st) = detect_with_cache(1, program, level, mode, cache, None, None, false);
            CorpusVerdict {
                name: name.clone(),
                verdicts: v,
                stats: st,
            }
        })
        .collect();

    stats.seconds = started.elapsed().as_secs_f64();
    (verdicts, stats)
}

/// The result of one [`CorpusService::analyse`] pass.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-program verdicts, in ingestion order.
    pub verdicts: Vec<CorpusVerdict>,
    /// Corpus-wide dedup statistics.
    pub stats: CorpusStats,
}

/// The batch corpus driver: ingest a directory (or stream) of DSL
/// programs, analyse them with corpus-wide fingerprint dedup on one
/// shared engine, and (optionally) persist the verdicts through a
/// [`CorpusStore`] so the next batch starts warm.
///
/// # Examples
///
/// ```
/// use atropos_detect::{ConsistencyLevel, DetectMode, DetectionEngine};
/// use atropos_detect::corpus::CorpusService;
///
/// let p = atropos_dsl::parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let mut service = CorpusService::new(DetectionEngine::new(2));
/// // Ten fingerprint-identical programs: one solve, ten answers.
/// for i in 0..10 {
///     service.add_program(format!("copy-{i}"), p.clone());
/// }
/// let report = service
///     .analyse(ConsistencyLevel::EventualConsistency, DetectMode::Pairs)
///     .unwrap();
/// assert_eq!(report.verdicts.len(), 10);
/// assert_eq!(report.stats.unique_pairs, 1);
/// for v in &report.verdicts {
///     assert_eq!(v.verdicts.len(), 1); // the lost update, every copy
/// }
/// ```
pub struct CorpusService {
    engine: DetectionEngine,
    session: DetectSession,
    store: Option<CorpusStore>,
    programs: Vec<(String, Program)>,
}

impl CorpusService {
    /// A service with no backing store: verdicts live in the in-memory
    /// session only.
    pub fn new(engine: DetectionEngine) -> CorpusService {
        CorpusService {
            engine,
            session: DetectSession::new(),
            store: None,
            programs: Vec::new(),
        }
    }

    /// A service backed by a v2 store: the store's entries are loaded
    /// into the session up front (warm start), and every
    /// [`CorpusService::analyse`] pass union-merges its verdicts back.
    ///
    /// # Errors
    ///
    /// Propagates store I/O and validation errors.
    pub fn with_store(engine: DetectionEngine, store: CorpusStore) -> io::Result<CorpusService> {
        let session = DetectSession::from_cache(store.load_cache()?);
        Ok(CorpusService {
            engine,
            session,
            store: Some(store),
            programs: Vec::new(),
        })
    }

    /// Adds one program to the corpus under `name`.
    pub fn add_program(&mut self, name: impl Into<String>, program: Program) {
        self.programs.push((name.into(), program));
    }

    /// Ingests every `*.dsl` file of `dir` (sorted by file name, so
    /// ingestion order is deterministic), naming each program by its file
    /// stem. Returns the number of programs ingested.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a file that fails to parse is reported as
    /// `InvalidData` naming the file.
    pub fn ingest_dir(&mut self, dir: impl AsRef<Path>) -> io::Result<usize> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir.as_ref())?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "dsl"))
            .collect();
        files.sort();
        let mut ingested = 0;
        for path in files {
            let src = fs::read_to_string(&path)?;
            let program = atropos_dsl::parse(&src).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e:?}", path.display()),
                )
            })?;
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            self.programs.push((name, program));
            ingested += 1;
        }
        Ok(ingested)
    }

    /// Programs currently in the corpus.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// The ingested programs, in ingestion order.
    pub fn programs(&self) -> &[(String, Program)] {
        &self.programs
    }

    /// True when no programs have been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The shared session (for statistics inspection).
    pub fn session(&self) -> &DetectSession {
        &self.session
    }

    /// One corpus pass at `level` under `mode`: global plan, one shared
    /// solve, per-program answers — then a union-merge back into the
    /// backing store, when there is one.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors from the merge-back (the in-memory
    /// analysis itself cannot fail).
    pub fn analyse(
        &mut self,
        level: ConsistencyLevel,
        mode: DetectMode,
    ) -> io::Result<CorpusReport> {
        self.session.begin_run();
        let (verdicts, stats) =
            analyse_corpus(&self.engine, &self.programs, level, mode, &mut self.session);
        if let Some(store) = &self.store {
            store.merge_cache(self.session.cache())?;
        }
        Ok(CorpusReport { verdicts, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    const COUNTER: &str = "schema T { id: int key, v: int }
         txn bump(k: int) {
             x := select v from T where id = k;
             update T set v = x.v + 1 where id = k;
             return 0;
         }";

    #[test]
    fn duplicated_corpus_solves_each_unique_key_once() {
        let p = parse(COUNTER).unwrap();
        let programs: Vec<(String, Program)> =
            (0..8).map(|i| (format!("c{i}"), p.clone())).collect();
        let mut session = DetectSession::new();
        let engine = DetectionEngine::new(2);
        let (verdicts, stats) = analyse_corpus(
            &engine,
            &programs,
            ConsistencyLevel::EventualConsistency,
            DetectMode::Pairs,
            &mut session,
        );
        assert_eq!(stats.programs, 8);
        assert_eq!(stats.pair_slots, 8, "one ordered self-pair per copy");
        assert_eq!(stats.unique_pairs, 1, "fingerprint dedup across the corpus");
        for v in &verdicts {
            assert_eq!(v.verdicts.len(), 1);
            assert_eq!(v.stats.queries, 0, "answers replay from the warm store");
        }
    }

    #[test]
    fn corpus_store_roundtrips_and_counts() {
        let p = parse(COUNTER).unwrap();
        let mut session = DetectSession::new();
        crate::detect_anomalies_cached(
            &p,
            ConsistencyLevel::EventualConsistency,
            session.cache_mut(),
        );
        let dir = std::env::temp_dir().join(format!(
            "atropos_corpus_unit_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = CorpusStore::open(&dir).expect("open");
        assert_eq!(store.entry_count().unwrap(), 0);
        let added = store.merge_cache(session.cache()).expect("merge");
        assert_eq!(added, 1);
        // Re-merging the same entries adds nothing (stamp refresh only).
        assert_eq!(store.merge_cache(session.cache()).unwrap(), 0);
        let loaded = store.load_cache().expect("load");
        assert_eq!(loaded.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
