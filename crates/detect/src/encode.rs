//! Grounding bounded anomaly queries to CNF.
//!
//! For a candidate pair of transactions the detector instantiates two
//! transaction instances and grounds the paper's FOL anomaly formula over
//! their events: boolean variables encode the arbitration order `ord` over
//! command instances (total, antisymmetric, transitive) and the visibility
//! relation `vis` between atoms (command × record event groups) and
//! commands. The consistency level contributes its axioms; a pattern query
//! then asserts a serializability violation restricted to a specific pair of
//! commands, and the CDCL solver decides satisfiability — exactly the role
//! Z3 plays in the paper.

use std::collections::HashMap;

use atropos_sat::{CnfBuilder, Lit};

use crate::model::{CmdSummary, KeySpec, TxnSummary};

/// The consistency level whose axioms constrain candidate executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsistencyLevel {
    /// Eventual consistency: arbitrary consistent views (no axioms beyond
    /// session order and record-level atomicity).
    EventualConsistency,
    /// Causal consistency: visibility is transitively closed through the
    /// observer chain.
    CausalConsistency,
    /// Repeatable read: a transaction that has read a record cannot later
    /// gain visibility of new foreign writes to it.
    RepeatableRead,
    /// Full serializability: transaction instances execute as atomic blocks.
    Serializable,
}

impl std::fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConsistencyLevel::EventualConsistency => "EC",
            ConsistencyLevel::CausalConsistency => "CC",
            ConsistencyLevel::RepeatableRead => "RR",
            ConsistencyLevel::Serializable => "SC",
        };
        f.write_str(s)
    }
}

/// A witness record: one equivalence class of records a command can touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessRecord {
    /// Schema the record belongs to.
    pub schema: String,
    /// Key class: canonical key expression, a scan placeholder, or a fresh
    /// insert token.
    pub class: String,
    /// True when the key is a tuple of literal constants.
    pub constant: bool,
    /// True when the record stems from a fresh-keyed insert.
    pub fresh: bool,
}

/// A command instance inside the two-instance model.
#[derive(Debug, Clone)]
pub struct InstCmd {
    /// 0 for the first instance, 1 for the second.
    pub instance: u8,
    /// The underlying static summary.
    pub summary: CmdSummary,
    /// Indices of witness records this command may touch.
    pub records: Vec<usize>,
}

/// An atom: the events one command instance produces on one witness record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstAtom {
    /// Command index in [`InstanceModel::cmds`].
    pub cmd: usize,
    /// Record index in [`InstanceModel::records`].
    pub record: usize,
}

/// The grounded two-instance execution skeleton for a transaction pair.
#[derive(Debug, Clone)]
pub struct InstanceModel {
    /// Command instances: instance 0's commands followed by instance 1's.
    pub cmds: Vec<InstCmd>,
    /// Number of commands in instance 0.
    pub n1: usize,
    /// Witness records.
    pub records: Vec<WitnessRecord>,
    /// Atoms, one per (command, touched record).
    pub atoms: Vec<InstAtom>,
    atom_index: HashMap<(usize, usize), usize>,
}

impl InstanceModel {
    /// Builds the model for instances of `t1` and `t2` (which may be the
    /// same transaction, yielding two instances of it).
    pub fn new(t1: &TxnSummary, t2: &TxnSummary) -> InstanceModel {
        // Witness records: one per (schema, canonical key) class across both
        // instances, a scan placeholder per schema that is only scanned, and
        // one fresh record per fresh-keyed insert instance.
        let mut records: Vec<WitnessRecord> = Vec::new();
        let mut record_idx = HashMap::new();
        let all = |t: &TxnSummary, inst: u8| {
            t.commands
                .iter()
                .cloned()
                .map(move |summary| (inst, summary))
                .collect::<Vec<_>>()
        };
        let mut raw: Vec<(u8, CmdSummary)> = all(t1, 0);
        raw.extend(all(t2, 1));

        for (_, c) in &raw {
            if let KeySpec::Keyed { key: k, constant } = &c.key {
                let key = (c.schema.clone(), k.clone());
                let constant = *constant;
                record_idx.entry(key.clone()).or_insert_with(|| {
                    records.push(WitnessRecord {
                        schema: key.0.clone(),
                        class: key.1.clone(),
                        constant,
                        fresh: false,
                    });
                    records.len() - 1
                });
            }
        }
        // Scan placeholder for schemas with no keyed class.
        for (_, c) in &raw {
            if c.key == KeySpec::Scan {
                let key = (c.schema.clone(), "*".to_owned());
                if !records
                    .iter()
                    .any(|r| r.schema == c.schema && r.class != "fresh")
                {
                    record_idx.entry(key.clone()).or_insert_with(|| {
                        records.push(WitnessRecord {
                            schema: key.0.clone(),
                            class: "*".to_owned(),
                            constant: false,
                            fresh: false,
                        });
                        records.len() - 1
                    });
                }
            }
        }
        // Fresh records per fresh insert instance.
        let mut fresh_of: HashMap<usize, usize> = HashMap::new();
        for (i, (_, c)) in raw.iter().enumerate() {
            if c.key == KeySpec::Fresh {
                records.push(WitnessRecord {
                    schema: c.schema.clone(),
                    class: format!("fresh#{i}"),
                    constant: false,
                    fresh: true,
                });
                fresh_of.insert(i, records.len() - 1);
            }
        }

        let n1 = t1.commands.len();
        let mut cmds = Vec::with_capacity(raw.len());
        for (i, (instance, summary)) in raw.into_iter().enumerate() {
            let recs: Vec<usize> = match &summary.key {
                KeySpec::Keyed { key: k, .. } => {
                    vec![record_idx[&(summary.schema.clone(), k.clone())]]
                }
                KeySpec::Fresh => vec![fresh_of[&i]],
                KeySpec::Scan => records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.schema == summary.schema)
                    .map(|(ri, _)| ri)
                    .collect(),
            };
            cmds.push(InstCmd {
                instance,
                summary,
                records: recs,
            });
        }

        let mut atoms = Vec::new();
        let mut atom_index = HashMap::new();
        for (ci, c) in cmds.iter().enumerate() {
            for &r in &c.records {
                atom_index.insert((ci, r), atoms.len());
                atoms.push(InstAtom { cmd: ci, record: r });
            }
        }
        InstanceModel {
            cmds,
            n1,
            records,
            atoms,
            atom_index,
        }
    }

    /// Index of the atom for command `cmd` on record `record`, if the
    /// command touches that record.
    pub fn atom(&self, cmd: usize, record: usize) -> Option<usize> {
        self.atom_index.get(&(cmd, record)).copied()
    }

    /// May two witness records denote the same physical record? Records of
    /// different schemas never alias; fresh records alias nothing but
    /// themselves; two constant keys alias only when equal; everything else
    /// may collide at runtime.
    pub fn may_alias_records(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let (ra, rb) = (&self.records[a], &self.records[b]);
        if ra.schema != rb.schema || ra.fresh || rb.fresh {
            return false;
        }
        !(ra.constant && rb.constant && ra.class != rb.class)
    }

    fn same_instance(&self, a: usize, b: usize) -> bool {
        self.cmds[a].instance == self.cmds[b].instance
    }

    fn prog_before(&self, a: usize, b: usize) -> bool {
        self.same_instance(a, b) && self.cmds[a].summary.prog_index < self.cmds[b].summary.prog_index
    }

    fn touches(&self, cmd: usize, record: usize) -> bool {
        self.cmds[cmd].records.contains(&record)
    }
}

/// A visibility requirement of a pattern query: atom, observing command,
/// and required polarity.
pub type VisRequirement = (usize, usize, bool);

/// Decides whether an execution satisfying `requirements` exists under the
/// axioms of `level` — i.e., whether the candidate anomaly is realizable.
pub fn pattern_satisfiable(
    model: &InstanceModel,
    level: ConsistencyLevel,
    requirements: &[VisRequirement],
) -> bool {
    let n = model.cmds.len();
    let mut b = CnfBuilder::new();

    // ord[i][j] (i < j): literal meaning "i is arbitrated before j".
    let mut ord: Vec<Vec<Option<Lit>>> = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let l = b.fresh();
            ord[i][j] = Some(l);
            ord[j][i] = Some(!l);
        }
    }
    let ord_lit = |i: usize, j: usize| ord[i][j].expect("i != j");

    // Transitivity.
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if i != j && j != k && i != k {
                    b.clause([!ord_lit(i, j), !ord_lit(j, k), ord_lit(i, k)]);
                }
            }
        }
    }
    // Program order within each instance.
    for i in 0..n {
        for j in 0..n {
            if i != j && model.prog_before(i, j) {
                b.assert_lit(ord_lit(i, j));
            }
        }
    }

    // vis[a][c] variables.
    let na = model.atoms.len();
    let mut vis = vec![vec![None::<Lit>; n]; na];
    for (ai, atom) in model.atoms.iter().enumerate() {
        for c in 0..n {
            let l = b.fresh();
            vis[ai][c] = Some(l);
            let producer = atom.cmd;
            if producer == c {
                // A command's view predates its own events.
                b.assert_lit(!l);
            } else if model.same_instance(producer, c) {
                // Session guarantee: a transaction sees its own effects.
                if model.prog_before(producer, c) {
                    b.assert_lit(l);
                } else {
                    b.assert_lit(!l);
                }
            } else {
                // Visibility implies arbitration order.
                b.assert_implies(l, ord_lit(producer, c));
            }
        }
    }
    let vis_lit = |vis: &Vec<Vec<Option<Lit>>>, a: usize, c: usize| vis[a][c].expect("built");

    match level {
        ConsistencyLevel::EventualConsistency => {}
        ConsistencyLevel::CausalConsistency => {
            // vis(b, c') ∧ vis(a_{c'}, c) ⇒ vis(b, c): visibility is closed
            // under the observer chain.
            for bi in 0..na {
                for cp in 0..n {
                    if model.atoms[bi].cmd == cp {
                        continue;
                    }
                    for (ai, a) in model.atoms.iter().enumerate() {
                        if a.cmd != cp {
                            continue;
                        }
                        for c in 0..n {
                            if c == cp || model.atoms[bi].cmd == c {
                                continue;
                            }
                            b.clause([
                                !vis_lit(&vis, bi, cp),
                                !vis_lit(&vis, ai, c),
                                vis_lit(&vis, bi, c),
                            ]);
                        }
                    }
                }
            }
        }
        ConsistencyLevel::RepeatableRead => {
            // Once command c1 of an instance has accessed record(a), later
            // commands c2 of the instance cannot observe a foreign atom on
            // that record that c1 did not observe.
            for (ai, atom) in model.atoms.iter().enumerate() {
                for c1 in 0..n {
                    if model.same_instance(atom.cmd, c1) {
                        continue;
                    }
                    if !model.touches(c1, atom.record) {
                        continue;
                    }
                    for c2 in 0..n {
                        if c2 == c1 || !model.prog_before(c1, c2) {
                            continue;
                        }
                        b.assert_implies(vis_lit(&vis, ai, c2), vis_lit(&vis, ai, c1));
                    }
                }
            }
        }
        ConsistencyLevel::Serializable => {
            // Whole-transaction blocks: blk ⇔ instance 0 runs first.
            let blk = b.fresh();
            for i in 0..n {
                for j in 0..n {
                    if i == j || model.same_instance(i, j) {
                        continue;
                    }
                    let l = ord_lit(i, j);
                    if model.cmds[i].instance == 0 {
                        b.assert_implies(blk, l);
                        b.assert_implies(!blk, !l);
                    }
                }
            }
            for (ai, atom) in model.atoms.iter().enumerate() {
                for c in 0..n {
                    if model.same_instance(atom.cmd, c) {
                        continue;
                    }
                    let l = vis_lit(&vis, ai, c);
                    if model.cmds[atom.cmd].instance == 0 {
                        b.assert_implies(blk, l);
                        b.assert_implies(!blk, !l);
                    } else {
                        b.assert_implies(blk, !l);
                        b.assert_implies(!blk, l);
                    }
                }
            }
        }
    }

    for &(a, c, polarity) in requirements {
        let l = vis_lit(&vis, a, c);
        b.assert_lit(if polarity { l } else { !l });
    }
    b.solve().is_sat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::summarize_program;
    use atropos_dsl::parse;

    fn model_for(src: &str, t1: &str, t2: &str) -> InstanceModel {
        let p = parse(src).unwrap();
        let sums = summarize_program(&p);
        let s1 = sums.iter().find(|s| s.name == t1).unwrap();
        let s2 = sums.iter().find(|s| s.name == t2).unwrap();
        InstanceModel::new(s1, s2)
    }

    const COUNTER: &str = "schema T { id: int key, v: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }";

    #[test]
    fn witness_records_unify_equal_keys() {
        let m = model_for(COUNTER, "bump", "bump");
        // One shared record class `k` for schema T.
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.cmds.len(), 4);
        assert_eq!(m.atoms.len(), 4);
    }

    #[test]
    fn lost_update_sat_under_ec_unsat_under_sc() {
        let m = model_for(COUNTER, "bump", "bump");
        let r = 0;
        // I1: R=0, W=1. I2: R=2, W=3.
        let a_w1 = m.atom(1, r).unwrap();
        let a_w2 = m.atom(3, r).unwrap();
        let reqs = [(a_w2, 0, false), (a_w1, 2, false)];
        assert!(pattern_satisfiable(
            &m,
            ConsistencyLevel::EventualConsistency,
            &reqs
        ));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::CausalConsistency, &reqs));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::RepeatableRead, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn session_visibility_is_forced() {
        let m = model_for(COUNTER, "bump", "bump");
        let r = 0;
        let a_w1 = m.atom(1, r).unwrap();
        // W's atom cannot be invisible to a later command of I1... there is
        // none after W, so check the read's atom instead: R's atom (reads
        // produce an atom too) must be visible to W (cmd 1).
        let a_r1 = m.atom(0, r).unwrap();
        assert!(!pattern_satisfiable(
            &m,
            ConsistencyLevel::EventualConsistency,
            &[(a_r1, 1, false)]
        ));
        // And W's atom cannot be visible to R (its own past).
        assert!(!pattern_satisfiable(
            &m,
            ConsistencyLevel::EventualConsistency,
            &[(a_w1, 0, true)]
        ));
    }

    const TWO_WRITES: &str = "schema A { id: int key, x: int }
         schema B { id: int key, y: int }
         txn wr(k: int) {
             @W1 update A set x = 1 where id = k;
             @W2 update B set y = 1 where id = k;
             return 0;
         }
         txn rd(k: int) {
             @R1 a := select x from A where id = k;
             @R2 bb := select y from B where id = k;
             return a.x + bb.y;
         }";

    #[test]
    fn dirty_read_sat_under_ec_and_cc_when_later_write_missing() {
        let m = model_for(TWO_WRITES, "wr", "rd");
        // I1: W1=0 (A), W2=1 (B). I2: R1=2 (A), R2=3 (B).
        let ra = m.cmds[2].records[0];
        let rb = m.cmds[3].records[0];
        let a_w1 = m.atom(0, ra).unwrap();
        let a_w2 = m.atom(1, rb).unwrap();
        // Observe W1 but not the later W2.
        let reqs = [(a_w1, 2, true), (a_w2, 3, false)];
        assert!(pattern_satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::CausalConsistency, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn causal_consistency_forbids_observing_later_but_not_earlier_write() {
        let m = model_for(TWO_WRITES, "wr", "rd");
        let ra = m.cmds[2].records[0];
        let rb = m.cmds[3].records[0];
        let a_w1 = m.atom(0, ra).unwrap();
        let a_w2 = m.atom(1, rb).unwrap();
        // Observe the *later* W2 at R2 but miss the earlier W1 at R1.
        // R2 runs after R1 in program order, so under CC the chain
        // W1 → (session) → W2 → R2 … does not force W1 at R1 (different
        // command): still satisfiable? The chain axiom only closes through
        // observers, and R1 never observed anything — so CC allows it.
        let reqs = [(a_w2, 3, true), (a_w1, 2, false)];
        assert!(pattern_satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::CausalConsistency, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn repeatable_read_blocks_new_visibility_on_touched_record() {
        // One transaction reads the same record twice; the other writes it.
        let src = "schema T { id: int key, v: int }
             txn rr(k: int) {
                 @R1 x := select v from T where id = k;
                 @R2 y := select v from T where id = k;
                 return x.v + y.v;
             }
             txn w(k: int) {
                 @W update T set v = 9 where id = k;
                 return 0;
             }";
        let m = model_for(src, "rr", "w");
        let r = m.cmds[0].records[0];
        let a_w = m.atom(2, r).unwrap();
        // Second read sees the write, first read does not: classic
        // non-repeatable read — allowed under EC, forbidden under RR.
        let reqs = [(a_w, 1, true), (a_w, 0, false)];
        assert!(pattern_satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::RepeatableRead, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn fresh_inserts_get_distinct_records() {
        let src = "schema L { id: int key, u: uuid key, n: int }
             txn log(k: int) {
                 @I insert into L values (id = k, u = uuid(), n = 1);
                 return 0;
             }";
        let m = model_for(src, "log", "log");
        assert_eq!(m.records.len(), 2);
        assert_ne!(m.cmds[0].records, m.cmds[1].records);
    }

    #[test]
    fn scans_touch_fresh_records() {
        let src = "schema L { id: int key, u: uuid key, n: int }
             txn log(k: int) {
                 @I insert into L values (id = k, u = uuid(), n = 1);
                 return 0;
             }
             txn rd() {
                 @S x := select n from L;
                 return sum(x.n);
             }";
        let m = model_for(src, "log", "rd");
        // Scan touches the fresh record of the insert.
        let fresh_rec = m.cmds[0].records[0];
        assert!(m.cmds[1].records.contains(&fresh_rec));
    }
}
