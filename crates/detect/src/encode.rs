//! Grounding bounded anomaly queries to CNF.
//!
//! For a candidate pair of transactions the detector instantiates two
//! transaction instances and grounds the paper's FOL anomaly formula over
//! their events: boolean variables encode the arbitration order `ord` over
//! command instances (total, antisymmetric, transitive) and the visibility
//! relation `vis` between atoms (command × record event groups) and
//! commands. The consistency level contributes its axioms; a pattern query
//! then asserts a serializability violation restricted to a specific pair of
//! commands, and the CDCL solver decides satisfiability — exactly the role
//! Z3 plays in the paper.
//!
//! Two solving paths share one encoder so their clause streams cannot
//! diverge:
//!
//! * [`pattern_satisfiable`] — the reference path: a fresh solver per
//!   query, with only the queried level's axioms, requirements asserted as
//!   unit clauses;
//! * [`PairSolver`] — the incremental path: the ordering/visibility matrix
//!   is encoded **once per transaction pair**, each non-trivial consistency
//!   level's axioms are installed as an activation-literal-guarded clause
//!   group, and every anomaly query is dispatched via
//!   `solve_with_assumptions` (the guard plus the requirement literals),
//!   retaining learnt clauses across queries.

use std::collections::HashMap;

use atropos_sat::{Lit, Solver, SolverStats};

use crate::model::{CmdSummary, KeySpec, TxnSummary};

/// The consistency level whose axioms constrain candidate executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsistencyLevel {
    /// Eventual consistency: arbitrary consistent views (no axioms beyond
    /// session order and record-level atomicity).
    EventualConsistency,
    /// Causal consistency: visibility is transitively closed through the
    /// observer chain.
    CausalConsistency,
    /// Repeatable read: a transaction that has read a record cannot later
    /// gain visibility of new foreign writes to it.
    RepeatableRead,
    /// Full serializability: transaction instances execute as atomic blocks.
    Serializable,
}

impl ConsistencyLevel {
    /// All four levels, weakest first.
    pub const ALL: [ConsistencyLevel; 4] = [
        ConsistencyLevel::EventualConsistency,
        ConsistencyLevel::CausalConsistency,
        ConsistencyLevel::RepeatableRead,
        ConsistencyLevel::Serializable,
    ];

    /// Dense index (position in [`ConsistencyLevel::ALL`]) — also the
    /// stable serialization tag of the `verdict_cache.v1` format.
    pub(crate) fn index(self) -> usize {
        match self {
            ConsistencyLevel::EventualConsistency => 0,
            ConsistencyLevel::CausalConsistency => 1,
            ConsistencyLevel::RepeatableRead => 2,
            ConsistencyLevel::Serializable => 3,
        }
    }

    /// Inverse of [`ConsistencyLevel::index`].
    pub(crate) fn from_index(i: usize) -> Option<ConsistencyLevel> {
        ConsistencyLevel::ALL.get(i).copied()
    }
}

impl std::fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConsistencyLevel::EventualConsistency => "EC",
            ConsistencyLevel::CausalConsistency => "CC",
            ConsistencyLevel::RepeatableRead => "RR",
            ConsistencyLevel::Serializable => "SC",
        };
        f.write_str(s)
    }
}

/// A witness record: one equivalence class of records a command can touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessRecord {
    /// Schema the record belongs to.
    pub schema: String,
    /// Key class: canonical key expression, a scan placeholder, or a fresh
    /// insert token.
    pub class: String,
    /// True when the key is a tuple of literal constants.
    pub constant: bool,
    /// True when the record stems from a fresh-keyed insert.
    pub fresh: bool,
}

/// A command instance inside the bounded multi-instance model.
#[derive(Debug, Clone)]
pub struct InstCmd {
    /// Index of the transaction instance this command belongs to (0 and 1
    /// in the pair skeleton, 0–2 in the triple skeleton).
    pub instance: u8,
    /// The underlying static summary.
    pub summary: CmdSummary,
    /// Indices of witness records this command may touch.
    pub records: Vec<usize>,
}

/// An atom: the events one command instance produces on one witness record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstAtom {
    /// Command index in [`InstanceModel::cmds`].
    pub cmd: usize,
    /// Record index in [`InstanceModel::records`].
    pub record: usize,
}

/// The grounded bounded execution skeleton for a tuple of transaction
/// instances: two in the pair oracle ([`InstanceModel::new`]), three in the
/// triple oracle ([`InstanceModel::new_multi`] via
/// [`crate::triple::TripleModel`]).
#[derive(Debug, Clone)]
pub struct InstanceModel {
    /// Command instances: instance 0's commands, then instance 1's, …
    pub cmds: Vec<InstCmd>,
    /// Number of commands in instance 0.
    pub n1: usize,
    /// Command-index offset of each instance, plus the total command count
    /// as a final sentinel (so instance `i` spans `starts[i]..starts[i+1]`).
    pub starts: Vec<usize>,
    /// Witness records.
    pub records: Vec<WitnessRecord>,
    /// Atoms, one per (command, touched record).
    pub atoms: Vec<InstAtom>,
    atom_index: HashMap<(usize, usize), usize>,
}

impl InstanceModel {
    /// Builds the two-instance model for `t1` and `t2` (which may be the
    /// same transaction, yielding two instances of it).
    pub fn new(t1: &TxnSummary, t2: &TxnSummary) -> InstanceModel {
        InstanceModel::new_multi(&[t1, t2])
    }

    /// Builds the bounded skeleton over an arbitrary tuple of transaction
    /// instances (repetition allowed). The encoding and the per-level
    /// axioms are instance-count generic; only the violation templates fix
    /// a bound (two for the pair oracle, three for the triple oracle).
    pub fn new_multi(ts: &[&TxnSummary]) -> InstanceModel {
        assert!(
            (1..=u8::MAX as usize).contains(&ts.len()),
            "instance count out of range"
        );
        // Witness records: one per (schema, canonical key) class across all
        // instances, a scan placeholder per schema that is only scanned, and
        // one fresh record per fresh-keyed insert instance.
        let mut records: Vec<WitnessRecord> = Vec::new();
        let mut record_idx = HashMap::new();
        let mut raw: Vec<(u8, CmdSummary)> = Vec::new();
        let mut starts = Vec::with_capacity(ts.len() + 1);
        for (inst, t) in ts.iter().enumerate() {
            starts.push(raw.len());
            raw.extend(t.commands.iter().cloned().map(|s| (inst as u8, s)));
        }
        starts.push(raw.len());

        for (_, c) in &raw {
            if let KeySpec::Keyed { key: k, constant } = &c.key {
                let key = (c.schema.clone(), k.clone());
                let constant = *constant;
                record_idx.entry(key.clone()).or_insert_with(|| {
                    records.push(WitnessRecord {
                        schema: key.0.clone(),
                        class: key.1.clone(),
                        constant,
                        fresh: false,
                    });
                    records.len() - 1
                });
            }
        }
        // Scan placeholder for schemas with no keyed class.
        for (_, c) in &raw {
            if c.key == KeySpec::Scan {
                let key = (c.schema.clone(), "*".to_owned());
                if !records
                    .iter()
                    .any(|r| r.schema == c.schema && r.class != "fresh")
                {
                    record_idx.entry(key.clone()).or_insert_with(|| {
                        records.push(WitnessRecord {
                            schema: key.0.clone(),
                            class: "*".to_owned(),
                            constant: false,
                            fresh: false,
                        });
                        records.len() - 1
                    });
                }
            }
        }
        // Fresh records per fresh insert instance.
        let mut fresh_of: HashMap<usize, usize> = HashMap::new();
        for (i, (_, c)) in raw.iter().enumerate() {
            if c.key == KeySpec::Fresh {
                records.push(WitnessRecord {
                    schema: c.schema.clone(),
                    class: format!("fresh#{i}"),
                    constant: false,
                    fresh: true,
                });
                fresh_of.insert(i, records.len() - 1);
            }
        }

        let n1 = starts.get(1).copied().unwrap_or(raw.len());
        let mut cmds = Vec::with_capacity(raw.len());
        for (i, (instance, summary)) in raw.into_iter().enumerate() {
            let recs: Vec<usize> = match &summary.key {
                KeySpec::Keyed { key: k, .. } => {
                    vec![record_idx[&(summary.schema.clone(), k.clone())]]
                }
                KeySpec::Fresh => vec![fresh_of[&i]],
                KeySpec::Scan => records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.schema == summary.schema)
                    .map(|(ri, _)| ri)
                    .collect(),
            };
            cmds.push(InstCmd {
                instance,
                summary,
                records: recs,
            });
        }

        let mut atoms = Vec::new();
        let mut atom_index = HashMap::new();
        for (ci, c) in cmds.iter().enumerate() {
            for &r in &c.records {
                atom_index.insert((ci, r), atoms.len());
                atoms.push(InstAtom { cmd: ci, record: r });
            }
        }
        InstanceModel {
            cmds,
            n1,
            starts,
            records,
            atoms,
            atom_index,
        }
    }

    /// Number of transaction instances this model was grounded over.
    pub fn instances(&self) -> usize {
        self.starts.len() - 1
    }

    /// Global command index of instance `inst`'s `local`-th command.
    pub fn cmd_index(&self, inst: usize, local: usize) -> usize {
        debug_assert!(local < self.starts[inst + 1] - self.starts[inst]);
        self.starts[inst] + local
    }

    /// Index of the atom for command `cmd` on record `record`, if the
    /// command touches that record.
    pub fn atom(&self, cmd: usize, record: usize) -> Option<usize> {
        self.atom_index.get(&(cmd, record)).copied()
    }

    /// May two witness records denote the same physical record? Records of
    /// different schemas never alias; fresh records alias nothing but
    /// themselves; two constant keys alias only when equal; everything else
    /// may collide at runtime.
    pub fn may_alias_records(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let (ra, rb) = (&self.records[a], &self.records[b]);
        if ra.schema != rb.schema || ra.fresh || rb.fresh {
            return false;
        }
        !(ra.constant && rb.constant && ra.class != rb.class)
    }

    fn same_instance(&self, a: usize, b: usize) -> bool {
        self.cmds[a].instance == self.cmds[b].instance
    }

    pub(crate) fn prog_before(&self, a: usize, b: usize) -> bool {
        self.same_instance(a, b) && self.cmds[a].summary.prog_index < self.cmds[b].summary.prog_index
    }

    fn touches(&self, cmd: usize, record: usize) -> bool {
        self.cmds[cmd].records.contains(&record)
    }
}

/// A visibility requirement of a pattern query: atom, observing command,
/// and required polarity.
pub type VisRequirement = (usize, usize, bool);

/// The decoded truth assignment of one satisfying anomaly witness: the
/// complete arbitration order and visibility relation the solver's model
/// assigns to a dirty query. This is the static schedule the replay
/// pipeline ([`crate::replay`]) turns into a concrete simulator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessTruth {
    /// `ord[i][j]`: command instance `i` is arbitrated before `j` (the
    /// diagonal reads `false`). Total and transitive by the base encoding.
    pub ord: Vec<Vec<bool>>,
    /// `vis[a][c]`: atom `a` is visible to command `c`.
    pub vis: Vec<Vec<bool>>,
}

impl WitnessTruth {
    /// Position of command `c` in the arbitration total order: the number
    /// of commands arbitrated before it.
    pub fn arbitration_position(&self, c: usize) -> usize {
        (0..self.ord.len()).filter(|&j| self.ord[j][c]).count()
    }
}

/// The ord/vis literal layout produced by [`encode_base`].
struct PairEncoding {
    /// `ord[i][j]`: "command i is arbitrated before command j" (None on the
    /// diagonal).
    ord: Vec<Vec<Option<Lit>>>,
    /// `vis[a][c]`: "atom a is visible to command c".
    vis: Vec<Vec<Lit>>,
}

impl PairEncoding {
    fn ord(&self, i: usize, j: usize) -> Lit {
        self.ord[i][j].expect("i != j")
    }
}

fn fresh(s: &mut Solver) -> Lit {
    s.new_var().positive()
}

/// Adds `lits` as a clause, weakened by `¬guard` when a guard is present —
/// so the clause only bites while the guard literal is assumed.
fn emit(s: &mut Solver, guard: Option<Lit>, lits: impl IntoIterator<Item = Lit>) {
    match guard {
        None => s.add_clause(lits),
        Some(g) => {
            let mut c: Vec<Lit> = lits.into_iter().collect();
            c.push(!g);
            s.add_clause(c);
        }
    }
}

/// Encodes the level-independent skeleton: the total arbitration order
/// (antisymmetric by construction, transitive by clauses, containing each
/// instance's program order), the visibility variables with the session
/// guarantee, and visibility-implies-arbitration.
fn encode_base(s: &mut Solver, model: &InstanceModel) -> PairEncoding {
    let n = model.cmds.len();
    // ord[i][j] (i < j): literal meaning "i is arbitrated before j".
    let mut ord: Vec<Vec<Option<Lit>>> = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let l = fresh(s);
            ord[i][j] = Some(l);
            ord[j][i] = Some(!l);
        }
    }
    let ord_lit = |i: usize, j: usize| ord[i][j].expect("i != j");

    // Transitivity. Because ord(j, i) is the same literal as ¬ord(i, j),
    // the six permutations of a triple collapse to two distinct clauses —
    // one per forbidden 3-cycle orientation — so emitting them once per
    // unordered triple {i < j < k} cuts the dominant clause group to a
    // third without weakening the encoding.
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                s.add_clause([!ord_lit(i, j), !ord_lit(j, k), ord_lit(i, k)]);
                s.add_clause([ord_lit(i, j), ord_lit(j, k), !ord_lit(i, k)]);
            }
        }
    }
    // Program order within each instance.
    for i in 0..n {
        for j in 0..n {
            if i != j && model.prog_before(i, j) {
                s.add_clause([ord_lit(i, j)]);
            }
        }
    }

    // vis[a][c] variables.
    let mut vis = vec![Vec::with_capacity(n); model.atoms.len()];
    for (ai, atom) in model.atoms.iter().enumerate() {
        for c in 0..n {
            let l = fresh(s);
            vis[ai].push(l);
            let producer = atom.cmd;
            if producer == c {
                // A command's view predates its own events.
                s.add_clause([!l]);
            } else if model.same_instance(producer, c) {
                // Session guarantee: a transaction sees its own effects.
                if model.prog_before(producer, c) {
                    s.add_clause([l]);
                } else {
                    s.add_clause([!l]);
                }
            } else {
                // Visibility implies arbitration order.
                s.add_clause([!l, ord_lit(producer, c)]);
            }
        }
    }
    PairEncoding { ord, vis }
}

/// Encodes the axioms of one consistency level on top of [`encode_base`],
/// optionally guarded by an activation literal (the incremental path).
fn encode_level(
    s: &mut Solver,
    model: &InstanceModel,
    enc: &PairEncoding,
    level: ConsistencyLevel,
    guard: Option<Lit>,
) {
    let n = model.cmds.len();
    let na = model.atoms.len();
    match level {
        ConsistencyLevel::EventualConsistency => {}
        ConsistencyLevel::CausalConsistency => {
            // (1) vis(b, c') ∧ vis(a_{c'}, c) ⇒ vis(b, c): visibility is
            // closed under the observer chain.
            for bi in 0..na {
                for cp in 0..n {
                    if model.atoms[bi].cmd == cp {
                        continue;
                    }
                    for (ai, a) in model.atoms.iter().enumerate() {
                        if a.cmd != cp {
                            continue;
                        }
                        for c in 0..n {
                            if c == cp || model.atoms[bi].cmd == c {
                                continue;
                            }
                            emit(
                                s,
                                guard,
                                [!enc.vis[bi][cp], !enc.vis[ai][c], enc.vis[bi][c]],
                            );
                        }
                    }
                }
            }
            // (2) Writer-session closure: a session's earlier effects are
            // causally before its later ones, so observing the later atom
            // forces the earlier one — vis(a, c) ⇒ vis(b, c) when
            // producer(b) precedes producer(a) in the same instance.
            for ai in 0..na {
                for bi in 0..na {
                    let (pa, pb) = (model.atoms[ai].cmd, model.atoms[bi].cmd);
                    if !model.prog_before(pb, pa) {
                        continue;
                    }
                    for c in 0..n {
                        if model.same_instance(pa, c) {
                            continue;
                        }
                        emit(s, guard, [!enc.vis[ai][c], enc.vis[bi][c]]);
                    }
                }
            }
            // (3) Monotonic reads: a session's causal past only grows —
            // vis(a, c1) ⇒ vis(a, c2) for c1 preceding c2 in one instance.
            for (ai, atom) in model.atoms.iter().enumerate() {
                for c1 in 0..n {
                    if model.same_instance(atom.cmd, c1) {
                        continue;
                    }
                    for c2 in 0..n {
                        if c2 == c1 || !model.prog_before(c1, c2) {
                            continue;
                        }
                        emit(s, guard, [!enc.vis[ai][c1], enc.vis[ai][c2]]);
                    }
                }
            }
        }
        ConsistencyLevel::RepeatableRead => {
            // Reads of a record are stable for the rest of the transaction:
            // once command c1 of an instance has accessed record(a), later
            // commands c2 observe exactly the foreign atoms on that record
            // that c1 observed — no new visibility (backward implication)
            // and no retraction (forward implication).
            for (ai, atom) in model.atoms.iter().enumerate() {
                for c1 in 0..n {
                    if model.same_instance(atom.cmd, c1) {
                        continue;
                    }
                    if !model.touches(c1, atom.record) {
                        continue;
                    }
                    for c2 in 0..n {
                        if c2 == c1 || !model.prog_before(c1, c2) {
                            continue;
                        }
                        emit(s, guard, [!enc.vis[ai][c2], enc.vis[ai][c1]]);
                        emit(s, guard, [!enc.vis[ai][c1], enc.vis[ai][c2]]);
                    }
                }
            }
        }
        ConsistencyLevel::Serializable => {
            // Whole-transaction blocks: one literal per unordered instance
            // pair {a < b}, blk[a][b] ⇔ instance a runs entirely before
            // instance b. Ord transitivity makes the block relation a total
            // order of the instances (a cyclic assignment of the blk
            // literals forces a cyclic ord triangle, which is
            // unsatisfiable), so for two instances this degenerates to the
            // single "instance 0 runs first" literal of the pair encoding —
            // same variable count, same clause stream.
            let k = model.instances();
            let mut blk = vec![vec![None; k]; k];
            for a in 0..k {
                for b in (a + 1)..k {
                    blk[a][b] = Some(fresh(s));
                }
            }
            for i in 0..n {
                for j in 0..n {
                    if i == j || model.same_instance(i, j) {
                        continue;
                    }
                    let (a, b) = (
                        model.cmds[i].instance as usize,
                        model.cmds[j].instance as usize,
                    );
                    if a < b {
                        let g = blk[a][b].expect("a < b");
                        let l = enc.ord(i, j);
                        emit(s, guard, [!g, l]);
                        emit(s, guard, [g, !l]);
                    }
                }
            }
            for (ai, atom) in model.atoms.iter().enumerate() {
                for c in 0..n {
                    if model.same_instance(atom.cmd, c) {
                        continue;
                    }
                    let l = enc.vis[ai][c];
                    let (pa, pc) = (
                        model.cmds[atom.cmd].instance as usize,
                        model.cmds[c].instance as usize,
                    );
                    if pa < pc {
                        let g = blk[pa][pc].expect("pa < pc");
                        emit(s, guard, [!g, l]);
                        emit(s, guard, [g, !l]);
                    } else {
                        let g = blk[pc][pa].expect("pc < pa");
                        emit(s, guard, [!g, !l]);
                        emit(s, guard, [g, l]);
                    }
                }
            }
        }
    }
}

/// Decides whether an execution satisfying `requirements` exists under the
/// axioms of `level` — i.e., whether the candidate anomaly is realizable.
///
/// This is the reference path: it constructs a fresh solver per query. The
/// production detector uses [`PairSolver`], which must return identical
/// verdicts (enforced by the `incremental_vs_fresh` differential suite).
pub fn pattern_satisfiable(
    model: &InstanceModel,
    level: ConsistencyLevel,
    requirements: &[VisRequirement],
) -> bool {
    fresh_query(model, level, requirements).0
}

/// The fresh path with instrumentation: verdict, this query's solver
/// statistics, and the number of clauses the fresh encoding emitted.
pub(crate) fn fresh_query(
    model: &InstanceModel,
    level: ConsistencyLevel,
    requirements: &[VisRequirement],
) -> (bool, SolverStats, usize) {
    let mut s = Solver::new();
    let enc = encode_base(&mut s, model);
    encode_level(&mut s, model, &enc, level, None);
    for &(a, c, polarity) in requirements {
        let l = enc.vis[a][c];
        s.add_clause([if polarity { l } else { !l }]);
    }
    let sat = s.solve().is_sat();
    (sat, s.stats(), s.num_clauses())
}

/// An incremental anomaly oracle for one transaction pair.
///
/// The base ordering/visibility encoding is built once; the axioms of each
/// non-trivial consistency level form an activation-literal-guarded clause
/// group. A query assumes the queried level's guard plus the requirement
/// literals, so the solver retains its clause database (including learnt
/// clauses) across all patterns and levels.
///
/// The solver does **not** retain its [`InstanceModel`] — callers that keep
/// a `PairSolver` alive (the repair driver's [`crate::VerdictCache`] retains
/// them across refactoring steps) keep the model alongside it and pass the
/// same model back into [`PairSolver::satisfiable`], which needs it only
/// when a consistency level's axiom group is installed on first query.
pub struct PairSolver {
    solver: Solver,
    enc: PairEncoding,
    /// Activation literal per level group, allocated when the level is
    /// first queried (None for EC, which adds no axioms).
    guards: [Option<Lit>; 4],
    built: [bool; 4],
    /// Clauses in the shared encoding: base skeleton plus built groups.
    base_clauses: usize,
    level_clauses: [usize; 4],
    /// Variables of the level-independent base encoding — the prefix of
    /// the numbering shared by every solver grounded from an equal-
    /// fingerprint model. Guards and level-group Tseitin variables are
    /// allocated above it, so learnt clauses entirely below `base_vars`
    /// transfer verbatim between such solvers.
    base_vars: usize,
    /// Whether UNSAT queries capture proof certificates.
    proofs: bool,
    /// Incremental certificate encoder over the solver's cumulative proof
    /// log — each event is encoded once, however many queries snapshot it.
    certifier: crate::certify::Certifier,
    /// Certificates of UNSAT queries since the last
    /// [`PairSolver::take_certificates`], in query order. Each blob is the
    /// solver's cumulative proof log plus the failed-core trailer, encoded
    /// in the `atropos_proof` binary format.
    pending: Vec<Vec<u8>>,
}

// Retained pair solvers travel between the detection engine's workers via
// the sharded retention map; `PairSolver` (and the model it is grounded
// from) must therefore stay `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PairSolver>();
    assert_send::<InstanceModel>();
};

impl PairSolver {
    /// Builds the level-independent encoding for `model`; each level's
    /// axiom group is added lazily on first query.
    pub fn new(model: &InstanceModel) -> PairSolver {
        PairSolver::with_proofs(model, false)
    }

    /// Like [`PairSolver::new`], but with `proofs` on the solver logs
    /// every clause addition/deletion and each UNSAT query yields a
    /// certificate blob (collected via [`PairSolver::take_certificates`])
    /// that the independent `atropos_proof` checker accepts. Logging must
    /// be switched on before the base encoding so the certificate's input
    /// section is complete.
    pub fn with_proofs(model: &InstanceModel, proofs: bool) -> PairSolver {
        let mut solver = Solver::new();
        solver.set_proof_logging(proofs);
        let enc = encode_base(&mut solver, model);
        let base_clauses = solver.num_clauses();
        let base_vars = solver.num_vars();
        PairSolver {
            solver,
            enc,
            guards: [None; 4],
            built: [false; 4],
            base_clauses,
            level_clauses: [0usize; 4],
            base_vars,
            proofs,
            certifier: crate::certify::Certifier::default(),
            pending: Vec::new(),
        }
    }

    /// Drains the certificates captured since the last call, in query
    /// order. Empty unless the solver was built via
    /// [`PairSolver::with_proofs`] and answered at least one query UNSAT.
    pub fn take_certificates(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.pending)
    }

    /// Dispatches one assumption query, capturing a certificate on UNSAT
    /// when proof logging is on — the single solve path shared by
    /// [`PairSolver::satisfiable`] and [`PairSolver::witness`].
    fn solve(&mut self, assumptions: &[Lit]) -> atropos_sat::SolveResult {
        let result = self.solver.solve_with_assumptions(assumptions);
        if self.proofs && !result.is_sat() {
            let blob = self.certifier.certificate_blob(
                self.solver.proof_events(),
                self.solver.failed_assumptions(),
            );
            self.pending.push(blob);
        }
        result
    }

    /// Imports lemmas a fingerprint-identical solver published (see
    /// [`crate::cache::LearntPool`]), returning how many were installed.
    /// Sound only for clauses exported by [`PairSolver::export_learnts`]
    /// from a solver grounded on an equal-fingerprint model — the variable
    /// numbering must line up.
    pub(crate) fn seed_learnts(&mut self, clauses: &[Vec<Lit>]) -> usize {
        self.solver
            .import_learnts(clauses.iter().map(Vec::as_slice))
    }

    /// Exports the lemmas this solver derived over base-encoding variables
    /// only — the clauses [`PairSolver::seed_learnts`] can install into a
    /// fingerprint-identical sibling. Guards and level-group variables sit
    /// above `base_vars`, so the filter keeps exactly the level-blind,
    /// assumption-independent deductions.
    pub(crate) fn export_learnts(&self) -> Vec<Vec<Lit>> {
        self.solver.retained_learnts(self.base_vars)
    }

    /// Installs `level`'s guarded axiom group if it is not present yet.
    fn ensure_level(&mut self, model: &InstanceModel, level: ConsistencyLevel) {
        let idx = level.index();
        if self.built[idx] {
            return;
        }
        self.built[idx] = true;
        if level == ConsistencyLevel::EventualConsistency {
            return;
        }
        let before = self.solver.num_clauses();
        let g = fresh(&mut self.solver);
        encode_level(&mut self.solver, model, &self.enc, level, Some(g));
        self.guards[idx] = Some(g);
        self.level_clauses[idx] = self.solver.num_clauses() - before;
    }

    /// Decides one pattern query under `level` via assumptions: the
    /// level's guard on, every other installed guard off (so inactive
    /// groups are satisfied by unit propagation, not search), plus the
    /// requirement literals.
    ///
    /// `model` must be the very [`InstanceModel`] this solver was built
    /// from ([`PairSolver::new`]); it is consulted only when `level`'s
    /// axiom group is installed for the first time.
    pub fn satisfiable(
        &mut self,
        model: &InstanceModel,
        level: ConsistencyLevel,
        requirements: &[VisRequirement],
    ) -> bool {
        self.ensure_level(model, level);
        let assumptions = self.assumptions(level, requirements);
        self.solve(&assumptions).is_sat()
    }

    /// The assumption vector of one pattern query: the queried level's
    /// guard on, every other installed guard off, then the requirement
    /// literals — shared verbatim by [`PairSolver::satisfiable`] and
    /// [`PairSolver::witness`] so both decide the exact same query.
    fn assumptions(
        &self,
        level: ConsistencyLevel,
        requirements: &[VisRequirement],
    ) -> Vec<Lit> {
        let mut assumptions = Vec::with_capacity(requirements.len() + 4);
        for other in ConsistencyLevel::ALL {
            if let Some(g) = self.guards[other.index()] {
                assumptions.push(if other == level { g } else { !g });
            }
        }
        for &(a, c, polarity) in requirements {
            let l = self.enc.vis[a][c];
            assumptions.push(if polarity { l } else { !l });
        }
        assumptions
    }

    /// Decides the same query as [`PairSolver::satisfiable`] but, when it
    /// is satisfiable, decodes the solver's model into the full
    /// [`WitnessTruth`] — every `ord` and `vis` literal evaluated under the
    /// satisfying assignment. Returns `None` on UNSAT. The solver is
    /// deterministic, so identical queries decode identical witnesses.
    pub fn witness(
        &mut self,
        model: &InstanceModel,
        level: ConsistencyLevel,
        requirements: &[VisRequirement],
    ) -> Option<WitnessTruth> {
        self.ensure_level(model, level);
        let assumptions = self.assumptions(level, requirements);
        let result = self.solve(&assumptions);
        let m = result.model()?;
        let value = |l: Lit| m[l.var().index()] == l.is_positive();
        let n = self.enc.ord.len();
        let ord = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| self.enc.ord[i][j].map(&value).unwrap_or(false))
                    .collect()
            })
            .collect();
        let vis = self
            .enc
            .vis
            .iter()
            .map(|row| row.iter().map(|&l| value(l)).collect())
            .collect();
        Some(WitnessTruth { ord, vis })
    }

    /// Clauses this pair's shared encoding holds (excluding learnt ones).
    pub fn encoded_clauses(&self) -> usize {
        self.base_clauses + self.level_clauses.iter().sum::<usize>()
    }

    /// Clauses a fresh per-query encoding would have emitted for `level`.
    pub fn fresh_equivalent_clauses(&self, level: ConsistencyLevel) -> usize {
        self.base_clauses + self.level_clauses[level.index()]
    }

    /// Cumulative statistics of the underlying solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// The pair's stored CNF (root facts as units, then the encoded
    /// clauses), for replaying the *real* detection formula through raw
    /// solvers — the `solver_stats` microbench's arena-vs-baseline
    /// comparison input.
    pub fn problem_clauses(&self) -> Vec<Vec<Lit>> {
        self.solver.problem_clauses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::summarize_program;
    use atropos_dsl::parse;

    fn model_for(src: &str, t1: &str, t2: &str) -> InstanceModel {
        let p = parse(src).unwrap();
        let sums = summarize_program(&p);
        let s1 = sums.iter().find(|s| s.name == t1).unwrap();
        let s2 = sums.iter().find(|s| s.name == t2).unwrap();
        InstanceModel::new(s1, s2)
    }

    const COUNTER: &str = "schema T { id: int key, v: int }
         txn bump(k: int) {
             @R x := select v from T where id = k;
             @W update T set v = x.v + 1 where id = k;
             return 0;
         }";

    #[test]
    fn witness_records_unify_equal_keys() {
        let m = model_for(COUNTER, "bump", "bump");
        // One shared record class `k` for schema T.
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.cmds.len(), 4);
        assert_eq!(m.atoms.len(), 4);
    }

    #[test]
    fn lost_update_sat_under_ec_unsat_under_sc() {
        let m = model_for(COUNTER, "bump", "bump");
        let r = 0;
        // I1: R=0, W=1. I2: R=2, W=3.
        let a_w1 = m.atom(1, r).unwrap();
        let a_w2 = m.atom(3, r).unwrap();
        let reqs = [(a_w2, 0, false), (a_w1, 2, false)];
        assert!(pattern_satisfiable(
            &m,
            ConsistencyLevel::EventualConsistency,
            &reqs
        ));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::CausalConsistency, &reqs));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::RepeatableRead, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn session_visibility_is_forced() {
        let m = model_for(COUNTER, "bump", "bump");
        let r = 0;
        let a_w1 = m.atom(1, r).unwrap();
        // W's atom cannot be invisible to a later command of I1... there is
        // none after W, so check the read's atom instead: R's atom (reads
        // produce an atom too) must be visible to W (cmd 1).
        let a_r1 = m.atom(0, r).unwrap();
        assert!(!pattern_satisfiable(
            &m,
            ConsistencyLevel::EventualConsistency,
            &[(a_r1, 1, false)]
        ));
        // And W's atom cannot be visible to R (its own past).
        assert!(!pattern_satisfiable(
            &m,
            ConsistencyLevel::EventualConsistency,
            &[(a_w1, 0, true)]
        ));
    }

    const TWO_WRITES: &str = "schema A { id: int key, x: int }
         schema B { id: int key, y: int }
         txn wr(k: int) {
             @W1 update A set x = 1 where id = k;
             @W2 update B set y = 1 where id = k;
             return 0;
         }
         txn rd(k: int) {
             @R1 a := select x from A where id = k;
             @R2 bb := select y from B where id = k;
             return a.x + bb.y;
         }";

    #[test]
    fn dirty_read_sat_under_ec_and_cc_when_later_write_missing() {
        let m = model_for(TWO_WRITES, "wr", "rd");
        // I1: W1=0 (A), W2=1 (B). I2: R1=2 (A), R2=3 (B).
        let ra = m.cmds[2].records[0];
        let rb = m.cmds[3].records[0];
        let a_w1 = m.atom(0, ra).unwrap();
        let a_w2 = m.atom(1, rb).unwrap();
        // Observe W1 but not the later W2.
        let reqs = [(a_w1, 2, true), (a_w2, 3, false)];
        assert!(pattern_satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::CausalConsistency, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn causal_consistency_forbids_observing_later_but_not_earlier_write() {
        let m = model_for(TWO_WRITES, "wr", "rd");
        let ra = m.cmds[2].records[0];
        let rb = m.cmds[3].records[0];
        let a_w1 = m.atom(0, ra).unwrap();
        let a_w2 = m.atom(1, rb).unwrap();
        // Observe the *later* W2 at R2 but miss the earlier W1 at R1.
        // R2 runs after R1 in program order, so under CC the chain
        // W1 → (session) → W2 → R2 … does not force W1 at R1 (different
        // command): still satisfiable? The chain axiom only closes through
        // observers, and R1 never observed anything — so CC allows it.
        let reqs = [(a_w2, 3, true), (a_w1, 2, false)];
        assert!(pattern_satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        assert!(pattern_satisfiable(&m, ConsistencyLevel::CausalConsistency, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn repeatable_read_blocks_new_visibility_on_touched_record() {
        // One transaction reads the same record twice; the other writes it.
        let src = "schema T { id: int key, v: int }
             txn rr(k: int) {
                 @R1 x := select v from T where id = k;
                 @R2 y := select v from T where id = k;
                 return x.v + y.v;
             }
             txn w(k: int) {
                 @W update T set v = 9 where id = k;
                 return 0;
             }";
        let m = model_for(src, "rr", "w");
        let r = m.cmds[0].records[0];
        let a_w = m.atom(2, r).unwrap();
        // Second read sees the write, first read does not: classic
        // non-repeatable read — allowed under EC, forbidden under RR.
        let reqs = [(a_w, 1, true), (a_w, 0, false)];
        assert!(pattern_satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::RepeatableRead, &reqs));
        assert!(!pattern_satisfiable(&m, ConsistencyLevel::Serializable, &reqs));
    }

    #[test]
    fn witness_decodes_a_consistent_model() {
        let m = model_for(COUNTER, "bump", "bump");
        let r = 0;
        let a_w1 = m.atom(1, r).unwrap();
        let a_w2 = m.atom(3, r).unwrap();
        let reqs = [(a_w2, 0, false), (a_w1, 2, false)];
        let mut s = PairSolver::new(&m);
        let w = s
            .witness(&m, ConsistencyLevel::EventualConsistency, &reqs)
            .expect("lost update is EC-satisfiable");
        // The decoded vis honours the query's requirements…
        assert!(!w.vis[a_w2][0]);
        assert!(!w.vis[a_w1][2]);
        // …and the decoded ord is a valid total order: the arbitration
        // positions form a permutation and agree with program order.
        let mut pos: Vec<usize> = (0..m.cmds.len())
            .map(|c| w.arbitration_position(c))
            .collect();
        assert!(w.ord[0][1] && w.ord[2][3], "program order embedded");
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 1, 2, 3]);
        // Decoding twice yields the same witness (solver determinism), and
        // the same solver still answers plain queries afterwards.
        let again = s.witness(&m, ConsistencyLevel::EventualConsistency, &reqs);
        assert_eq!(again.as_ref(), Some(&w));
        assert!(s.satisfiable(&m, ConsistencyLevel::EventualConsistency, &reqs));
        // UNSAT queries decode to no witness.
        assert!(s.witness(&m, ConsistencyLevel::Serializable, &reqs).is_none());
    }

    #[test]
    fn fresh_inserts_get_distinct_records() {
        let src = "schema L { id: int key, u: uuid key, n: int }
             txn log(k: int) {
                 @I insert into L values (id = k, u = uuid(), n = 1);
                 return 0;
             }";
        let m = model_for(src, "log", "log");
        assert_eq!(m.records.len(), 2);
        assert_ne!(m.cmds[0].records, m.cmds[1].records);
    }

    #[test]
    fn scans_touch_fresh_records() {
        let src = "schema L { id: int key, u: uuid key, n: int }
             txn log(k: int) {
                 @I insert into L values (id = k, u = uuid(), n = 1);
                 return 0;
             }
             txn rd() {
                 @S x := select n from L;
                 return sum(x.n);
             }";
        let m = model_for(src, "log", "rd");
        // Scan touches the fresh record of the insert.
        let fresh_rec = m.cmds[0].records[0];
        assert!(m.cmds[1].records.contains(&fresh_rec));
    }
}
