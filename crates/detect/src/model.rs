//! Static command summaries used by the anomaly detector.
//!
//! Each database command of a transaction is summarized by the schema it
//! touches, the fields it reads and writes, and a *key specification*
//! describing which records its `WHERE` clause can select. Control flow is
//! over-approximated: `if` bodies and one unrolling of `iterate` bodies are
//! included unconditionally, which is sound for *may*-anomaly detection.

use std::collections::BTreeSet;

use atropos_dsl::{CmdLabel, Expr, Program, Stmt, Transaction, Where, ALIVE_FIELD};

/// Which records a command may access, derived from its `WHERE` clause
/// (or `VALUES` for inserts).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum KeySpec {
    /// Equality constraints on every primary-key field; the canonical string
    /// is the printed tuple of key expressions. Two commands with the same
    /// canonical key may (and, within one transaction instance, must) access
    /// the same record. `constant` marks keys built purely from literals,
    /// which *cannot* alias a different constant key.
    Keyed {
        /// Canonical printed key tuple.
        key: String,
        /// True when every key expression is a literal constant.
        constant: bool,
    },
    /// The command may touch any record of the schema (full or partial scan).
    Scan,
    /// An insert whose primary key contains `uuid()`: it creates a record no
    /// other keyed command can name in advance.
    Fresh,
}

/// Whether the command reads or writes the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// A `SELECT`.
    Select,
    /// An `UPDATE`.
    Update,
    /// An `INSERT`.
    Insert,
    /// A `DELETE`.
    Delete,
}

/// Static summary of one database command.
#[derive(Debug, Clone)]
pub struct CmdSummary {
    /// Command label.
    pub label: CmdLabel,
    /// Command kind.
    pub kind: CmdKind,
    /// Schema accessed.
    pub schema: String,
    /// Fields read (where-clause fields plus projected fields plus `alive`).
    pub reads: BTreeSet<String>,
    /// Fields written (assigned/inserted fields; `alive` for insert/delete).
    pub writes: BTreeSet<String>,
    /// Record specification.
    pub key: KeySpec,
    /// Position in the flattened command sequence of the transaction.
    pub prog_index: usize,
    /// For selects, the bound variable (used for read-modify-write detection).
    pub bound_var: Option<String>,
    /// Variables whose values flow into this command (where clause or
    /// assigned expressions), used for read-modify-write detection.
    pub uses_vars: BTreeSet<String>,
}

/// Static summary of one transaction: its command summaries in program order.
#[derive(Debug, Clone)]
pub struct TxnSummary {
    /// Transaction name.
    pub name: String,
    /// Command summaries in program order.
    pub commands: Vec<CmdSummary>,
}

impl TxnSummary {
    /// Read-modify-write pairs: a select binding `x` on `(schema, field)`
    /// followed by a write to the same `(schema, field)` of an aliasing
    /// record whose assigned expressions or key depend on `x` — or simply a
    /// later write to the same field of the same key class (blind RMW).
    pub fn rmw_pairs(&self) -> Vec<(usize, usize, String)> {
        let mut out = Vec::new();
        for (i, c) in self.commands.iter().enumerate() {
            if c.kind != CmdKind::Select {
                continue;
            }
            for (j, w) in self.commands.iter().enumerate() {
                if j <= i || w.writes.is_empty() || w.schema != c.schema {
                    continue;
                }
                if !may_alias(&c.key, &w.key) {
                    continue;
                }
                let data_dep = c
                    .bound_var
                    .as_ref()
                    .is_some_and(|v| w.uses_vars.contains(v));
                for f in c.reads.intersection(&w.writes) {
                    if f == ALIVE_FIELD {
                        continue;
                    }
                    if data_dep || c.reads.contains(f) {
                        out.push((i, j, f.clone()));
                    }
                }
            }
        }
        out
    }
}

/// May two key specifications refer to a common record?
///
/// * Two `Keyed` specs may alias iff their canonical keys are equal
///   (arguments of different instances are assumed equal — worst case).
/// * `Scan` aliases everything, including freshly inserted records.
/// * Two `Fresh` specs never alias (distinct `uuid()` keys), and `Fresh`
///   never aliases a `Keyed` spec (the key cannot be guessed).
pub fn may_alias(a: &KeySpec, b: &KeySpec) -> bool {
    match (a, b) {
        (
            KeySpec::Keyed { key: x, constant: cx },
            KeySpec::Keyed { key: y, constant: cy },
        ) => x == y || !(*cx && *cy),
        (KeySpec::Fresh, KeySpec::Fresh) => false,
        (KeySpec::Fresh, KeySpec::Keyed { .. }) | (KeySpec::Keyed { .. }, KeySpec::Fresh) => false,
        (KeySpec::Scan, _) | (_, KeySpec::Scan) => true,
    }
}

fn key_spec_of_where(program: &Program, schema: &str, where_: &Where) -> KeySpec {
    let Some(decl) = program.schema(schema) else {
        return KeySpec::Scan;
    };
    let pk = decl.primary_key();
    let mut parts = Vec::new();
    let mut constant = true;
    for k in &pk {
        match where_.eq_expr_for(k) {
            Some(e) => {
                if !matches!(e, Expr::Const(_)) {
                    constant = false;
                }
                parts.push(atropos_dsl::print_expr(e));
            }
            None => return KeySpec::Scan,
        }
    }
    KeySpec::Keyed {
        key: parts.join("|"),
        constant,
    }
}

fn key_spec_of_insert(program: &Program, schema: &str, values: &[(String, Expr)]) -> KeySpec {
    let Some(decl) = program.schema(schema) else {
        return KeySpec::Scan;
    };
    let mut parts = Vec::new();
    let mut constant = true;
    for k in decl.primary_key() {
        let Some((_, e)) = values.iter().find(|(f, _)| f == k) else {
            return KeySpec::Scan;
        };
        let mut has_uuid = false;
        e.walk(&mut |x| {
            if matches!(x, Expr::Uuid) {
                has_uuid = true;
            }
        });
        if has_uuid {
            return KeySpec::Fresh;
        }
        if !matches!(e, Expr::Const(_)) {
            constant = false;
        }
        parts.push(atropos_dsl::print_expr(e));
    }
    KeySpec::Keyed {
        key: parts.join("|"),
        constant,
    }
}

fn vars_of_exprs<'a>(exprs: impl Iterator<Item = &'a Expr>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for e in exprs {
        e.walk(&mut |x| {
            if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = x {
                out.insert(v.clone());
            }
        });
    }
    out
}

fn vars_of_where(w: &Where) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    w.walk_exprs(&mut |e| {
        if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = e {
            out.insert(v.clone());
        }
    });
    out
}

fn summarize_body(program: &Program, body: &[Stmt], out: &mut Vec<CmdSummary>) {
    for s in body {
        match s {
            Stmt::If { body, .. } | Stmt::Iterate { body, .. } => {
                summarize_body(program, body, out)
            }
            Stmt::Select(c) => {
                let decl = program.schema(&c.schema);
                let mut reads: BTreeSet<String> = c.where_.fields().into_iter().collect();
                match &c.fields {
                    Some(fs) => reads.extend(fs.iter().cloned()),
                    None => {
                        if let Some(d) = decl {
                            reads.extend(d.fields.iter().map(|f| f.name.clone()));
                        }
                    }
                }
                reads.insert(ALIVE_FIELD.to_owned());
                out.push(CmdSummary {
                    label: c.label.clone(),
                    kind: CmdKind::Select,
                    schema: c.schema.clone(),
                    reads,
                    writes: BTreeSet::new(),
                    key: key_spec_of_where(program, &c.schema, &c.where_),
                    prog_index: out.len(),
                    bound_var: Some(c.var.clone()),
                    uses_vars: vars_of_where(&c.where_),
                });
            }
            Stmt::Update(c) => {
                let mut uses = vars_of_where(&c.where_);
                uses.extend(vars_of_exprs(c.assigns.iter().map(|(_, e)| e)));
                out.push(CmdSummary {
                    label: c.label.clone(),
                    kind: CmdKind::Update,
                    schema: c.schema.clone(),
                    reads: BTreeSet::new(),
                    writes: c.assigns.iter().map(|(f, _)| f.clone()).collect(),
                    key: key_spec_of_where(program, &c.schema, &c.where_),
                    prog_index: out.len(),
                    bound_var: None,
                    uses_vars: uses,
                });
            }
            Stmt::Insert(c) => {
                let mut writes: BTreeSet<String> =
                    c.values.iter().map(|(f, _)| f.clone()).collect();
                writes.insert(ALIVE_FIELD.to_owned());
                out.push(CmdSummary {
                    label: c.label.clone(),
                    kind: CmdKind::Insert,
                    schema: c.schema.clone(),
                    reads: BTreeSet::new(),
                    writes,
                    key: key_spec_of_insert(program, &c.schema, &c.values),
                    prog_index: out.len(),
                    bound_var: None,
                    uses_vars: vars_of_exprs(c.values.iter().map(|(_, e)| e)),
                });
            }
            Stmt::Delete(c) => out.push(CmdSummary {
                label: c.label.clone(),
                kind: CmdKind::Delete,
                schema: c.schema.clone(),
                reads: BTreeSet::new(),
                writes: BTreeSet::from([ALIVE_FIELD.to_owned()]),
                key: key_spec_of_where(program, &c.schema, &c.where_),
                prog_index: out.len(),
                bound_var: None,
                uses_vars: vars_of_where(&c.where_),
            }),
        }
    }
}

/// Summarizes one transaction.
pub fn summarize_txn(program: &Program, txn: &Transaction) -> TxnSummary {
    let mut commands = Vec::new();
    summarize_body(program, &txn.body, &mut commands);
    TxnSummary {
        name: txn.name.clone(),
        commands,
    }
}

/// Summarizes every transaction of a program.
pub fn summarize_program(program: &Program) -> Vec<TxnSummary> {
    program
        .transactions
        .iter()
        .map(|t| summarize_txn(program, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    fn course() -> Program {
        parse(
            "schema STUDENT { st_id: int key, st_name: string, st_em_id: int }
             schema COURSE { co_id: int key, co_st_cnt: int }
             schema LOG { co_id: int key, log_id: uuid key, n: int }
             txn regSt(id: int, course: int) {
                 @U3 update STUDENT set st_name = \"x\" where st_id = id;
                 @S5 x := select co_st_cnt from COURSE where co_id = course;
                 @U4 update COURSE set co_st_cnt = x.co_st_cnt + 1 where co_id = course;
                 @I1 insert into LOG values (co_id = course, log_id = uuid(), n = 1);
                 return 0;
             }
             txn scanAll() {
                 @SA x := select co_st_cnt from COURSE;
                 return sum(x.co_st_cnt);
             }",
        )
        .unwrap()
    }

    #[test]
    fn key_specs_are_classified() {
        let p = course();
        let s = summarize_txn(&p, p.transaction("regSt").unwrap());
        assert_eq!(s.commands.len(), 4);
        assert!(matches!(s.commands[0].key, KeySpec::Keyed { .. }));
        assert!(matches!(s.commands[3].key, KeySpec::Fresh));
        let scan = summarize_txn(&p, p.transaction("scanAll").unwrap());
        assert_eq!(scan.commands[0].key, KeySpec::Scan);
    }

    #[test]
    fn reads_and_writes_are_collected() {
        let p = course();
        let s = summarize_txn(&p, p.transaction("regSt").unwrap());
        let sel = &s.commands[1];
        assert!(sel.reads.contains("co_st_cnt"));
        assert!(sel.reads.contains("co_id"));
        assert!(sel.reads.contains(ALIVE_FIELD));
        let upd = &s.commands[2];
        assert_eq!(
            upd.writes,
            BTreeSet::from(["co_st_cnt".to_owned()])
        );
        let ins = &s.commands[3];
        assert!(ins.writes.contains("n") && ins.writes.contains(ALIVE_FIELD));
    }

    #[test]
    fn rmw_pair_detected_for_counter_increment() {
        let p = course();
        let s = summarize_txn(&p, p.transaction("regSt").unwrap());
        let rmw = s.rmw_pairs();
        assert_eq!(rmw.len(), 1);
        let (i, j, f) = &rmw[0];
        assert_eq!(s.commands[*i].label.0, "S5");
        assert_eq!(s.commands[*j].label.0, "U4");
        assert_eq!(f, "co_st_cnt");
    }

    #[test]
    fn alias_rules() {
        let k1 = KeySpec::Keyed { key: "id".into(), constant: false };
        let k2 = KeySpec::Keyed { key: "course".into(), constant: false };
        let c1 = KeySpec::Keyed { key: "1".into(), constant: true };
        let c2 = KeySpec::Keyed { key: "2".into(), constant: true };
        assert!(may_alias(&k1, &k1));
        assert!(may_alias(&k1, &k2)); // different variables may be equal
        assert!(may_alias(&k1, &c1)); // variable may equal a constant
        assert!(!may_alias(&c1, &c2)); // distinct constants never alias
        assert!(may_alias(&KeySpec::Scan, &k1));
        assert!(may_alias(&KeySpec::Scan, &KeySpec::Fresh));
        assert!(!may_alias(&KeySpec::Fresh, &KeySpec::Fresh));
        assert!(!may_alias(&KeySpec::Fresh, &k1));
    }

    #[test]
    fn control_flow_bodies_are_included() {
        let p = parse(
            "schema T { id: int key, v: int }
             txn t(a: int) {
                 if (a > 0) { @X update T set v = 1 where id = a; }
                 iterate (a) { @Y update T set v = 2 where id = iter; }
                 return 0;
             }",
        )
        .unwrap();
        let s = summarize_txn(&p, p.transaction("t").unwrap());
        assert_eq!(s.commands.len(), 2);
        // `where id = iter` pins the key to a loop-dependent expression.
        assert!(matches!(s.commands[1].key, KeySpec::Keyed { .. }));
    }
}
