//! The bounded **three-instance** detection mode: chain anomalies the
//! two-instance pair oracle provably cannot express.
//!
//! The paper's detector (and this crate's [`crate::detect`] module) grounds
//! every anomaly query over a *two*-instance skeleton. That bound is blind
//! to serializability violations whose witness needs **three distinct
//! transactions** — the observer-chain causality violations CLOTHO-style
//! directed testing surfaces in real applications. This module widens the
//! bound by one instance:
//!
//! * [`TripleModel`] — the three-instance execution skeleton, grounded by
//!   the same multi-instance builder as the pair model
//!   ([`InstanceModel::new_multi`]), so `ord`/`vis` and every per-level
//!   axiom group generalize without a second encoder;
//! * [`TripleSolver`] — the incremental solver for one triple: a thin
//!   wrapper over the assumption-based [`PairSolver`] machinery (lazily
//!   installed, activation-literal-guarded level groups, queries via
//!   assumptions, learnt-clause retention);
//! * three **chain templates**, each placing visibility requirements on
//!   commands of all three instances — so none of them is expressible in
//!   the two-instance skeleton *by construction*:
//!
//!   1. **Observer chain** (relayed causality): `T_a` writes; `T_b` reads
//!      that write and derives a write of its own; `T_c` observes the
//!      derived write yet misses the origin. Realizable under EC, refuted
//!      by the causal-closure axioms at CC and above.
//!   2. **Circular write skew** over three keys: each instance's
//!      read-modify-write misses the previous instance's write, closing a
//!      three-edge dependency cycle. Every *pairwise* projection of the
//!      cycle is serializable (order the two the other way around), so the
//!      pair oracle cannot see it; the full cycle is refuted only at SC.
//!   3. **Fractured-read chain**: `T_a` writes two records atomically;
//!      `T_b` relays one half to `T_c`, which never observes the other
//!      half. An atomic-visibility violation laundered through a relay —
//!      the pair dirty-read template needs both halves observed by *one*
//!      foreign instance and so misses it.
//!
//! # Bound and cost model
//!
//! Triples are enumerated over **unordered triples of distinct
//! transactions** (pairs-with-repetition remain the pair oracle's job), and
//! every template is tried under each role permutation of the three
//! instances (permutations equivalent under equal transaction fingerprints
//! are skipped; the write-skew cycle pins its first role to the first
//! instance, since rotations describe the same cycle). Candidate tuples are
//! enumerated statically from the command summaries; a triple with no
//! candidate never grounds a model or touches a solver. Per (template,
//! role) the search stops at the **first satisfiable witness**, the
//! nested-loop enumeration keeps one tuple per outermost anchor command,
//! and each candidate's witness record pair is the first aliasing pair in
//! model order — deliberate bounds (part of the template definitions, like
//! the pair templates' own early breaks) that trade exhaustive witness
//! enumeration for a query budget within a small multiple of the pair
//! pass.

use std::collections::BTreeSet;

use crate::detect::{make_pair, AccessPair, AnomalyKind};
use crate::encode::{ConsistencyLevel, InstanceModel, PairSolver, VisRequirement};
use crate::model::{may_alias, CmdKind, CmdSummary, TxnSummary};
use atropos_sat::SolverStats;

/// The grounded three-instance execution skeleton for a transaction triple.
///
/// A thin, purpose-named wrapper over the instance-count-generic
/// [`InstanceModel`]: the triple templates address commands as
/// `(instance, local index)` pairs through [`TripleModel::cmd`].
#[derive(Debug, Clone)]
pub struct TripleModel {
    /// The underlying three-instance model.
    pub model: InstanceModel,
}

impl TripleModel {
    /// Grounds the skeleton over three transaction instances.
    pub fn new(t0: &TxnSummary, t1: &TxnSummary, t2: &TxnSummary) -> TripleModel {
        TripleModel {
            model: InstanceModel::new_multi(&[t0, t1, t2]),
        }
    }

    /// Global command index of instance `inst`'s `local`-th command.
    fn cmd(&self, c: Cmd) -> usize {
        self.model.cmd_index(c.inst, c.local)
    }

    /// The atom of `w`'s events on the first of its witness records that
    /// may alias a record `reader` touches — the record pair a chain
    /// requirement is grounded on (see the module docs' cost model).
    fn write_atom(&self, w: Cmd, reader: Cmd) -> Option<usize> {
        let (wm, rm) = (self.cmd(w), self.cmd(reader));
        for &rw in &self.model.cmds[wm].records {
            if self.model.cmds[rm]
                .records
                .iter()
                .any(|&dr| self.model.may_alias_records(rw, dr))
            {
                return self.model.atom(wm, rw);
            }
        }
        None
    }
}

/// An incremental anomaly oracle for one transaction triple: the
/// [`PairSolver`] machinery (shared base encoding, guarded level groups,
/// assumption-dispatched queries) over the three-instance skeleton.
pub struct TripleSolver {
    inner: PairSolver,
}

impl TripleSolver {
    /// Builds the level-independent three-instance encoding; each level's
    /// axiom group is added lazily on first query.
    pub fn new(tm: &TripleModel) -> TripleSolver {
        TripleSolver::with_proofs(tm, false)
    }

    /// Like [`TripleSolver::new`], but with `proofs` on every UNSAT chain
    /// query yields a checkable certificate blob (see
    /// [`PairSolver::with_proofs`]).
    pub fn with_proofs(tm: &TripleModel, proofs: bool) -> TripleSolver {
        TripleSolver {
            inner: PairSolver::with_proofs(&tm.model, proofs),
        }
    }

    /// Drains the certificates captured since the last call (see
    /// [`PairSolver::take_certificates`]).
    pub fn take_certificates(&mut self) -> Vec<Vec<u8>> {
        self.inner.take_certificates()
    }

    /// Decides one chain query under `level` via assumptions. `tm` must be
    /// the very model this solver was built from.
    pub fn satisfiable(
        &mut self,
        tm: &TripleModel,
        level: ConsistencyLevel,
        requirements: &[VisRequirement],
    ) -> bool {
        self.inner.satisfiable(&tm.model, level, requirements)
    }

    /// Decides the same query as [`TripleSolver::satisfiable`] and, when
    /// satisfiable, decodes the solver's model into the three-instance
    /// [`crate::encode::WitnessTruth`] (see [`PairSolver::witness`]).
    pub fn witness(
        &mut self,
        tm: &TripleModel,
        level: ConsistencyLevel,
        requirements: &[VisRequirement],
    ) -> Option<crate::encode::WitnessTruth> {
        self.inner.witness(&tm.model, level, requirements)
    }

    /// Clauses this triple's shared encoding holds (excluding learnt ones).
    pub fn encoded_clauses(&self) -> usize {
        self.inner.encoded_clauses()
    }

    /// Clauses a fresh per-query encoding would have emitted for `level`.
    pub fn fresh_equivalent_clauses(&self, level: ConsistencyLevel) -> usize {
        self.inner.fresh_equivalent_clauses(level)
    }

    /// Cumulative statistics of the underlying solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.inner.solver_stats()
    }

    /// The triple's stored CNF (see [`PairSolver::problem_clauses`]).
    pub fn problem_clauses(&self) -> Vec<Vec<atropos_sat::Lit>> {
        self.inner.problem_clauses()
    }

    /// Imports lemmas published by a fingerprint-identical triple solve
    /// (see [`PairSolver::seed_learnts`]).
    pub(crate) fn seed_learnts(&mut self, clauses: &[Vec<atropos_sat::Lit>]) -> usize {
        self.inner.seed_learnts(clauses)
    }

    /// Exports this solver's base-variable-only lemmas (see
    /// [`PairSolver::export_learnts`]).
    pub(crate) fn export_learnts(&self) -> Vec<Vec<atropos_sat::Lit>> {
        self.inner.export_learnts()
    }
}

// Retained triple solvers migrate between the detection engine's workers
// exactly like pair solvers do.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TripleSolver>();
    assert_send::<TripleModel>();
};

/// A command addressed as (instance, local index) — local index doubles as
/// the program position, so `a.local < b.local` is program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Cmd {
    inst: usize,
    local: usize,
}

/// One statically enumerated chain-template candidate, with its commands
/// bound to model instances by the role permutation that produced it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Candidate {
    /// Observer chain: origin write, relay read, relay write, observer's
    /// chain read, observer's missing read.
    Chain { w1: Cmd, r2: Cmd, w2: Cmd, r3a: Cmd, r3b: Cmd },
    /// Write-skew cycle: the (read, write) dependency pair of each role.
    Skew { r: [Cmd; 3], w: [Cmd; 3] },
    /// Fractured-read chain: the atomic write pair, the relay's read and
    /// write, the observer's chain read and missing read.
    Fractured { wa1: Cmd, wa2: Cmd, rb: Cmd, wb: Cmd, rc1: Cmd, rc2: Cmd },
}

impl Candidate {
    /// Discriminant for the first-witness-per-(template, role) bound.
    fn template(&self) -> u8 {
        match self {
            Candidate::Chain { .. } => 0,
            Candidate::Skew { .. } => 1,
            Candidate::Fractured { .. } => 2,
        }
    }
}

/// All six role permutations of three instances, in lexicographic order.
const PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

fn is_select(c: &CmdSummary) -> bool {
    c.kind == CmdKind::Select
}

fn is_write(c: &CmdSummary) -> bool {
    !c.writes.is_empty()
}

/// Does `r` read a field `w` writes, on a possibly shared record?
fn observes(w: &CmdSummary, r: &CmdSummary) -> bool {
    w.schema == r.schema
        && may_alias(&w.key, &r.key)
        && w.writes.intersection(&r.reads).next().is_some()
}

/// Does `w`'s assigned data flow from the row `r` bound?
fn data_dep(r: &CmdSummary, w: &CmdSummary) -> bool {
    r.bound_var.as_ref().is_some_and(|v| w.uses_vars.contains(v))
}

/// The (read, write) data-dependency pairs of one instance: a select whose
/// bound row flows into a later write — the per-instance edge of the
/// write-skew cycle.
fn dep_pairs(t: &TxnSummary, inst: usize) -> Vec<(Cmd, Cmd)> {
    let mut out = Vec::new();
    for (ri, r) in t.commands.iter().enumerate() {
        if !is_select(r) {
            continue;
        }
        for (wi, w) in t.commands.iter().enumerate() {
            if wi > ri && is_write(w) && data_dep(r, w) {
                out.push((Cmd { inst, local: ri }, Cmd { inst, local: wi }));
            }
        }
    }
    out
}

/// Statically enumerates every chain-template candidate of a transaction
/// triple (summaries in model instance order), stopping at `cap` — the
/// prefilter passes `cap = 1` to decide whether the triple is worth
/// grounding at all. Role permutations equivalent under equal fingerprints
/// are visited once.
pub(crate) fn collect_candidates(
    ts: [&TxnSummary; 3],
    fps: [u64; 3],
    cap: usize,
) -> Vec<(u8, Candidate)> {
    let mut out: Vec<(u8, Candidate)> = Vec::new();
    let mut seen: Vec<[u64; 3]> = Vec::new();
    for (pi, perm) in PERMS.iter().enumerate() {
        let shape = [fps[perm[0]], fps[perm[1]], fps[perm[2]]];
        if seen.contains(&shape) {
            continue;
        }
        seen.push(shape);
        let (a, b, c) = (perm[0], perm[1], perm[2]);
        let (ta, tb, tc) = (ts[a], ts[b], ts[c]);
        let pi = pi as u8;

        // ---- Observer chain. ----
        'chain: for (i1, w1) in ta.commands.iter().enumerate() {
            if !is_write(w1) {
                continue;
            }
            for (i2, r2) in tb.commands.iter().enumerate() {
                if !is_select(r2) || !observes(w1, r2) {
                    continue;
                }
                for (i3, w2) in tb.commands.iter().enumerate() {
                    if i3 <= i2 || !is_write(w2) || !data_dep(r2, w2) {
                        continue;
                    }
                    for (i4, r3a) in tc.commands.iter().enumerate() {
                        if !is_select(r3a) || !observes(w2, r3a) {
                            continue;
                        }
                        for (i5, r3b) in tc.commands.iter().enumerate() {
                            if i5 <= i4 || !is_select(r3b) || !observes(w1, r3b) {
                                continue;
                            }
                            out.push((
                                pi,
                                Candidate::Chain {
                                    w1: Cmd { inst: a, local: i1 },
                                    r2: Cmd { inst: b, local: i2 },
                                    w2: Cmd { inst: b, local: i3 },
                                    r3a: Cmd { inst: c, local: i4 },
                                    r3b: Cmd { inst: c, local: i5 },
                                },
                            ));
                            if out.len() >= cap {
                                return out;
                            }
                            continue 'chain;
                        }
                    }
                }
            }
        }

        // ---- Circular write skew: role A is pinned to the first instance
        // of the permutation pair (0, x, y) — rotations of a cycle are the
        // same cycle, so only the two non-rotated permutations run it. ----
        if a == 0 {
            let (da, db, dc) = (dep_pairs(ta, a), dep_pairs(tb, b), dep_pairs(tc, c));
            for &(r_a, w_a) in &da {
                for &(r_b, w_b) in &db {
                    if !observes(&ta.commands[w_a.local], &tb.commands[r_b.local]) {
                        continue;
                    }
                    for &(r_c, w_c) in &dc {
                        if !observes(&tb.commands[w_b.local], &tc.commands[r_c.local])
                            || !observes(&tc.commands[w_c.local], &ta.commands[r_a.local])
                        {
                            continue;
                        }
                        out.push((
                            pi,
                            Candidate::Skew {
                                r: [r_a, r_b, r_c],
                                w: [w_a, w_b, w_c],
                            },
                        ));
                        if out.len() >= cap {
                            return out;
                        }
                    }
                }
            }
        }

        // ---- Fractured-read chain. ----
        'fractured: for (i1, wa1) in ta.commands.iter().enumerate() {
            if !is_write(wa1) {
                continue;
            }
            for (i2, wa2) in ta.commands.iter().enumerate() {
                if i2 == i1 || !is_write(wa2) {
                    continue;
                }
                for (i3, rb) in tb.commands.iter().enumerate() {
                    if !is_select(rb) || !observes(wa1, rb) {
                        continue;
                    }
                    for (i4, wb) in tb.commands.iter().enumerate() {
                        if i4 <= i3 || !is_write(wb) || !data_dep(rb, wb) {
                            continue;
                        }
                        for (i5, rc1) in tc.commands.iter().enumerate() {
                            if !is_select(rc1) || !observes(wb, rc1) {
                                continue;
                            }
                            for (i6, rc2) in tc.commands.iter().enumerate() {
                                if i6 <= i5 || !is_select(rc2) || !observes(wa2, rc2) {
                                    continue;
                                }
                                out.push((
                                    pi,
                                    Candidate::Fractured {
                                        wa1: Cmd { inst: a, local: i1 },
                                        wa2: Cmd { inst: a, local: i2 },
                                        rb: Cmd { inst: b, local: i3 },
                                        wb: Cmd { inst: b, local: i4 },
                                        rc1: Cmd { inst: c, local: i5 },
                                        rc2: Cmd { inst: c, local: i6 },
                                    },
                                ));
                                if out.len() >= cap {
                                    return out;
                                }
                                continue 'fractured;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Does any chain template have at least one candidate on this triple?
/// The static prefilter the engine runs before grounding a model: a triple
/// with no candidate issues no query and caches an empty verdict.
pub(crate) fn has_candidates(ts: [&TxnSummary; 3], fps: [u64; 3]) -> bool {
    !collect_candidates(ts, fps, 1).is_empty()
}

/// The visibility requirements of one candidate, or `None` when a required
/// witness record pair does not alias in the grounded model.
pub(crate) fn requirements(tm: &TripleModel, cand: &Candidate) -> Option<Vec<VisRequirement>> {
    Some(match *cand {
        Candidate::Chain { w1, r2, w2, r3a, r3b } => vec![
            (tm.write_atom(w1, r2)?, tm.cmd(r2), true),
            (tm.write_atom(w2, r3a)?, tm.cmd(r3a), true),
            (tm.write_atom(w1, r3b)?, tm.cmd(r3b), false),
        ],
        Candidate::Skew { r, w } => vec![
            (tm.write_atom(w[0], r[1])?, tm.cmd(r[1]), false),
            (tm.write_atom(w[1], r[2])?, tm.cmd(r[2]), false),
            (tm.write_atom(w[2], r[0])?, tm.cmd(r[0]), false),
        ],
        Candidate::Fractured { wa1, wa2, rb, wb, rc1, rc2 } => vec![
            (tm.write_atom(wa1, rb)?, tm.cmd(rb), true),
            (tm.write_atom(wb, rc1)?, tm.cmd(rc1), true),
            (tm.write_atom(wa2, rc2)?, tm.cmd(rc2), false),
        ],
    })
}

/// The reported anomaly of one satisfiable candidate: anchored on the
/// broken edge's (write, missing read) commands, with the relaying
/// transaction(s) as witnesses — so [`crate::AccessPair::witnesses`] names
/// exactly the coordination set a repair would have to cover.
pub(crate) fn anomaly(ts: [&TxnSummary; 3], cand: &Candidate) -> AccessPair {
    let cmd = |c: Cmd| -> &CmdSummary { &ts[c.inst].commands[c.local] };
    let shared = |w: &CmdSummary, r: &CmdSummary| -> BTreeSet<String> {
        w.writes.intersection(&r.reads).cloned().collect()
    };
    match *cand {
        Candidate::Chain { w1, r3b, r2, .. } => {
            let (wc, rc) = (cmd(w1), cmd(r3b));
            let fields = shared(wc, rc);
            make_pair(
                ts[w1.inst],
                wc,
                fields.clone(),
                ts[r3b.inst],
                rc,
                fields,
                BTreeSet::from([ts[r2.inst].name.clone()]),
                AnomalyKind::ObserverChain,
            )
        }
        Candidate::Skew { r, w } => {
            let (wc, rc) = (cmd(w[2]), cmd(r[0]));
            let fields = shared(wc, rc);
            make_pair(
                ts[r[0].inst],
                rc,
                fields.clone(),
                ts[w[2].inst],
                wc,
                fields,
                BTreeSet::from([ts[r[1].inst].name.clone()]),
                AnomalyKind::WriteSkewCycle,
            )
        }
        Candidate::Fractured { wa2, rc2, rb, .. } => {
            let (wc, rc) = (cmd(wa2), cmd(rc2));
            let fields = shared(wc, rc);
            make_pair(
                ts[wa2.inst],
                wc,
                fields.clone(),
                ts[rc2.inst],
                rc,
                fields,
                BTreeSet::from([ts[rb.inst].name.clone()]),
                AnomalyKind::FracturedRead,
            )
        }
    }
}

/// Retained per-triple analysis state: the grounded three-instance model
/// and, once a query was issued, the incremental solver built on it —
/// the triple sibling of [`crate::cache::PairState`], held in the verdict
/// cache's sharded retention map and migrating freely between workers.
pub(crate) struct TripleState {
    pub(crate) model: TripleModel,
    pub(crate) solver: Option<TripleSolver>,
    pub(crate) txns: [String; 3],
}

impl TripleState {
    /// Grounds a fresh analysis state for one transaction triple.
    pub(crate) fn new(ts: [&TxnSummary; 3]) -> TripleState {
        TripleState {
            model: TripleModel::new(ts[0], ts[1], ts[2]),
            solver: None,
            txns: [ts[0].name.clone(), ts[1].name.clone(), ts[2].name.clone()],
        }
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TripleState>();
};

/// Analyses one dirty (cache-missed) transaction triple against its
/// retained (or freshly grounded) [`TripleState`], returning the raw
/// verdicts and this triple's [`crate::DetectStats`] delta — the single
/// solving path shared by every worker of the engine's triple phase.
pub(crate) fn solve_triple_with_state(
    ts: [&TxnSummary; 3],
    fps: [u64; 3],
    level: ConsistencyLevel,
    state: &mut TripleState,
    seed: Option<&[Vec<atropos_sat::Lit>]>,
    proofs: bool,
) -> (Vec<AccessPair>, crate::DetectStats, Vec<Vec<u8>>) {
    use std::collections::HashMap;
    let mut stats = crate::DetectStats::default();
    let clauses_before = state
        .solver
        .as_ref()
        .map(|s| (s.encoded_clauses(), s.solver_stats()));
    let candidates = collect_candidates(ts, fps, usize::MAX);
    let mut out = Vec::new();
    {
        let (tm, solver) = (&state.model, &mut state.solver);
        let mut memo: HashMap<Vec<VisRequirement>, bool> = HashMap::new();
        // First witness per (template, role permutation): once a template
        // found a realizable chain under one role assignment, later
        // candidates of the same shape are redundant witnesses.
        let mut done: Vec<(u8, u8)> = Vec::new();
        for (perm, cand) in &candidates {
            let key = (cand.template(), *perm);
            if done.contains(&key) {
                continue;
            }
            let Some(reqs) = requirements(tm, cand) else { continue };
            let sat = match memo.get(&reqs) {
                Some(&r) => {
                    stats.memo_hits += 1;
                    r
                }
                None => {
                    stats.queries += 1;
                    let s = solver.get_or_insert_with(|| {
                        let mut s = TripleSolver::with_proofs(tm, proofs);
                        if let Some(seed) = seed {
                            s.seed_learnts(seed);
                            stats.learnt_seeded += seed.len() as u64;
                        }
                        s
                    });
                    let r = s.satisfiable(tm, level, &reqs);
                    stats.clauses_fresh_equivalent += s.fresh_equivalent_clauses(level) as u64;
                    if r {
                        stats.sat_queries += 1;
                    }
                    memo.insert(reqs, r);
                    r
                }
            };
            if sat {
                out.push(anomaly(ts, cand));
                done.push(key);
            }
        }
    }
    let mut certs = Vec::new();
    if let Some(s) = &mut state.solver {
        let (c0, s0) = clauses_before.unwrap_or_default();
        let st = s.solver_stats();
        stats.conflicts += st.conflicts - s0.conflicts;
        stats.propagations += st.propagations - s0.propagations;
        stats.decisions += st.decisions - s0.decisions;
        stats.clauses_encoded += (s.encoded_clauses() - c0) as u64;
        certs = s.take_certificates();
    }
    (out, stats, certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::summarize_program;
    use atropos_dsl::parse;

    fn summaries(src: &str) -> Vec<TxnSummary> {
        summarize_program(&parse(src).unwrap())
    }

    fn fps(ts: &[TxnSummary]) -> [u64; 3] {
        [
            crate::cache::txn_fingerprint(&ts[0]),
            crate::cache::txn_fingerprint(&ts[1]),
            crate::cache::txn_fingerprint(&ts[2]),
        ]
    }

    fn solve(ts: &[TxnSummary], level: ConsistencyLevel) -> Vec<AccessPair> {
        let trio = [&ts[0], &ts[1], &ts[2]];
        let mut state = TripleState::new(trio);
        solve_triple_with_state(trio, fps(ts), level, &mut state, None, false).0
    }

    /// The canonical 3-hop relay: post writes, relay reads-then-derives,
    /// timeline observes the derived write but can miss the origin.
    const RELAY: &str = "schema MSG { m_id: int key, m_body: string }
         schema FEED { f_id: int key, f_body: string }
         txn post(m: int, body: string) {
             @W1 update MSG set m_body = body where m_id = m;
             return 0;
         }
         txn relay(m: int, f: int) {
             @R2 x := select m_body from MSG where m_id = m;
             @W2 update FEED set f_body = x.m_body where f_id = f;
             return 0;
         }
         txn timeline(f: int, m: int) {
             @R3 y := select f_body from FEED where f_id = f;
             @R4 z := select m_body from MSG where m_id = m;
             return 0;
         }";

    #[test]
    fn observer_chain_sat_under_ec_refuted_from_cc_up() {
        let ts = summaries(RELAY);
        let ec = solve(&ts, ConsistencyLevel::EventualConsistency);
        assert!(
            ec.iter().any(|p| p.kind == AnomalyKind::ObserverChain),
            "EC must realize the relayed causality violation: {ec:?}"
        );
        let chain = ec
            .iter()
            .find(|p| p.kind == AnomalyKind::ObserverChain)
            .unwrap();
        assert_eq!(chain.cmd1.0, "R4");
        assert_eq!(chain.cmd2.0, "W1");
        assert_eq!(chain.witnesses, BTreeSet::from(["relay".to_owned()]));
        for level in [
            ConsistencyLevel::CausalConsistency,
            ConsistencyLevel::Serializable,
        ] {
            let got = solve(&ts, level);
            assert!(
                got.iter().all(|p| p.kind != AnomalyKind::ObserverChain),
                "{level} closes visibility through the observer chain: {got:?}"
            );
        }
    }

    /// Three read-modify-writes over three keys, each reading the previous
    /// key and writing the next: the classic G2 cycle.
    const SKEW: &str = "schema K { k_id: int key, v: int }
         txn t1(a: int, b: int) {
             @A1 x := select v from K where k_id = a;
             @A2 update K set v = x.v + 1 where k_id = b;
             return 0;
         }
         txn t2(b: int, c: int) {
             @B1 x := select v from K where k_id = b;
             @B2 update K set v = x.v + 1 where k_id = c;
             return 0;
         }
         txn t3(c: int, a: int) {
             @C1 x := select v from K where k_id = c;
             @C2 update K set v = x.v + 1 where k_id = a;
             return 0;
         }";

    #[test]
    fn write_skew_cycle_sat_under_weak_levels_refuted_under_sc() {
        let ts = summaries(SKEW);
        for level in [
            ConsistencyLevel::EventualConsistency,
            ConsistencyLevel::CausalConsistency,
            ConsistencyLevel::RepeatableRead,
        ] {
            let got = solve(&ts, level);
            assert!(
                got.iter().any(|p| p.kind == AnomalyKind::WriteSkewCycle),
                "{level} realizes the three-key cycle: {got:?}"
            );
        }
        let sc = solve(&ts, ConsistencyLevel::Serializable);
        assert!(
            sc.iter().all(|p| p.kind != AnomalyKind::WriteSkewCycle),
            "a serial instance order breaks the cycle: {sc:?}"
        );
    }

    /// An atomic two-record write whose halves reach the observer through
    /// different paths: one relayed, one direct — and the direct one lost.
    const FRACTURED: &str = "schema A { a_id: int key, a_v: int }
         schema B { b_id: int key, b_v: int }
         schema C { c_id: int key, c_v: int }
         txn writer(a: int, b: int) {
             @WA update A set a_v = 1 where a_id = a;
             @WB update B set b_v = 1 where b_id = b;
             return 0;
         }
         txn relay(a: int, c: int) {
             @RB x := select a_v from A where a_id = a;
             @WC update C set c_v = x.a_v where c_id = c;
             return 0;
         }
         txn observer(c: int, b: int) {
             @RC y := select c_v from C where c_id = c;
             @RD z := select b_v from B where b_id = b;
             return 0;
         }";

    #[test]
    fn fractured_read_chain_survives_cc_but_not_sc() {
        let ts = summaries(FRACTURED);
        for level in [
            ConsistencyLevel::EventualConsistency,
            ConsistencyLevel::CausalConsistency,
        ] {
            let got = solve(&ts, level);
            assert!(
                got.iter().any(|p| p.kind == AnomalyKind::FracturedRead),
                "{level} fractures the atomic pair across the relay: {got:?}"
            );
        }
        let sc = solve(&ts, ConsistencyLevel::Serializable);
        assert!(
            sc.iter().all(|p| p.kind != AnomalyKind::FracturedRead),
            "SC restores atomic visibility: {sc:?}"
        );
    }

    #[test]
    fn triples_without_candidates_are_prefiltered() {
        // Three pure readers: no write anywhere, no template applies.
        let ts = summaries(
            "schema T { id: int key, v: int }
             txn ra(k: int) { @A x := select v from T where id = k; return 0; }
             txn rb(k: int) { @B x := select v from T where id = k; return 0; }
             txn rc(k: int) { @C x := select v from T where id = k; return 0; }",
        );
        assert!(!has_candidates([&ts[0], &ts[1], &ts[2]], fps(&ts)));
        // The relay triple, by contrast, has work.
        let relay = summaries(RELAY);
        assert!(has_candidates(
            [&relay[0], &relay[1], &relay[2]],
            fps(&relay)
        ));
    }

    #[test]
    fn first_witness_bound_reports_one_chain_per_role() {
        let ts = summaries(RELAY);
        let ec = solve(&ts, ConsistencyLevel::EventualConsistency);
        let chains = ec
            .iter()
            .filter(|p| p.kind == AnomalyKind::ObserverChain)
            .count();
        assert_eq!(chains, 1, "{ec:?}");
    }
}
