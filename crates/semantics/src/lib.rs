//! # atropos-semantics
//!
//! The weakly-isolated operational semantics of database programs (§3 of the
//! paper) and the machinery built on top of it:
//!
//! * [`store`] — database states Σ = (str, vis, cnt): events, atoms,
//!   local views, and the visibility relation;
//! * [`interp`] — a small-step interpreter parameterized by a
//!   [`ViewStrategy`] (serial, eventually-consistent random views, or
//!   snapshot);
//! * [`history`] — checking strong atomicity / strong isolation on complete
//!   histories and extracting dynamic anomaly witnesses;
//! * [`containment`] — value correspondences, the `⊑_V` containment
//!   relation, and table-instance checking used to validate refinement of
//!   refactored programs.
//!
//! # Examples
//!
//! ```
//! use atropos_dsl::{parse, Value};
//! use atropos_semantics::{run_serial, Invocation, is_serializable};
//!
//! let p = parse(
//!     "schema T { id: int key, v: int }
//!      txn set(k: int, n: int) { update T set v = n where id = k; return 0; }",
//! ).unwrap();
//! let (store, _) = run_serial(
//!     &p,
//!     |i| i.populate("T", vec![Value::Int(1)], [("v", Value::Int(0))]),
//!     &[Invocation::new("set", vec![Value::Int(1), Value::Int(5)])],
//! ).unwrap();
//! assert!(is_serializable(&store));
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod containment;
pub mod event;
pub mod history;
pub mod interp;
pub mod store;

pub use containment::{
    check_table_containment, theta_image, Aggregator, ContainmentError, TableInstance, ThetaMap,
    ValueCorrespondence,
};
pub use event::{Event, EventId, EventKind, RecordId, Timestamp, TxnInstanceId};
pub use history::{check_history, is_serializable, DynamicAnomaly, ViolationKind};
pub use interp::{
    default_value, run_interleaved, run_serial, ExecError, Interpreter, Invocation, ViewStrategy,
};
pub use store::{Atom, AtomId, Store, View};
