//! A compact growable bitset used for local views over atoms.

/// A dynamically sized bitset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset of `len` zero bits.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset of `len` one bits.
    pub fn all(len: usize) -> BitSet {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.clear_tail();
        s
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are addressable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` (bits beyond the current length read as 0 until grown).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`; indices past the end read as `false`.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut s = BitSet::new(130);
        s.set(0);
        s.set(64);
        s.set(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(63));
        assert!(!s.contains(1000)); // out of range reads false
        assert_eq!(s.count(), 3);
        s.unset(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn all_has_every_bit() {
        let s = BitSet::all(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut s = BitSet::new(200);
        for i in [3usize, 64, 65, 199] {
            s.set(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 199]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(4).set(4);
    }
}
