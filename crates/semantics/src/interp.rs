//! Small-step interpreter for database programs under weak isolation
//! (the operational semantics of Fig. 6).
//!
//! Each database command constructs a *local view* of the store according to
//! a [`ViewStrategy`], reads record state through that view, and appends its
//! read/write events. Control commands are free steps: they never touch the
//! store, so executing them eagerly preserves the set of observable
//! histories.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atropos_dsl::{
    AggOp, BinOp, BoolOp, Expr, Program, SelectCmd, Stmt, Transaction, Ty, Value, Where,
    ALIVE_FIELD,
};

use crate::event::{RecordId, Timestamp, TxnInstanceId};
use crate::store::{Store, View};

/// How a command's local view of the store is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ViewStrategy {
    /// Every command sees the entire store — serial behaviour.
    Serial,
    /// Eventually-consistent chaos: each atom of another transaction is
    /// visible with probability `p`; a transaction always sees its own
    /// previous effects (session guarantee).
    RandomAtoms {
        /// Probability that a foreign atom is included in a view.
        p: f64,
    },
    /// Each transaction takes a snapshot at invocation time and additionally
    /// sees its own effects (repeatable-read flavour).
    Snapshot,
}

/// The default value a field of type `ty` reads as before any write.
pub fn default_value(ty: Ty) -> Value {
    match ty {
        Ty::Int => Value::Int(0),
        Ty::Bool => Value::Bool(false),
        Ty::Str => Value::Str(String::new()),
        Ty::Uuid => Value::Uuid(0),
    }
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Invoked transaction does not exist.
    UnknownTransaction(String),
    /// Wrong number of arguments in an invocation.
    ArityMismatch {
        /// Transaction name.
        txn: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// Runtime evaluation failure (division by zero, bad index, …).
    Eval(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTransaction(t) => write!(f, "unknown transaction `{t}`"),
            ExecError::ArityMismatch { txn, expected, got } => {
                write!(f, "transaction `{txn}` expects {expected} arguments, got {got}")
            }
            ExecError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A transaction invocation: name plus actual arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Transaction name.
    pub txn: String,
    /// Argument values, in parameter order.
    pub args: Vec<Value>,
}

impl Invocation {
    /// Builds an invocation.
    pub fn new(txn: impl Into<String>, args: Vec<Value>) -> Invocation {
        Invocation {
            txn: txn.into(),
            args,
        }
    }
}

/// One row of a query result: the record plus its projected field values.
pub type ResultRow = (RecordId, BTreeMap<String, Value>);

#[derive(Debug)]
struct Frame {
    stmts: Vec<Stmt>,
    idx: usize,
    /// `Some((current, total))` when this frame is an `iterate` body.
    loop_state: Option<(i64, i64)>,
}

#[derive(Debug)]
struct TxnState {
    id: TxnInstanceId,
    args: HashMap<String, Value>,
    stack: Vec<Frame>,
    locals: HashMap<String, Vec<ResultRow>>,
    ret_expr: Expr,
    start_cnt: Timestamp,
    finished: Option<Value>,
}

/// The interpreter: owns the store and the set of running instances.
///
/// # Examples
///
/// ```
/// use atropos_dsl::{parse, Value};
/// use atropos_semantics::{Interpreter, Invocation, ViewStrategy};
///
/// let p = parse(
///     "schema T { id: int key, v: int }
///      txn bump(k: int) {
///          x := select v from T where id = k;
///          update T set v = x.v + 1 where id = k;
///          return x.v;
///      }",
/// ).unwrap();
/// let mut interp = Interpreter::new(&p, ViewStrategy::Serial, 0);
/// interp.populate("T", vec![Value::Int(1)], [("v", Value::Int(10))]);
/// let id = interp.invoke(&Invocation::new("bump", vec![Value::Int(1)])).unwrap();
/// interp.run_to_completion(id).unwrap();
/// assert_eq!(interp.return_value(id), Some(&Value::Int(10)));
/// ```
#[derive(Debug)]
pub struct Interpreter<'a> {
    program: &'a Program,
    /// The evolving database state.
    pub store: Store,
    instances: Vec<TxnState>,
    rng: StdRng,
    strategy: ViewStrategy,
    uuid_next: u128,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a checked program.
    pub fn new(program: &'a Program, strategy: ViewStrategy, seed: u64) -> Interpreter<'a> {
        Interpreter {
            program,
            store: Store::new(),
            instances: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            strategy,
            uuid_next: 1,
        }
    }

    /// Switches the view strategy mid-run (e.g. serial population, then
    /// eventually consistent chaos, then serial settlement reads).
    pub fn set_strategy(&mut self, strategy: ViewStrategy) {
        self.strategy = strategy;
    }

    /// Pre-populates one record (fields default where unspecified).
    ///
    /// # Panics
    ///
    /// Panics if the schema is unknown.
    pub fn populate<S: Into<String>>(
        &mut self,
        schema: &str,
        key: Vec<Value>,
        fields: impl IntoIterator<Item = (S, Value)>,
    ) {
        let decl = self
            .program
            .schema(schema)
            .unwrap_or_else(|| panic!("unknown schema `{schema}`"));
        let mut map: HashMap<String, Value> = decl
            .fields
            .iter()
            .map(|f| (f.name.clone(), default_value(f.ty)))
            .collect();
        for (f, v) in fields {
            map.insert(f.into(), v);
        }
        // Key fields mirror the record id so where-clauses on keys work.
        for (kf, kv) in decl.primary_key().iter().zip(&key) {
            map.insert((*kf).to_owned(), kv.clone());
        }
        self.store
            .insert_initial(RecordId::new(schema, key), map);
    }

    /// Starts a transaction instance ((txn-invoke)).
    ///
    /// # Errors
    ///
    /// Fails if the transaction is unknown or the arity is wrong.
    pub fn invoke(&mut self, inv: &Invocation) -> Result<TxnInstanceId, ExecError> {
        let t: &Transaction = self
            .program
            .transaction(&inv.txn)
            .ok_or_else(|| ExecError::UnknownTransaction(inv.txn.clone()))?;
        if t.params.len() != inv.args.len() {
            return Err(ExecError::ArityMismatch {
                txn: inv.txn.clone(),
                expected: t.params.len(),
                got: inv.args.len(),
            });
        }
        let id = TxnInstanceId(self.instances.len() as u32);
        self.instances.push(TxnState {
            id,
            args: t
                .params
                .iter()
                .map(|p| p.name.clone())
                .zip(inv.args.iter().cloned())
                .collect(),
            stack: vec![Frame {
                stmts: t.body.clone(),
                idx: 0,
                loop_state: None,
            }],
            locals: HashMap::new(),
            ret_expr: t.ret.clone(),
            start_cnt: self.store.cnt(),
            finished: None,
        });
        Ok(id)
    }

    /// True once the instance has evaluated its return expression.
    pub fn is_finished(&self, id: TxnInstanceId) -> bool {
        self.instances[id.0 as usize].finished.is_some()
    }

    /// The instance's return value, once finished.
    pub fn return_value(&self, id: TxnInstanceId) -> Option<&Value> {
        self.instances[id.0 as usize].finished.as_ref()
    }

    /// Return values of all finished instances, in instance order.
    pub fn returns(&self) -> Vec<(TxnInstanceId, Value)> {
        self.instances
            .iter()
            .filter_map(|t| t.finished.clone().map(|v| (t.id, v)))
            .collect()
    }

    /// Executes instance `id` up to and including its next database command
    /// ((txn-step)); finishing the body evaluates the return expression
    /// ((txn-ret)). Returns `true` while the instance is still running.
    ///
    /// # Errors
    ///
    /// Propagates runtime evaluation failures.
    pub fn step(&mut self, id: TxnInstanceId) -> Result<bool, ExecError> {
        loop {
            let idx = id.0 as usize;
            if self.instances[idx].finished.is_some() {
                return Ok(false);
            }
            // Find next statement, unwinding completed frames.
            let stmt = loop {
                let st = &mut self.instances[idx];
                let Some(frame) = st.stack.last_mut() else {
                    // Body done: evaluate return expression.
                    let ret = st.ret_expr.clone();
                    let v = self.eval(idx, &ret)?;
                    self.instances[idx].finished = Some(v);
                    return Ok(false);
                };
                if frame.idx >= frame.stmts.len() {
                    if let Some((cur, total)) = &mut frame.loop_state {
                        *cur += 1;
                        if *cur < *total {
                            frame.idx = 0;
                            continue;
                        }
                    }
                    st.stack.pop();
                    continue;
                }
                let s = frame.stmts[frame.idx].clone();
                frame.idx += 1;
                break s;
            };
            match stmt {
                Stmt::If { cond, body } => {
                    let c = self.eval(idx, &cond)?;
                    if c == Value::Bool(true) {
                        self.instances[idx].stack.push(Frame {
                            stmts: body,
                            idx: 0,
                            loop_state: None,
                        });
                    }
                }
                Stmt::Iterate { count, body } => {
                    let n = self
                        .eval(idx, &count)?
                        .as_int()
                        .ok_or_else(|| ExecError::Eval("iterate count not an int".into()))?;
                    if n > 0 {
                        self.instances[idx].stack.push(Frame {
                            stmts: body,
                            idx: 0,
                            loop_state: Some((0, n)),
                        });
                    }
                }
                Stmt::Select(c) => {
                    self.exec_select(idx, &c)?;
                    return Ok(true);
                }
                Stmt::Update(c) => {
                    let view = self.make_view(idx);
                    let matches = self.matching_records(&view, &c.schema, &c.where_, idx)?;
                    let values: Vec<(String, Value)> = c
                        .assigns
                        .iter()
                        .map(|(f, e)| Ok((f.clone(), self.eval(idx, e)?)))
                        .collect::<Result<_, ExecError>>()?;
                    let ts = self.store.start_command(view);
                    let txn = self.instances[idx].id;
                    for r in matches {
                        for (f, v) in &values {
                            self.store.add_write(ts, txn, &c.label, r.clone(), f, v.clone());
                        }
                    }
                    return Ok(true);
                }
                Stmt::Insert(c) => {
                    let schema = self
                        .program
                        .schema(&c.schema)
                        .expect("checked program: schema exists");
                    let mut evald: Vec<(String, Value)> = Vec::new();
                    for (f, e) in &c.values {
                        evald.push((f.clone(), self.eval(idx, e)?));
                    }
                    let key: Vec<Value> = schema
                        .primary_key()
                        .iter()
                        .map(|kf| {
                            evald
                                .iter()
                                .find(|(f, _)| f == kf)
                                .map(|(_, v)| v.clone())
                                .expect("checked program: insert covers keys")
                        })
                        .collect();
                    let record = RecordId::new(c.schema.clone(), key);
                    let view = self.make_view(idx);
                    let ts = self.store.start_command(view);
                    let txn = self.instances[idx].id;
                    for (f, v) in evald {
                        self.store.add_write(ts, txn, &c.label, record.clone(), f, v);
                    }
                    self.store.add_write(
                        ts,
                        txn,
                        &c.label,
                        record,
                        ALIVE_FIELD,
                        Value::Bool(true),
                    );
                    return Ok(true);
                }
                Stmt::Delete(c) => {
                    let view = self.make_view(idx);
                    let matches = self.matching_records(&view, &c.schema, &c.where_, idx)?;
                    let ts = self.store.start_command(view);
                    let txn = self.instances[idx].id;
                    for r in matches {
                        self.store
                            .add_write(ts, txn, &c.label, r, ALIVE_FIELD, Value::Bool(false));
                    }
                    return Ok(true);
                }
            }
        }
    }

    /// Runs an instance until it finishes.
    ///
    /// # Errors
    ///
    /// Propagates runtime evaluation failures.
    pub fn run_to_completion(&mut self, id: TxnInstanceId) -> Result<(), ExecError> {
        while self.step(id)? {}
        Ok(())
    }

    fn make_view(&mut self, idx: usize) -> View {
        let me = self.instances[idx].id;
        let start = self.instances[idx].start_cnt;
        let store = &self.store;
        let rng = &mut self.rng;
        match self.strategy {
            ViewStrategy::Serial => View::full(store),
            ViewStrategy::RandomAtoms { p } => {
                View::filtered(store, |a| a.txn == me || rng.gen_bool(p))
            }
            ViewStrategy::Snapshot => View::filtered(store, |a| a.txn == me || a.ts < start),
        }
    }

    /// Live records of `schema` matching `where_` under `view`.
    fn matching_records(
        &mut self,
        view: &View,
        schema: &str,
        where_: &Where,
        idx: usize,
    ) -> Result<Vec<RecordId>, ExecError> {
        let decl = self
            .program
            .schema(schema)
            .expect("checked program: schema exists");
        let mut out = Vec::new();
        let records: Vec<RecordId> = self.store.known_records(schema).cloned().collect();
        for r in records {
            if !self.store.alive_in_view(view, &r) {
                continue;
            }
            if self.eval_where(view, &r, decl, where_, idx)? {
                out.push(r);
            }
        }
        out.sort();
        Ok(out)
    }

    fn field_value(&self, view: &View, r: &RecordId, decl: &atropos_dsl::Schema, f: &str) -> Value {
        self.store.value_in_view(view, r, f).unwrap_or_else(|| {
            default_value(decl.field(f).map(|d| d.ty).unwrap_or(Ty::Int))
        })
    }

    fn eval_where(
        &mut self,
        view: &View,
        r: &RecordId,
        decl: &atropos_dsl::Schema,
        w: &Where,
        idx: usize,
    ) -> Result<bool, ExecError> {
        match w {
            Where::True => Ok(true),
            Where::Cmp { field, op, expr } => {
                let lhs = self.field_value(view, r, decl, field);
                let rhs = self.eval(idx, expr)?;
                Ok(op.eval(&lhs, &rhs))
            }
            Where::And(l, rr) => {
                Ok(self.eval_where(view, r, decl, l, idx)? && self.eval_where(view, r, decl, rr, idx)?)
            }
            Where::Or(l, rr) => {
                Ok(self.eval_where(view, r, decl, l, idx)? || self.eval_where(view, r, decl, rr, idx)?)
            }
        }
    }

    fn exec_select(&mut self, idx: usize, c: &SelectCmd) -> Result<(), ExecError> {
        let view = self.make_view(idx);
        let decl = self
            .program
            .schema(&c.schema)
            .expect("checked program: schema exists");
        let selected: Vec<String> = match &c.fields {
            Some(fs) => fs.clone(),
            None => decl.fields.iter().map(|f| f.name.clone()).collect(),
        };
        let matches = self.matching_records(&view, &c.schema, &c.where_, idx)?;
        let mut rows: Vec<ResultRow> = Vec::new();
        for r in &matches {
            let mut row = BTreeMap::new();
            for f in &selected {
                row.insert(f.clone(), self.field_value(&view, r, decl, f));
            }
            rows.push((r.clone(), row));
        }

        // Emit events: ε1 scan reads over φ_fld (plus alive), ε2 projection
        // reads of selected fields of matching records.
        let scan_fields = c.where_.fields();
        let domain: Vec<RecordId> = self.store.known_records(&c.schema).cloned().collect();
        let ts = self.store.start_command(view);
        let txn = self.instances[idx].id;
        for r in &domain {
            self.store.add_read(ts, txn, &c.label, r.clone(), ALIVE_FIELD);
            for f in &scan_fields {
                self.store.add_read(ts, txn, &c.label, r.clone(), f);
            }
        }
        for (r, _) in &rows {
            for f in &selected {
                self.store.add_read(ts, txn, &c.label, r.clone(), f);
            }
        }
        self.instances[idx].locals.insert(c.var.clone(), rows);
        Ok(())
    }

    fn iter_value(&self, idx: usize) -> Option<i64> {
        self.instances[idx]
            .stack
            .iter()
            .rev()
            .find_map(|f| f.loop_state.map(|(cur, _)| cur))
    }

    fn eval(&mut self, idx: usize, e: &Expr) -> Result<Value, ExecError> {
        match e {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Arg(a) => self.instances[idx]
                .args
                .get(a)
                .cloned()
                .ok_or_else(|| ExecError::Eval(format!("unknown argument `{a}`"))),
            Expr::Bin(op, l, r) => {
                let l = self
                    .eval(idx, l)?
                    .as_int()
                    .ok_or_else(|| ExecError::Eval("arith on non-int".into()))?;
                let r = self
                    .eval(idx, r)?
                    .as_int()
                    .ok_or_else(|| ExecError::Eval("arith on non-int".into()))?;
                let v = match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(ExecError::Eval("division by zero".into()));
                        }
                        l / r
                    }
                };
                Ok(Value::Int(v))
            }
            Expr::Cmp(op, l, r) => {
                let l = self.eval(idx, l)?;
                let r = self.eval(idx, r)?;
                Ok(Value::Bool(op.eval(&l, &r)))
            }
            Expr::Bool(op, l, r) => {
                let l = self.eval(idx, l)? == Value::Bool(true);
                let r = self.eval(idx, r)? == Value::Bool(true);
                Ok(Value::Bool(match op {
                    BoolOp::And => l && r,
                    BoolOp::Or => l || r,
                }))
            }
            Expr::Not(x) => {
                let v = self.eval(idx, x)? == Value::Bool(true);
                Ok(Value::Bool(!v))
            }
            Expr::Iter => self
                .iter_value(idx)
                .map(Value::Int)
                .ok_or_else(|| ExecError::Eval("`iter` outside a loop".into())),
            Expr::Agg(op, var, field) => {
                let rows = self.instances[idx].locals.get(var).cloned().unwrap_or_default();
                let vals: Vec<i64> = rows
                    .iter()
                    .filter_map(|(_, row)| row.get(field).and_then(Value::as_int))
                    .collect();
                let v = match op {
                    AggOp::Count => rows.len() as i64,
                    AggOp::Sum => vals.iter().sum(),
                    AggOp::Min => vals.iter().copied().min().unwrap_or(0),
                    AggOp::Max => vals.iter().copied().max().unwrap_or(0),
                };
                Ok(Value::Int(v))
            }
            Expr::At(i, var, field) => {
                let i = self
                    .eval(idx, i)?
                    .as_int()
                    .ok_or_else(|| ExecError::Eval("record index not an int".into()))?;
                let rows = self.instances[idx].locals.get(var).cloned().unwrap_or_default();
                match rows.get(i.max(0) as usize) {
                    Some((_, row)) => row.get(field).cloned().ok_or_else(|| {
                        ExecError::Eval(format!("row lacks field `{field}`"))
                    }),
                    None => {
                        // Empty or short result set: fields read as defaults.
                        let ty = self
                            .program
                            .schemas
                            .iter()
                            .find_map(|s| s.field(field).map(|f| f.ty))
                            .unwrap_or(Ty::Int);
                        Ok(default_value(ty))
                    }
                }
            }
            Expr::Uuid => {
                let v = Value::Uuid(self.uuid_next);
                self.uuid_next += 1;
                Ok(v)
            }
        }
    }
}

/// Runs `invocations` one after another (each to completion) under the
/// [`ViewStrategy::Serial`] strategy. Returns the final store and the return
/// values in invocation order.
///
/// # Errors
///
/// Propagates the first [`ExecError`].
pub fn run_serial(
    program: &Program,
    setup: impl FnOnce(&mut Interpreter<'_>),
    invocations: &[Invocation],
) -> Result<(Store, Vec<Value>), ExecError> {
    let mut interp = Interpreter::new(program, ViewStrategy::Serial, 0);
    setup(&mut interp);
    let mut rets = Vec::new();
    for inv in invocations {
        let id = interp.invoke(inv)?;
        interp.run_to_completion(id)?;
        rets.push(
            interp
                .return_value(id)
                .expect("completed instance has a return value")
                .clone(),
        );
    }
    Ok((interp.store, rets))
}

/// Runs `invocations` concurrently with a random interleaving and the given
/// view strategy; `seed` fixes both the interleaving and the views.
///
/// # Errors
///
/// Propagates the first [`ExecError`].
pub fn run_interleaved(
    program: &Program,
    setup: impl FnOnce(&mut Interpreter<'_>),
    invocations: &[Invocation],
    strategy: ViewStrategy,
    seed: u64,
) -> Result<(Store, Vec<Value>), ExecError> {
    let mut interp = Interpreter::new(program, strategy, seed);
    setup(&mut interp);
    let mut sched_rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let ids: Vec<TxnInstanceId> = invocations
        .iter()
        .map(|inv| interp.invoke(inv))
        .collect::<Result<_, _>>()?;
    let mut live: Vec<TxnInstanceId> = ids.clone();
    while !live.is_empty() {
        let k = sched_rng.gen_range(0..live.len());
        if !interp.step(live[k])? {
            live.swap_remove(k);
        }
    }
    let rets = ids
        .iter()
        .map(|&id| interp.return_value(id).expect("finished").clone())
        .collect();
    Ok((interp.store, rets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    fn counter_program() -> Program {
        parse(
            "schema T { id: int key, v: int }
             txn bump(k: int) {
                 x := select v from T where id = k;
                 update T set v = x.v + 1 where id = k;
                 return x.v;
             }
             txn read(k: int) {
                 x := select v from T where id = k;
                 return x.v;
             }",
        )
        .unwrap()
    }

    #[test]
    fn serial_increments_accumulate() {
        let p = counter_program();
        let invs: Vec<Invocation> = (0..5)
            .map(|_| Invocation::new("bump", vec![Value::Int(1)]))
            .chain(std::iter::once(Invocation::new("read", vec![Value::Int(1)])))
            .collect();
        let (_, rets) = run_serial(
            &p,
            |i| i.populate("T", vec![Value::Int(1)], [("v", Value::Int(0))]),
            &invs,
        )
        .unwrap();
        assert_eq!(rets.last(), Some(&Value::Int(5)));
    }

    #[test]
    fn lost_update_possible_under_random_views() {
        let p = counter_program();
        let invs: Vec<Invocation> = (0..4)
            .map(|_| Invocation::new("bump", vec![Value::Int(1)]))
            .chain(std::iter::once(Invocation::new("read", vec![Value::Int(1)])))
            .collect();
        let mut lost = false;
        for seed in 0..30 {
            let (_, rets) = run_interleaved(
                &p,
                |i| i.populate("T", vec![Value::Int(1)], [("v", Value::Int(0))]),
                &invs,
                ViewStrategy::RandomAtoms { p: 0.4 },
                seed,
            )
            .unwrap();
            if rets.last() != Some(&Value::Int(4)) {
                lost = true;
                break;
            }
        }
        assert!(lost, "expected at least one lost update across seeds");
    }

    #[test]
    fn insert_then_select_round_trip() {
        let p = parse(
            "schema L { id: int key, n: int }
             txn add(k: int, v: int) {
                 insert into L values (id = k, n = v);
                 return 0;
             }
             txn total() {
                 x := select n from L;
                 return sum(x.n);
             }",
        )
        .unwrap();
        let invs = vec![
            Invocation::new("add", vec![Value::Int(1), Value::Int(10)]),
            Invocation::new("add", vec![Value::Int(2), Value::Int(32)]),
            Invocation::new("total", vec![]),
        ];
        let (_, rets) = run_serial(&p, |_| {}, &invs).unwrap();
        assert_eq!(rets[2], Value::Int(42));
    }

    #[test]
    fn delete_hides_records() {
        let p = parse(
            "schema L { id: int key, n: int }
             txn del(k: int) { delete from L where id = k; return 0; }
             txn cnt() { x := select n from L; return count(x.n); }",
        )
        .unwrap();
        let (_, rets) = run_serial(
            &p,
            |i| {
                i.populate("L", vec![Value::Int(1)], [("n", Value::Int(1))]);
                i.populate("L", vec![Value::Int(2)], [("n", Value::Int(2))]);
            },
            &[
                Invocation::new("del", vec![Value::Int(1)]),
                Invocation::new("cnt", vec![]),
            ],
        )
        .unwrap();
        assert_eq!(rets[1], Value::Int(1));
    }

    #[test]
    fn iterate_executes_body_n_times_with_counter() {
        let p = parse(
            "schema T { id: int key, v: int }
             txn fill(n: int) {
                 iterate (n) {
                     insert into T values (id = iter, v = iter * 2);
                 }
                 return 0;
             }
             txn total() { x := select v from T; return sum(x.v); }",
        )
        .unwrap();
        let (_, rets) = run_serial(
            &p,
            |_| {},
            &[
                Invocation::new("fill", vec![Value::Int(4)]),
                Invocation::new("total", vec![]),
            ],
        )
        .unwrap();
        // 0 + 2 + 4 + 6
        assert_eq!(rets[1], Value::Int(12));
    }

    #[test]
    fn if_guard_controls_execution() {
        let p = parse(
            "schema T { id: int key, v: int }
             txn cond(k: int, doit: bool) {
                 if (doit) { update T set v = 99 where id = k; }
                 x := select v from T where id = k;
                 return x.v;
             }",
        )
        .unwrap();
        let setup = |i: &mut Interpreter<'_>| {
            i.populate("T", vec![Value::Int(1)], [("v", Value::Int(1))]);
        };
        let (_, r1) = run_serial(
            &p,
            setup,
            &[Invocation::new("cond", vec![Value::Int(1), Value::Bool(true)])],
        )
        .unwrap();
        assert_eq!(r1[0], Value::Int(99));
        let (_, r2) = run_serial(
            &p,
            |i| i.populate("T", vec![Value::Int(1)], [("v", Value::Int(1))]),
            &[Invocation::new("cond", vec![Value::Int(1), Value::Bool(false)])],
        )
        .unwrap();
        assert_eq!(r2[0], Value::Int(1));
    }

    #[test]
    fn uuid_values_are_unique() {
        let p = parse(
            "schema L { id: int key, u: uuid key, n: int }
             txn log(k: int) {
                 insert into L values (id = k, u = uuid(), n = 1);
                 return 0;
             }
             txn cnt() { x := select n from L; return count(x.n); }",
        )
        .unwrap();
        let invs = vec![
            Invocation::new("log", vec![Value::Int(1)]),
            Invocation::new("log", vec![Value::Int(1)]),
            Invocation::new("log", vec![Value::Int(1)]),
            Invocation::new("cnt", vec![]),
        ];
        let (_, rets) = run_serial(&p, |_| {}, &invs).unwrap();
        assert_eq!(rets[3], Value::Int(3));
    }

    #[test]
    fn empty_select_reads_defaults() {
        let p = parse(
            "schema T { id: int key, v: int }
             txn get(k: int) {
                 x := select v from T where id = k;
                 return x.v;
             }",
        )
        .unwrap();
        let (_, rets) = run_serial(&p, |_| {}, &[Invocation::new("get", vec![Value::Int(7)])])
            .unwrap();
        assert_eq!(rets[0], Value::Int(0));
    }

    #[test]
    fn snapshot_strategy_ignores_later_commits() {
        // Two bumps interleaved under Snapshot both read the initial value.
        let p = counter_program();
        let mut interp = Interpreter::new(&p, ViewStrategy::Snapshot, 1);
        interp.populate("T", vec![Value::Int(1)], [("v", Value::Int(0))]);
        let a = interp
            .invoke(&Invocation::new("bump", vec![Value::Int(1)]))
            .unwrap();
        let b = interp
            .invoke(&Invocation::new("bump", vec![Value::Int(1)]))
            .unwrap();
        // Interleave: a reads, b reads, a writes, b writes.
        interp.step(a).unwrap();
        interp.step(b).unwrap();
        interp.run_to_completion(a).unwrap();
        interp.run_to_completion(b).unwrap();
        assert_eq!(interp.return_value(a), Some(&Value::Int(0)));
        assert_eq!(interp.return_value(b), Some(&Value::Int(0)));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = counter_program();
        let mut interp = Interpreter::new(&p, ViewStrategy::Serial, 0);
        let err = interp.invoke(&Invocation::new("bump", vec![])).unwrap_err();
        assert!(matches!(err, ExecError::ArityMismatch { .. }));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let p = parse(
            "schema T { id: int key }
             txn t(a: int) { return 1 / a; }",
        )
        .unwrap();
        let err = run_serial(&p, |_| {}, &[Invocation::new("t", vec![Value::Int(0)])])
            .unwrap_err();
        assert!(matches!(err, ExecError::Eval(_)));
    }
}
