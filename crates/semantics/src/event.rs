//! Database events: the atoms of the store semantics (§3.1).
//!
//! Retrieving a record generates *read* events `rd(τ, r, f)`; an update
//! generates *write* events `wr(τ, r, f, n)`. Every event also carries the
//! transaction instance and the command label that produced it, which the
//! history checker uses to reconstruct the `st` (same-transaction) relation
//! and to attribute anomalies to command pairs.

use std::fmt;

use atropos_dsl::{CmdLabel, Value};

/// Global timestamp (the execution counter `cnt`).
pub type Timestamp = u64;

/// Index of an event in a [`Store`](crate::store::Store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

impl EventId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a running (or finished) transaction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnInstanceId(pub u32);

/// A record is identified by its schema and primary-key values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Owning schema (table) name.
    pub schema: String,
    /// Primary-key values in key-field declaration order.
    pub key: Vec<Value>,
}

impl RecordId {
    /// Builds a record id.
    pub fn new(schema: impl Into<String>, key: Vec<Value>) -> RecordId {
        RecordId {
            schema: schema.into(),
            key,
        }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.schema)?;
        for (i, v) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Read or write payload of an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A read `rd(τ, r, f)`.
    Read,
    /// A write `wr(τ, r, f, n)` of the given value.
    Write(Value),
}

impl EventKind {
    /// True for write events.
    pub fn is_write(&self) -> bool {
        matches!(self, EventKind::Write(_))
    }

    /// The written value, if a write.
    pub fn written(&self) -> Option<&Value> {
        match self {
            EventKind::Write(v) => Some(v),
            EventKind::Read => None,
        }
    }
}

/// A database event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp (`cnt` at creation); all events of one command share it.
    pub ts: Timestamp,
    /// Transaction instance that produced the event.
    pub txn: TxnInstanceId,
    /// Label of the producing database command.
    pub cmd: CmdLabel,
    /// Accessed record.
    pub record: RecordId,
    /// Accessed field (may be the implicit `alive`).
    pub field: String,
    /// Read or write.
    pub kind: EventKind,
}

impl Event {
    /// True if this event and `other` were produced by the same transaction
    /// instance (the `st` relation of §3.2).
    pub fn same_txn(&self, other: &Event) -> bool {
        self.txn == other.txn
    }

    /// True if both events access the same record and field.
    pub fn same_location(&self, other: &Event) -> bool {
        self.record == other.record && self.field == other.field
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: Timestamp, txn: u32) -> Event {
        Event {
            ts,
            txn: TxnInstanceId(txn),
            cmd: "S1".into(),
            record: RecordId::new("T", vec![Value::Int(1)]),
            field: "v".into(),
            kind: EventKind::Read,
        }
    }

    #[test]
    fn record_display() {
        let r = RecordId::new("T", vec![Value::Int(1), Value::Bool(true)]);
        assert_eq!(r.to_string(), "T[1,true]");
    }

    #[test]
    fn same_txn_and_location() {
        let a = ev(0, 1);
        let b = ev(1, 1);
        let c = ev(2, 2);
        assert!(a.same_txn(&b));
        assert!(!a.same_txn(&c));
        assert!(a.same_location(&b));
    }

    #[test]
    fn event_kind_written() {
        assert!(EventKind::Write(Value::Int(1)).is_write());
        assert_eq!(
            EventKind::Write(Value::Int(1)).written(),
            Some(&Value::Int(1))
        );
        assert_eq!(EventKind::Read.written(), None);
    }
}
