//! Database containment via value correspondences (§4.1).
//!
//! A [`ValueCorrespondence`] `(R, R', f, f', θ, α)` explains how to recover
//! field `f` of any record of table `R` from field `f'` of the set of
//! records `θ(r)` of table `R'`, folding multiple values with the aggregator
//! `α`. A table `X` is contained in a set of tables `X̄` under a set of
//! correspondences `V` if every field of `X` is explained by some member of
//! `V`. Program refinement (soundness of refactoring) requires the original
//! program's final state to be contained in the refactored program's final
//! state after any serial execution.

use std::collections::BTreeMap;
use std::fmt;

use atropos_dsl::{Schema, Value};

use crate::event::RecordId;

/// Fold functions `α` on multisets of values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// A nondeterministically chosen element (the refactoring keeps all
    /// copies equal, so containment checks membership).
    Any,
    /// Integer sum.
    Sum,
    /// Integer minimum.
    Min,
    /// Integer maximum.
    Max,
}

impl Aggregator {
    /// Folds a set of values; `None` when the set is empty and the
    /// aggregator has no identity (`Any`, `Min`, `Max`).
    pub fn fold(self, values: &[Value]) -> Option<Value> {
        match self {
            Aggregator::Any => values.first().cloned(),
            Aggregator::Sum => Some(Value::Int(
                values.iter().filter_map(Value::as_int).sum::<i64>(),
            )),
            Aggregator::Min => values
                .iter()
                .filter_map(Value::as_int)
                .min()
                .map(Value::Int),
            Aggregator::Max => values
                .iter()
                .filter_map(Value::as_int)
                .max()
                .map(Value::Int),
        }
    }

    /// Whether the folded value matches `expected`, honouring `Any`'s
    /// nondeterminism (membership instead of equality).
    pub fn matches(self, values: &[Value], expected: &Value) -> bool {
        match self {
            Aggregator::Any => values.contains(expected),
            _ => self.fold(values).as_ref() == Some(expected),
        }
    }
}

/// The lifted record correspondence `⌈θ̂⌉` of §4.2.1: maps each primary-key
/// field of the source schema to the field of the target schema holding the
/// same value, so `θ(r) = { r' | ∀k. r'.θ̂(k) = r.k }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThetaMap {
    /// Pairs `(source key field, target field)` in source-key order.
    pub key_map: Vec<(String, String)>,
}

impl ThetaMap {
    /// Builds a map from `(src key field, dst field)` pairs.
    pub fn new(pairs: Vec<(String, String)>) -> ThetaMap {
        ThetaMap { key_map: pairs }
    }

    /// The identity correspondence on a schema's primary key.
    pub fn identity(schema: &Schema) -> ThetaMap {
        ThetaMap {
            key_map: schema
                .primary_key()
                .iter()
                .map(|k| ((*k).to_owned(), (*k).to_owned()))
                .collect(),
        }
    }

    /// The target field corresponding to a source key field.
    pub fn target_of(&self, src_key_field: &str) -> Option<&str> {
        self.key_map
            .iter()
            .find(|(s, _)| s == src_key_field)
            .map(|(_, d)| d.as_str())
    }
}

/// A value correspondence `(R, R', f, f', θ, α)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueCorrespondence {
    /// Source (original) schema name `R`.
    pub src_schema: String,
    /// Target (refactored) schema name `R'`.
    pub dst_schema: String,
    /// Source field `f`.
    pub src_field: String,
    /// Target field `f'`.
    pub dst_field: String,
    /// Record correspondence `⌈θ̂⌉`.
    pub theta: ThetaMap,
    /// Fold function `α`.
    pub alpha: Aggregator,
}

impl fmt::Display for ValueCorrespondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}, θ̂{:?}, {:?})",
            self.src_schema, self.dst_schema, self.src_field, self.dst_field,
            self.theta.key_map, self.alpha
        )
    }
}

/// A materialized table: record id → field → value.
pub type TableInstance = BTreeMap<RecordId, BTreeMap<String, Value>>;

/// A containment-check failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainmentError {
    /// No correspondence explains a source field.
    UnexplainedField {
        /// Schema name.
        schema: String,
        /// Field name.
        field: String,
    },
    /// A source record has an empty image `θ(r)` in the target.
    MissingImage {
        /// The source record.
        record: RecordId,
        /// Target schema searched.
        dst_schema: String,
    },
    /// The folded target values do not reproduce the source value.
    ValueMismatch {
        /// The source record.
        record: RecordId,
        /// Source field.
        field: String,
        /// Expected (source) value.
        expected: Value,
        /// Values found at the image records.
        found: Vec<Value>,
    },
}

impl fmt::Display for ContainmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentError::UnexplainedField { schema, field } => {
                write!(f, "no value correspondence explains {schema}.{field}")
            }
            ContainmentError::MissingImage { record, dst_schema } => {
                write!(f, "record {record} has no image in {dst_schema}")
            }
            ContainmentError::ValueMismatch {
                record,
                field,
                expected,
                found,
            } => write!(
                f,
                "{record}.{field}: expected {expected}, image values {found:?}"
            ),
        }
    }
}

impl std::error::Error for ContainmentError {}

/// Computes `θ(r)`: the target records whose `θ̂`-mapped fields equal the
/// source record's key values.
pub fn theta_image<'t>(
    vc: &ValueCorrespondence,
    src_schema: &Schema,
    src_record: &RecordId,
    dst_table: &'t TableInstance,
) -> Vec<&'t RecordId> {
    let keys = src_schema.primary_key();
    dst_table
        .iter()
        .filter(|(_, row)| {
            keys.iter().zip(&src_record.key).all(|(k, kv)| {
                vc.theta
                    .target_of(k)
                    .and_then(|dst_f| row.get(dst_f)) == Some(kv)
            })
        })
        .map(|(r, _)| r)
        .collect()
}

/// Checks `X ⊑_V X̄` for one source table: every field of every record must
/// be recoverable through some correspondence in `vcs`.
///
/// # Errors
///
/// Returns the first [`ContainmentError`] found.
pub fn check_table_containment(
    src_schema: &Schema,
    src_table: &TableInstance,
    vcs: &[ValueCorrespondence],
    dst_tables: &BTreeMap<String, TableInstance>,
) -> Result<(), ContainmentError> {
    for field in src_schema.value_fields() {
        let vc = vcs
            .iter()
            .find(|v| v.src_schema == src_schema.name && v.src_field == field)
            .ok_or_else(|| ContainmentError::UnexplainedField {
                schema: src_schema.name.clone(),
                field: field.to_owned(),
            })?;
        let empty = TableInstance::new();
        let dst_table = dst_tables.get(&vc.dst_schema).unwrap_or(&empty);
        for (r, row) in src_table {
            let image = theta_image(vc, src_schema, r, dst_table);
            if image.is_empty() {
                return Err(ContainmentError::MissingImage {
                    record: r.clone(),
                    dst_schema: vc.dst_schema.clone(),
                });
            }
            let found: Vec<Value> = image
                .iter()
                .filter_map(|ri| dst_table[*ri].get(&vc.dst_field).cloned())
                .collect();
            let expected = row
                .get(field)
                .cloned()
                .expect("materialized rows carry every field");
            if !vc.alpha.matches(&found, &expected) {
                return Err(ContainmentError::ValueMismatch {
                    record: r.clone(),
                    field: field.to_owned(),
                    expected,
                    found,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::{FieldDecl, Ty};

    fn rid(schema: &str, k: i64) -> RecordId {
        RecordId::new(schema, vec![Value::Int(k)])
    }

    /// Reconstructs the COURSE table of Fig. 7 from STUDENT and the log.
    #[test]
    fn figure7_value_correspondences_hold() {
        let course = Schema::new(
            "COURSE",
            vec![
                FieldDecl::key("co_id", Ty::Int),
                FieldDecl::new("co_avail", Ty::Bool),
                FieldDecl::new("co_st_cnt", Ty::Int),
            ],
        );
        // Original COURSE table.
        let mut course_tab = TableInstance::new();
        course_tab.insert(
            rid("COURSE", 1),
            BTreeMap::from([
                ("co_id".into(), Value::Int(1)),
                ("co_avail".into(), Value::Bool(true)),
                ("co_st_cnt".into(), Value::Int(2)),
            ]),
        );
        course_tab.insert(
            rid("COURSE", 2),
            BTreeMap::from([
                ("co_id".into(), Value::Int(2)),
                ("co_avail".into(), Value::Bool(true)),
                ("co_st_cnt".into(), Value::Int(1)),
            ]),
        );
        // Refactored STUDENT table.
        let mut student_tab = TableInstance::new();
        for (sid, co) in [(100, 1), (200, 1), (300, 2)] {
            student_tab.insert(
                rid("STUDENT", sid),
                BTreeMap::from([
                    ("st_co_id".into(), Value::Int(co)),
                    ("st_co_avail".into(), Value::Bool(true)),
                ]),
            );
        }
        // Log table.
        let mut log_tab = TableInstance::new();
        for (i, (co, n)) in [(1, 1), (1, 1), (2, 1)].iter().enumerate() {
            log_tab.insert(
                RecordId::new("LOG", vec![Value::Int(*co), Value::Int(i as i64)]),
                BTreeMap::from([
                    ("co_id".into(), Value::Int(*co)),
                    ("co_cnt_log".into(), Value::Int(*n)),
                ]),
            );
        }
        let vcs = vec![
            ValueCorrespondence {
                src_schema: "COURSE".into(),
                dst_schema: "STUDENT".into(),
                src_field: "co_avail".into(),
                dst_field: "st_co_avail".into(),
                theta: ThetaMap::new(vec![("co_id".into(), "st_co_id".into())]),
                alpha: Aggregator::Any,
            },
            ValueCorrespondence {
                src_schema: "COURSE".into(),
                dst_schema: "LOG".into(),
                src_field: "co_st_cnt".into(),
                dst_field: "co_cnt_log".into(),
                theta: ThetaMap::new(vec![("co_id".into(), "co_id".into())]),
                alpha: Aggregator::Sum,
            },
        ];
        let dst = BTreeMap::from([
            ("STUDENT".to_owned(), student_tab),
            ("LOG".to_owned(), log_tab),
        ]);
        check_table_containment(&course, &course_tab, &vcs, &dst).unwrap();
    }

    #[test]
    fn missing_image_is_detected() {
        let src = Schema::new(
            "A",
            vec![FieldDecl::key("id", Ty::Int), FieldDecl::new("v", Ty::Int)],
        );
        let mut src_tab = TableInstance::new();
        src_tab.insert(
            rid("A", 1),
            BTreeMap::from([("id".into(), Value::Int(1)), ("v".into(), Value::Int(5))]),
        );
        let vcs = vec![ValueCorrespondence {
            src_schema: "A".into(),
            dst_schema: "B".into(),
            src_field: "v".into(),
            dst_field: "w".into(),
            theta: ThetaMap::new(vec![("id".into(), "b_id".into())]),
            alpha: Aggregator::Any,
        }];
        let err =
            check_table_containment(&src, &src_tab, &vcs, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, ContainmentError::MissingImage { .. }));
    }

    #[test]
    fn value_mismatch_is_detected() {
        let src = Schema::new(
            "A",
            vec![FieldDecl::key("id", Ty::Int), FieldDecl::new("v", Ty::Int)],
        );
        let mut src_tab = TableInstance::new();
        src_tab.insert(
            rid("A", 1),
            BTreeMap::from([("id".into(), Value::Int(1)), ("v".into(), Value::Int(5))]),
        );
        let mut dst_tab = TableInstance::new();
        dst_tab.insert(
            rid("B", 9),
            BTreeMap::from([("b_id".into(), Value::Int(1)), ("w".into(), Value::Int(6))]),
        );
        let vcs = vec![ValueCorrespondence {
            src_schema: "A".into(),
            dst_schema: "B".into(),
            src_field: "v".into(),
            dst_field: "w".into(),
            theta: ThetaMap::new(vec![("id".into(), "b_id".into())]),
            alpha: Aggregator::Any,
        }];
        let dst = BTreeMap::from([("B".to_owned(), dst_tab)]);
        let err = check_table_containment(&src, &src_tab, &vcs, &dst).unwrap_err();
        assert!(matches!(err, ContainmentError::ValueMismatch { .. }));
    }

    #[test]
    fn unexplained_field_is_detected() {
        let src = Schema::new(
            "A",
            vec![FieldDecl::key("id", Ty::Int), FieldDecl::new("v", Ty::Int)],
        );
        let mut src_tab = TableInstance::new();
        src_tab.insert(rid("A", 1), BTreeMap::from([("v".into(), Value::Int(5))]));
        let err =
            check_table_containment(&src, &src_tab, &[], &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, ContainmentError::UnexplainedField { .. }));
    }

    #[test]
    fn aggregator_folds() {
        let vals = vec![Value::Int(3), Value::Int(4)];
        assert_eq!(Aggregator::Sum.fold(&vals), Some(Value::Int(7)));
        assert_eq!(Aggregator::Min.fold(&vals), Some(Value::Int(3)));
        assert_eq!(Aggregator::Max.fold(&vals), Some(Value::Int(4)));
        assert_eq!(Aggregator::Sum.fold(&[]), Some(Value::Int(0)));
        assert_eq!(Aggregator::Any.fold(&[]), None);
        assert!(Aggregator::Any.matches(&vals, &Value::Int(4)));
        assert!(!Aggregator::Any.matches(&vals, &Value::Int(5)));
    }

    #[test]
    fn identity_theta_maps_keys_to_themselves() {
        let s = Schema::new(
            "T",
            vec![FieldDecl::key("a", Ty::Int), FieldDecl::key("b", Ty::Int)],
        );
        let t = ThetaMap::identity(&s);
        assert_eq!(t.target_of("a"), Some("a"));
        assert_eq!(t.target_of("b"), Some("b"));
        assert_eq!(t.target_of("c"), None);
    }
}
