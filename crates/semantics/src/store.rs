//! The database state Σ = (str, vis, cnt) of §3.1.
//!
//! Events are grouped into *atoms*: the set of events sharing a record and a
//! timestamp. The `ConstructView` rule forces local views to be closed under
//! atoms, and the only visibility edges the semantics ever creates are
//! "every event of the command's local view → every event the command
//! generates". The store therefore represents `vis` compactly as one
//! atom-bitset per command timestamp; `vis(η, η′)` holds iff the atom of `η`
//! is in the view registered for `η′.ts`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use atropos_dsl::{CmdLabel, Value, ALIVE_FIELD};

use crate::bitset::BitSet;
use crate::event::{Event, EventId, EventKind, RecordId, Timestamp, TxnInstanceId};

/// Index of an atom (a record × timestamp event group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// All events of one command on one record (they share a timestamp, so any
/// consistent view contains either all or none of them).
#[derive(Debug, Clone)]
pub struct Atom {
    /// Shared timestamp.
    pub ts: Timestamp,
    /// Shared record.
    pub record: RecordId,
    /// Member events.
    pub events: Vec<EventId>,
    /// Transaction instance that produced the atom.
    pub txn: TxnInstanceId,
}

/// A local view: the subset of atoms a command observes (`Σ′ ⪯ Σ`).
#[derive(Debug, Clone)]
pub struct View {
    atoms: BitSet,
}

impl View {
    /// A view containing every atom currently in `store`.
    pub fn full(store: &Store) -> View {
        View {
            atoms: BitSet::all(store.atoms.len()),
        }
    }

    /// A view containing exactly the atoms for which `keep` returns true.
    pub fn filtered(store: &Store, mut keep: impl FnMut(&Atom) -> bool) -> View {
        let mut atoms = BitSet::new(store.atoms.len());
        for (i, a) in store.atoms.iter().enumerate() {
            if keep(a) {
                atoms.set(i);
            }
        }
        View { atoms }
    }

    /// True if the view contains the atom.
    pub fn contains(&self, a: AtomId) -> bool {
        self.atoms.contains(a.index())
    }

    /// Number of atoms in the view.
    pub fn atom_count(&self) -> usize {
        self.atoms.count()
    }
}

/// The global database state.
#[derive(Debug, Clone, Default)]
pub struct Store {
    events: Vec<Event>,
    atoms: Vec<Atom>,
    record_atoms: HashMap<RecordId, Vec<AtomId>>,
    /// Local view used by the command executed at each timestamp.
    views: HashMap<Timestamp, View>,
    cnt: Timestamp,
    initial: HashMap<RecordId, HashMap<String, Value>>,
    known: HashMap<String, BTreeSet<RecordId>>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Current execution counter.
    pub fn cnt(&self) -> Timestamp {
        self.cnt
    }

    /// All events, indexable by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All atoms, indexable by [`AtomId`].
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// The atom containing the given event.
    pub fn atom_of(&self, id: EventId) -> AtomId {
        let e = self.event(id);
        *self.record_atoms[&e.record]
            .iter()
            .find(|a| self.atoms[a.index()].ts == e.ts)
            .expect("every event belongs to an atom")
    }

    /// The view registered for the command executed at timestamp `ts`.
    pub fn view_at(&self, ts: Timestamp) -> Option<&View> {
        self.views.get(&ts)
    }

    /// The visibility relation: `vis(η, η′)` iff the atom of `η` was in the
    /// local view of the command that created `η′`.
    pub fn vis(&self, from: EventId, to: EventId) -> bool {
        let to_ts = self.event(to).ts;
        match self.views.get(&to_ts) {
            Some(view) => view.contains(self.atom_of(from)),
            None => false,
        }
    }

    /// Pre-populates a record with initial field values (and `alive = true`).
    pub fn insert_initial(&mut self, record: RecordId, fields: HashMap<String, Value>) {
        self.known
            .entry(record.schema.clone())
            .or_default()
            .insert(record.clone());
        self.initial.insert(record, fields);
    }

    /// Every record of `schema` the store knows about: initially populated
    /// records plus any record a write has touched.
    pub fn known_records(&self, schema: &str) -> impl Iterator<Item = &RecordId> {
        self.known.get(schema).into_iter().flatten()
    }

    /// Starts a new command: registers its local view and returns the
    /// timestamp its events must carry. Increments `cnt`.
    pub fn start_command(&mut self, view: View) -> Timestamp {
        let ts = self.cnt;
        self.cnt += 1;
        self.views.insert(ts, view);
        ts
    }

    fn push_event(&mut self, e: Event) -> EventId {
        let id = EventId(self.events.len() as u32);
        let record = e.record.clone();
        let ts = e.ts;
        let txn = e.txn;
        self.known
            .entry(record.schema.clone())
            .or_default()
            .insert(record.clone());
        let atoms = self.record_atoms.entry(record.clone()).or_default();
        match atoms
            .iter()
            .find(|a| self.atoms[a.index()].ts == ts)
            .copied()
        {
            Some(aid) => self.atoms[aid.index()].events.push(id),
            None => {
                let aid = AtomId(self.atoms.len() as u32);
                self.atoms.push(Atom {
                    ts,
                    record,
                    events: vec![id],
                    txn,
                });
                atoms.push(aid);
            }
        }
        self.events.push(e);
        id
    }

    /// Records a read event.
    pub fn add_read(
        &mut self,
        ts: Timestamp,
        txn: TxnInstanceId,
        cmd: &CmdLabel,
        record: RecordId,
        field: impl Into<String>,
    ) -> EventId {
        self.push_event(Event {
            ts,
            txn,
            cmd: cmd.clone(),
            record,
            field: field.into(),
            kind: EventKind::Read,
        })
    }

    /// Records a write event.
    pub fn add_write(
        &mut self,
        ts: Timestamp,
        txn: TxnInstanceId,
        cmd: &CmdLabel,
        record: RecordId,
        field: impl Into<String>,
        value: Value,
    ) -> EventId {
        self.push_event(Event {
            ts,
            txn,
            cmd: cmd.clone(),
            record,
            field: field.into(),
            kind: EventKind::Write(value),
        })
    }

    /// The value of `record.field` as seen through `view`: the
    /// highest-timestamp visible write, falling back to the initial value.
    pub fn value_in_view(&self, view: &View, record: &RecordId, field: &str) -> Option<Value> {
        let mut best: Option<(Timestamp, &Value)> = None;
        if let Some(atoms) = self.record_atoms.get(record) {
            for &aid in atoms {
                if !view.contains(aid) {
                    continue;
                }
                let atom = &self.atoms[aid.index()];
                for &eid in &atom.events {
                    let e = &self.events[eid.index()];
                    if e.field == field {
                        if let EventKind::Write(v) = &e.kind {
                            if best.is_none_or(|(bts, _)| atom.ts >= bts) {
                                best = Some((atom.ts, v));
                            }
                        }
                    }
                }
            }
        }
        match best {
            Some((_, v)) => Some(v.clone()),
            None => self.initial.get(record).and_then(|fs| fs.get(field).cloned()),
        }
    }

    /// Whether the record reads as live through `view` (§3's `alive` field).
    pub fn alive_in_view(&self, view: &View, record: &RecordId) -> bool {
        let mut best: Option<(Timestamp, bool)> = None;
        if let Some(atoms) = self.record_atoms.get(record) {
            for &aid in atoms {
                if !view.contains(aid) {
                    continue;
                }
                let atom = &self.atoms[aid.index()];
                for &eid in &atom.events {
                    let e = &self.events[eid.index()];
                    if e.field == ALIVE_FIELD {
                        if let EventKind::Write(Value::Bool(b)) = &e.kind {
                            if best.is_none_or(|(bts, _)| atom.ts >= bts) {
                                best = Some((atom.ts, *b));
                            }
                        }
                    }
                }
            }
        }
        match best {
            Some((_, b)) => b,
            None => self.initial.contains_key(record),
        }
    }

    /// Materializes the final contents of one table (records live under the
    /// full view), as `record → field → value`, using `defaults` for fields
    /// never written nor initialized.
    pub fn materialize(
        &self,
        schema: &str,
        fields: &[(String, Value)],
    ) -> BTreeMap<RecordId, BTreeMap<String, Value>> {
        let view = View::full(self);
        let mut out = BTreeMap::new();
        for r in self.known_records(schema) {
            if !self.alive_in_view(&view, r) {
                continue;
            }
            let mut row = BTreeMap::new();
            for (f, default) in fields {
                let v = self
                    .value_in_view(&view, r, f)
                    .unwrap_or_else(|| default.clone());
                row.insert(f.clone(), v);
            }
            out.insert(r.clone(), row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(k: i64) -> RecordId {
        RecordId::new("T", vec![Value::Int(k)])
    }

    #[test]
    fn initial_values_read_through_any_view() {
        let mut s = Store::new();
        s.insert_initial(rid(1), HashMap::from([("v".into(), Value::Int(10))]));
        let view = View::full(&s);
        assert_eq!(s.value_in_view(&view, &rid(1), "v"), Some(Value::Int(10)));
        assert!(s.alive_in_view(&view, &rid(1)));
        assert!(!s.alive_in_view(&view, &rid(2)));
    }

    #[test]
    fn later_writes_shadow_earlier_ones() {
        let mut s = Store::new();
        let t = TxnInstanceId(0);
        let c: CmdLabel = "U1".into();
        let ts1 = s.start_command(View::full(&s));
        s.add_write(ts1, t, &c, rid(1), "v", Value::Int(1));
        let ts2 = s.start_command(View::full(&s));
        s.add_write(ts2, t, &c, rid(1), "v", Value::Int(2));
        let view = View::full(&s);
        assert_eq!(s.value_in_view(&view, &rid(1), "v"), Some(Value::Int(2)));
    }

    #[test]
    fn partial_views_hide_writes() {
        let mut s = Store::new();
        let t = TxnInstanceId(0);
        let c: CmdLabel = "U1".into();
        let ts = s.start_command(View::full(&s));
        s.add_write(ts, t, &c, rid(1), "v", Value::Int(5));
        let empty = View::filtered(&s, |_| false);
        assert_eq!(s.value_in_view(&empty, &rid(1), "v"), None);
        let full = View::full(&s);
        assert_eq!(s.value_in_view(&full, &rid(1), "v"), Some(Value::Int(5)));
    }

    #[test]
    fn vis_tracks_command_views() {
        let mut s = Store::new();
        let t = TxnInstanceId(0);
        let c: CmdLabel = "U1".into();
        // First command writes under an empty view.
        let ts1 = s.start_command(View::full(&s)); // store empty: view empty anyway
        let e1 = s.add_write(ts1, t, &c, rid(1), "v", Value::Int(1));
        // Second command sees everything.
        let ts2 = s.start_command(View::full(&s));
        let e2 = s.add_write(ts2, t, &c, rid(1), "v", Value::Int(2));
        // Third command sees nothing.
        let ts3 = s.start_command(View::filtered(&s, |_| false));
        let e3 = s.add_read(ts3, t, &c, rid(1), "v");
        assert!(s.vis(e1, e2));
        assert!(!s.vis(e1, e3));
        assert!(!s.vis(e2, e3));
        assert!(!s.vis(e2, e1)); // e1's view predates e2's atom
    }

    #[test]
    fn atoms_group_same_command_events_on_a_record() {
        let mut s = Store::new();
        let t = TxnInstanceId(0);
        let c: CmdLabel = "U1".into();
        let ts = s.start_command(View::full(&s));
        let a = s.add_write(ts, t, &c, rid(1), "v", Value::Int(1));
        let b = s.add_write(ts, t, &c, rid(1), "w", Value::Int(2));
        let other = s.add_write(ts, t, &c, rid(2), "v", Value::Int(3));
        assert_eq!(s.atom_of(a), s.atom_of(b));
        assert_ne!(s.atom_of(a), s.atom_of(other));
        assert_eq!(s.atoms().len(), 2);
    }

    #[test]
    fn materialize_skips_deleted_records() {
        let mut s = Store::new();
        s.insert_initial(rid(1), HashMap::from([("v".into(), Value::Int(1))]));
        s.insert_initial(rid(2), HashMap::from([("v".into(), Value::Int(2))]));
        let t = TxnInstanceId(0);
        let c: CmdLabel = "D1".into();
        let ts = s.start_command(View::full(&s));
        s.add_write(ts, t, &c, rid(2), ALIVE_FIELD, Value::Bool(false));
        let m = s.materialize("T", &[("v".into(), Value::Int(0))]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&rid(1)]["v"], Value::Int(1));
    }
}
