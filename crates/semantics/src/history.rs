//! Serializability checking of complete histories (§3.2).
//!
//! A serial history satisfies **strong atomicity** (events are linearized by
//! timestamp, and all effects of a transaction become visible together) and
//! **strong isolation** (a transaction never observes commits that happened
//! after it started reading). [`check_history`] reports violations as
//! [`DynamicAnomaly`] witnesses attributed to command-label pairs, which is
//! how the paper's *anomalous access pairs* manifest at runtime.

use std::collections::BTreeSet;

use atropos_dsl::CmdLabel;

use crate::event::EventKind;
use crate::store::{AtomId, Store};

/// The flavour of serializability violation a witness demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// Linearization failure: an earlier event is invisible to a later one
    /// (first conjunct of strong atomicity; covers lost updates).
    StaleRead,
    /// Non-atomic visibility: one effect of a transaction is observed while
    /// a sibling effect is not (second conjunct of strong atomicity; covers
    /// dirty reads of multi-command transactions).
    NonAtomicVisibility,
    /// Isolation failure: a later command of a transaction observes an atom
    /// that an earlier command did not (covers non-repeatable reads).
    IsolationViolation,
}

/// A runtime witness of a serializability violation, attributed to the two
/// database commands whose events conflict.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DynamicAnomaly {
    /// Violation flavour.
    pub kind: ViolationKind,
    /// First command label.
    pub cmd1: CmdLabel,
    /// Fields of the first command's events involved.
    pub fields1: BTreeSet<String>,
    /// Second command label.
    pub cmd2: CmdLabel,
    /// Fields of the second command's events involved.
    pub fields2: BTreeSet<String>,
}

fn atom_cmd_fields(store: &Store, a: AtomId) -> (CmdLabel, BTreeSet<String>) {
    let atom = &store.atoms()[a.index()];
    let mut fields = BTreeSet::new();
    let mut cmd = None;
    for &e in &atom.events {
        let ev = store.event(e);
        cmd = Some(ev.cmd.clone());
        fields.insert(ev.field.clone());
    }
    (cmd.expect("atoms are non-empty"), fields)
}

/// True if the history recorded in `store` satisfies both strong atomicity
/// and strong isolation (i.e. it is serializable).
pub fn is_serializable(store: &Store) -> bool {
    check_history_impl(store, true).is_empty()
}

/// Returns all distinct violation witnesses in the history.
pub fn check_history(store: &Store) -> Vec<DynamicAnomaly> {
    check_history_impl(store, false)
}

fn check_history_impl(store: &Store, stop_at_first: bool) -> Vec<DynamicAnomaly> {
    let mut out: BTreeSet<DynamicAnomaly> = BTreeSet::new();
    let atoms = store.atoms();
    // Collect the distinct command timestamps (each belongs to exactly one
    // transaction instance) with their registered views.
    let mut command_ts: Vec<u64> = atoms.iter().map(|a| a.ts).collect();
    command_ts.sort_unstable();
    command_ts.dedup();
    let txn_of_ts = |ts: u64| {
        atoms
            .iter()
            .find(|a| a.ts == ts)
            .map(|a| a.txn)
            .expect("every command timestamp has an atom")
    };

    // Strong atomicity, first conjunct: η.ts < η'.ts ⇒ vis(η, η').
    for (ai, a) in atoms.iter().enumerate() {
        for &ts in &command_ts {
            if ts <= a.ts {
                continue;
            }
            let Some(view) = store.view_at(ts) else { continue };
            if !view.contains(AtomId(ai as u32)) {
                // Attribute to (a's command, observing command).
                let (c1, f1) = atom_cmd_fields(store, AtomId(ai as u32));
                // Find an atom of the observing command for attribution.
                if let Some((bi, _)) = atoms.iter().enumerate().find(|(_, b)| b.ts == ts) {
                    let (c2, f2) = atom_cmd_fields(store, AtomId(bi as u32));
                    out.insert(DynamicAnomaly {
                        kind: ViolationKind::StaleRead,
                        cmd1: c1,
                        fields1: f1,
                        cmd2: c2,
                        fields2: f2,
                    });
                    if stop_at_first {
                        return out.into_iter().collect();
                    }
                }
            }
        }
    }

    // Group atoms by transaction for the same-transaction conditions.
    let n = atoms.len();
    for i in 0..n {
        for j in 0..n {
            if i == j || atoms[i].txn != atoms[j].txn {
                continue;
            }
            // Strong atomicity, second conjunct:
            // st(η,η') ∧ vis(η,η'') ⇒ vis(η',η''), with the observer η''
            // drawn from a *different* transaction (a transaction's own
            // earlier commands cannot see effects that do not exist yet).
            for &ts in &command_ts {
                if ts == atoms[i].ts || ts == atoms[j].ts || txn_of_ts(ts) == atoms[i].txn {
                    continue;
                }
                let Some(view) = store.view_at(ts) else { continue };
                if view.contains(AtomId(i as u32)) && !view.contains(AtomId(j as u32)) {
                    let (c1, f1) = atom_cmd_fields(store, AtomId(i as u32));
                    let (c2, f2) = atom_cmd_fields(store, AtomId(j as u32));
                    out.insert(DynamicAnomaly {
                        kind: ViolationKind::NonAtomicVisibility,
                        cmd1: c1,
                        fields1: f1,
                        cmd2: c2,
                        fields2: f2,
                    });
                    if stop_at_first {
                        return out.into_iter().collect();
                    }
                }
            }
            // Strong isolation: for η (earlier) and η' (later) of the same
            // transaction, vis(η'', η') ⇒ vis(η'', η).
            if atoms[i].ts < atoms[j].ts {
                let (Some(vi), Some(vj)) = (store.view_at(atoms[i].ts), store.view_at(atoms[j].ts))
                else {
                    continue;
                };
                for (ki, k) in atoms.iter().enumerate() {
                    if k.txn == atoms[i].txn {
                        continue;
                    }
                    if vj.contains(AtomId(ki as u32)) && !vi.contains(AtomId(ki as u32)) {
                        let (c1, f1) = atom_cmd_fields(store, AtomId(i as u32));
                        let (c2, f2) = atom_cmd_fields(store, AtomId(j as u32));
                        out.insert(DynamicAnomaly {
                            kind: ViolationKind::IsolationViolation,
                            cmd1: c1,
                            fields1: f1,
                            cmd2: c2,
                            fields2: f2,
                        });
                        if stop_at_first {
                            return out.into_iter().collect();
                        }
                    }
                }
            }
        }
    }

    // Suppress read-only stale-read reports between commands that share no
    // record? No: per §3.2 any linearization failure is a violation. Keep all.
    let _ = EventKind::Read;
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_interleaved, run_serial, Invocation, ViewStrategy};
    use atropos_dsl::{parse, Value};

    fn course_program() -> atropos_dsl::Program {
        parse(
            "schema STUDENT { st_id: int key, st_name: string, st_em_id: int }
             schema EMAIL { em_id: int key, em_addr: string }
             txn getSt(id: int) {
                 @S1 x := select * from STUDENT where st_id = id;
                 @S2 y := select em_addr from EMAIL where em_id = x.st_em_id;
                 return 0;
             }
             txn setSt(id: int, name: string, email: string) {
                 @S4 x := select st_em_id from STUDENT where st_id = id;
                 @U1 update STUDENT set st_name = name where st_id = id;
                 @U2 update EMAIL set em_addr = email where em_id = x.st_em_id;
                 return 0;
             }",
        )
        .unwrap()
    }

    fn setup(i: &mut crate::interp::Interpreter<'_>) {
        i.populate(
            "STUDENT",
            vec![Value::Int(1)],
            [
                ("st_name", Value::Str("Bob".into())),
                ("st_em_id", Value::Int(7)),
            ],
        );
        i.populate(
            "EMAIL",
            vec![Value::Int(7)],
            [("em_addr", Value::Str("bob@host".into()))],
        );
    }

    #[test]
    fn serial_histories_are_serializable() {
        let p = course_program();
        let invs = vec![
            Invocation::new(
                "setSt",
                vec![
                    Value::Int(1),
                    Value::Str("Alice".into()),
                    Value::Str("a@host".into()),
                ],
            ),
            Invocation::new("getSt", vec![Value::Int(1)]),
        ];
        let (store, _) = run_serial(&p, setup, &invs).unwrap();
        assert!(is_serializable(&store));
        assert!(check_history(&store).is_empty());
    }

    #[test]
    fn random_views_produce_witnessed_anomalies() {
        let p = course_program();
        let invs = vec![
            Invocation::new(
                "setSt",
                vec![
                    Value::Int(1),
                    Value::Str("Alice".into()),
                    Value::Str("a@host".into()),
                ],
            ),
            Invocation::new("getSt", vec![Value::Int(1)]),
            Invocation::new("getSt", vec![Value::Int(1)]),
        ];
        let mut found = false;
        for seed in 0..20 {
            let (store, _) = run_interleaved(
                &p,
                setup,
                &invs,
                ViewStrategy::RandomAtoms { p: 0.5 },
                seed,
            )
            .unwrap();
            let anomalies = check_history(&store);
            if !anomalies.is_empty() {
                found = true;
                break;
            }
        }
        assert!(found, "expected anomalies under random views");
    }

    #[test]
    fn single_transaction_history_is_serializable() {
        let p = course_program();
        let invs = vec![Invocation::new("getSt", vec![Value::Int(1)])];
        let (store, _) = run_serial(&p, setup, &invs).unwrap();
        assert!(is_serializable(&store));
    }

    #[test]
    fn witnesses_name_offending_commands() {
        let p = course_program();
        let invs = vec![
            Invocation::new(
                "setSt",
                vec![
                    Value::Int(1),
                    Value::Str("A".into()),
                    Value::Str("a@h".into()),
                ],
            ),
            Invocation::new("getSt", vec![Value::Int(1)]),
        ];
        let mut labels = BTreeSet::new();
        for seed in 0..40 {
            let (store, _) = run_interleaved(
                &p,
                setup,
                &invs,
                ViewStrategy::RandomAtoms { p: 0.5 },
                seed,
            )
            .unwrap();
            for a in check_history(&store) {
                labels.insert(a.cmd1.0.clone());
                labels.insert(a.cmd2.0.clone());
            }
        }
        // The classic non-repeatable-read participants appear among witnesses.
        assert!(labels.contains("U1") || labels.contains("U2") || labels.contains("S1"));
    }
}
