//! Program analysis utilities shared by the refactoring engine: command
//! lookup, variable usage, in-place AST traversal, and the [`DirtySet`]
//! invalidation payload every refactoring rule reports to the repair
//! driver's verdict cache.

use std::collections::{BTreeMap, BTreeSet};

use atropos_dsl::{CmdLabel, Expr, Program, Stmt, Transaction, Where};

/// Applies `f` to every statement (commands and control statements) of a
/// body, recursing into `if`/`iterate` bodies.
pub fn visit_stmts(body: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in body {
        f(s);
        match s {
            Stmt::If { body, .. } | Stmt::Iterate { body, .. } => visit_stmts(body, f),
            _ => {}
        }
    }
}

/// Applies `f` to every statement of a body mutably, recursing into nested
/// bodies.
pub fn visit_stmts_mut(body: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in body.iter_mut() {
        f(s);
        match s {
            Stmt::If { body, .. } | Stmt::Iterate { body, .. } => visit_stmts_mut(body, f),
            _ => {}
        }
    }
}

/// Removes every database command for which `pred` returns true, at any
/// nesting depth. Control statements are kept even if emptied.
pub fn retain_commands(body: &mut Vec<Stmt>, pred: &impl Fn(&Stmt) -> bool) {
    body.retain(|s| match s {
        Stmt::If { .. } | Stmt::Iterate { .. } => true,
        other => pred(other),
    });
    for s in body.iter_mut() {
        if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
            retain_commands(body, pred);
        }
    }
}

/// Finds the transaction containing the command with the given label.
pub fn txn_of_command<'p>(program: &'p Program, label: &CmdLabel) -> Option<&'p Transaction> {
    program
        .transactions
        .iter()
        .find(|t| commands_of(t).iter().any(|s| s.label() == Some(label)))
}

/// All database commands of a transaction, flattened in program order.
pub fn commands_of(txn: &Transaction) -> Vec<&Stmt> {
    fn collect<'a>(body: &'a [Stmt], out: &mut Vec<&'a Stmt>) {
        for s in body {
            match s {
                Stmt::If { body, .. } | Stmt::Iterate { body, .. } => collect(body, out),
                other => out.push(other),
            }
        }
    }
    let mut out = Vec::new();
    collect(&txn.body, &mut out);
    out
}

/// Variables read by an expression.
fn expr_vars(e: &Expr, out: &mut BTreeSet<String>) {
    e.walk(&mut |x| {
        if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = x {
            out.insert(v.clone());
        }
    });
}

fn where_vars(w: &Where, out: &mut BTreeSet<String>) {
    w.walk_exprs(&mut |e| {
        if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = e {
            out.insert(v.clone());
        }
    });
}

/// Every variable *used* (read) anywhere in the transaction: command where
/// clauses, assigned expressions, control guards, and the return expression.
pub fn used_vars(txn: &Transaction) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    fn walk(body: &[Stmt], out: &mut BTreeSet<String>) {
        for s in body {
            match s {
                Stmt::Select(c) => where_vars(&c.where_, out),
                Stmt::Update(c) => {
                    where_vars(&c.where_, out);
                    for (_, e) in &c.assigns {
                        expr_vars(e, out);
                    }
                }
                Stmt::Insert(c) => {
                    for (_, e) in &c.values {
                        expr_vars(e, out);
                    }
                }
                Stmt::Delete(c) => where_vars(&c.where_, out),
                Stmt::If { cond, body } => {
                    expr_vars(cond, out);
                    walk(body, out);
                }
                Stmt::Iterate { count, body } => {
                    expr_vars(count, out);
                    walk(body, out);
                }
            }
        }
    }
    walk(&txn.body, &mut out);
    expr_vars(&txn.ret, &mut out);
    out
}

/// Rewrites every expression of a transaction in place (including nested
/// guards, where clauses, and the return expression).
pub fn rewrite_exprs(txn: &mut Transaction, f: &impl Fn(&Expr) -> Option<Expr>) {
    fn go_expr(e: &mut Expr, f: &impl Fn(&Expr) -> Option<Expr>) {
        if let Some(new) = f(e) {
            *e = new;
            return;
        }
        match e {
            Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) | Expr::Bool(_, l, r) => {
                go_expr(l, f);
                go_expr(r, f);
            }
            Expr::Not(x) => go_expr(x, f),
            Expr::At(i, _, _) => go_expr(i, f),
            _ => {}
        }
    }
    fn go_where(w: &mut Where, f: &impl Fn(&Expr) -> Option<Expr>) {
        match w {
            Where::True => {}
            Where::Cmp { expr, .. } => go_expr(expr, f),
            Where::And(l, r) | Where::Or(l, r) => {
                go_where(l, f);
                go_where(r, f);
            }
        }
    }
    fn go_body(body: &mut [Stmt], f: &impl Fn(&Expr) -> Option<Expr>) {
        for s in body.iter_mut() {
            match s {
                Stmt::Select(c) => go_where(&mut c.where_, f),
                Stmt::Update(c) => {
                    go_where(&mut c.where_, f);
                    for (_, e) in c.assigns.iter_mut() {
                        go_expr(e, f);
                    }
                }
                Stmt::Insert(c) => {
                    for (_, e) in c.values.iter_mut() {
                        go_expr(e, f);
                    }
                }
                Stmt::Delete(c) => go_where(&mut c.where_, f),
                Stmt::If { cond, body } => {
                    go_expr(cond, f);
                    go_body(body, f);
                }
                Stmt::Iterate { count, body } => {
                    go_expr(count, f);
                    go_body(body, f);
                }
            }
        }
    }
    go_body(&mut txn.body, f);
    go_expr(&mut txn.ret, f);
}

/// What one refactoring step invalidated: the invalidation payload every
/// rule (split, merge, redirect, logging, post-processing) reports so the
/// repair driver can evict the affected entries from its
/// [`atropos_detect::VerdictCache`] and attribute per-iteration reuse
/// statistics.
///
/// `txns` is the authoritative field for cache eviction — a transaction is
/// dirty when any of its commands (or a schema it accesses) changed, since
/// every cached verdict involving it may be stale. `labels` records the
/// individual commands that changed (changed, added, or removed), for
/// diagnostics and step logs. `renames` carries pure relabelings — label
/// changes on commands whose summaries are otherwise untouched — which the
/// cache resolves by remapping instead of re-solving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Labels of commands whose printed form changed, appeared, or vanished.
    pub labels: BTreeSet<String>,
    /// Names of transactions containing a dirty command or accessing a
    /// changed schema.
    pub txns: BTreeSet<String>,
    /// Pure relabelings (old label → new label) with unchanged summaries.
    pub renames: BTreeMap<String, String>,
}

impl DirtySet {
    /// True when the step changed nothing the detector can observe.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() && self.txns.is_empty() && self.renames.is_empty()
    }

    /// Folds a *subsequent* step's payload into this one (for composite
    /// rules like redirect-then-merge). Rename maps are applied
    /// simultaneously by the verdict cache, so `other`'s renames — which
    /// happened *after* ours — are composed through ours (`a → b` then
    /// `b → c` yields `a → c`), not merely unioned.
    pub fn merge(&mut self, other: DirtySet) {
        self.labels.extend(other.labels);
        self.txns.extend(other.txns);
        for target in self.renames.values_mut() {
            if let Some(next) = other.renames.get(target) {
                *target = next.clone();
            }
        }
        for (from, to) in other.renames {
            self.renames.entry(from).or_insert(to);
        }
    }
}

/// Computes the [`DirtySet`] between two program versions by diffing the
/// **detector-visible summaries** of every transaction and command (the
/// same [`atropos_detect::txn_fingerprint`] / `cmd_fingerprint` canon the
/// verdict cache is keyed by). A transaction is dirty when its summary
/// fingerprint changed or it appeared/vanished; a label is dirty when its
/// command's summary changed or the label appeared/vanished.
///
/// A transaction whose fingerprint is *unchanged* but whose labels moved is
/// a **pure relabeling**: its command sequence is detector-identical, so
/// the differing labels are paired positionally and reported as `renames`
/// instead of dirt — the verdict cache serves such pairs from memory with
/// the labels remapped rather than re-solving them.
///
/// Summaries absorb schema declarations (a `select *` expands through the
/// declared fields) and deliberately ignore detector-invisible edits — a
/// rewritten assignment *expression* with unchanged field/variable sets
/// produces an empty dirty set, because no anomaly verdict can depend on
/// it. This is the shared engine behind each rule's `_tracked` variant; a
/// rule may extend the result but must never shrink it.
pub fn dirty_between(before: &Program, after: &Program) -> DirtySet {
    /// Per transaction: its fingerprint and its `(label, cmd fingerprint)`
    /// sequence in program order.
    type TxnInfo = (u64, Vec<(String, u64)>);
    let info = |p: &Program| -> BTreeMap<String, TxnInfo> {
        atropos_detect::summarize_program(p)
            .into_iter()
            .map(|t| {
                let fp = atropos_detect::txn_fingerprint(&t);
                let cmds = t
                    .commands
                    .iter()
                    .map(|c| (c.label.0.clone(), atropos_detect::cmd_fingerprint(c)))
                    .collect();
                (t.name.clone(), (fp, cmds))
            })
            .collect()
    };
    let (ib, ia) = (info(before), info(after));

    let mut dirty = DirtySet::default();
    for (name, (fp_b, cmds_b)) in &ib {
        match ia.get(name) {
            // Unchanged summaries: same length by fingerprint equality, so
            // label differences pair up positionally as pure relabelings.
            Some((fp_a, cmds_a)) if fp_a == fp_b => {
                for ((old, _), (new, _)) in cmds_b.iter().zip(cmds_a) {
                    if old != new {
                        dirty.renames.insert(old.clone(), new.clone());
                    }
                }
            }
            _ => {
                dirty.txns.insert(name.clone());
            }
        }
    }
    for name in ia.keys() {
        if !ib.contains_key(name) {
            dirty.txns.insert(name.clone());
        }
    }

    // Label dirt: command-level fingerprint diff across the whole program,
    // minus the labels accounted for as renames.
    let labels = |m: &BTreeMap<String, TxnInfo>| -> BTreeMap<String, u64> {
        m.values()
            .flat_map(|(_, cmds)| cmds.iter().cloned())
            .collect()
    };
    let (lb, la) = (labels(&ib), labels(&ia));
    let renamed: BTreeSet<&String> = dirty
        .renames
        .iter()
        .flat_map(|(from, to)| [from, to])
        .collect();
    for (label, fp) in &lb {
        if la.get(label) != Some(fp) && !renamed.contains(label) {
            dirty.labels.insert(label.clone());
        }
    }
    for label in la.keys() {
        if !lb.contains_key(label) && !renamed.contains(label) {
            dirty.labels.insert(label.clone());
        }
    }
    dirty
}

/// True if any command of the program accesses `schema`.
pub fn schema_accessed(program: &Program, schema: &str) -> bool {
    program
        .commands()
        .iter()
        .any(|(_, s)| s.schema() == Some(schema))
}

/// The fields of `schema` accessed anywhere in the program (read, written,
/// filtered on, or projected).
pub fn accessed_fields(program: &Program, schema: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let decl_fields: Vec<String> = program
        .schema(schema)
        .map(|s| s.fields.iter().map(|f| f.name.clone()).collect())
        .unwrap_or_default();
    for t in &program.transactions {
        let info = var_bindings(t);
        // Field accesses through variables bound to this schema.
        let note_expr = |e: &Expr, out: &mut BTreeSet<String>| {
            e.walk(&mut |x| {
                if let Expr::Agg(_, v, f) | Expr::At(_, v, f) = x {
                    if info.iter().any(|(bv, bs)| bv == v && bs == schema) {
                        out.insert(f.clone());
                    }
                }
            });
        };
        visit_stmts(&t.body, &mut |s| match s {
            Stmt::Select(c) if c.schema == schema => {
                out.extend(c.where_.fields());
                match &c.fields {
                    Some(fs) => out.extend(fs.iter().cloned()),
                    None => out.extend(decl_fields.iter().cloned()),
                }
            }
            Stmt::Update(c) if c.schema == schema => {
                out.extend(c.where_.fields());
                out.extend(c.assigns.iter().map(|(f, _)| f.clone()));
            }
            Stmt::Insert(c) if c.schema == schema => {
                out.extend(c.values.iter().map(|(f, _)| f.clone()));
            }
            Stmt::Delete(c) if c.schema == schema => {
                out.extend(c.where_.fields());
            }
            _ => {}
        });
        visit_stmts(&t.body, &mut |s| match s {
            Stmt::Update(c) => {
                for (_, e) in &c.assigns {
                    note_expr(e, &mut out);
                }
            }
            Stmt::If { cond, .. } => note_expr(cond, &mut out),
            Stmt::Iterate { count, .. } => note_expr(count, &mut out),
            _ => {}
        });
        note_expr(&t.ret, &mut out);
    }
    out
}

/// `(variable, schema)` pairs bound by the transaction's selects.
pub fn var_bindings(txn: &Transaction) -> Vec<(String, String)> {
    let mut out = Vec::new();
    visit_stmts(&txn.body, &mut |s| {
        if let Stmt::Select(c) = s {
            out.push((c.var.clone(), c.schema.clone()));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    const SRC: &str = "schema T { id: int key, v: int, w: int }
         schema U { id: int key, z: int }
         txn t(k: int) {
             @S1 x := select v from T where id = k;
             if (x.v > 0) {
                 @U1 update U set z = x.v where id = k;
             }
             @S2 y := select w from T where id = k;
             return x.v;
         }";

    #[test]
    fn commands_flatten_in_program_order() {
        let p = parse(SRC).unwrap();
        let cs = commands_of(&p.transactions[0]);
        let labels: Vec<_> = cs.iter().map(|s| s.label().unwrap().0.clone()).collect();
        assert_eq!(labels, vec!["S1", "U1", "S2"]);
    }

    #[test]
    fn used_vars_sees_guards_and_return() {
        let p = parse(SRC).unwrap();
        let used = used_vars(&p.transactions[0]);
        assert!(used.contains("x"));
        assert!(!used.contains("y")); // bound but never read
    }

    #[test]
    fn retain_commands_removes_nested() {
        let p = parse(SRC).unwrap();
        let mut t = p.transactions[0].clone();
        retain_commands(&mut t.body, &|s| s.label().map(|l| l.0.as_str()) != Some("U1"));
        let labels: Vec<_> = commands_of(&t)
            .iter()
            .map(|s| s.label().unwrap().0.clone())
            .collect();
        assert_eq!(labels, vec!["S1", "S2"]);
    }

    #[test]
    fn accessed_fields_covers_projection_filter_and_exprs() {
        let p = parse(SRC).unwrap();
        let t_fields = accessed_fields(&p, "T");
        assert!(t_fields.contains("v") && t_fields.contains("w") && t_fields.contains("id"));
        let u_fields = accessed_fields(&p, "U");
        assert!(u_fields.contains("z") && u_fields.contains("id"));
    }

    #[test]
    fn rewrite_exprs_replaces_field_accesses() {
        let p = parse(SRC).unwrap();
        let mut t = p.transactions[0].clone();
        rewrite_exprs(&mut t, &|e| match e {
            Expr::At(i, v, f) if v == "x" && f == "v" => {
                Some(Expr::At(i.clone(), "x".into(), "renamed".into()))
            }
            _ => None,
        });
        let used: BTreeSet<String> = {
            let mut out = BTreeSet::new();
            t.ret.walk(&mut |e| {
                if let Expr::At(_, _, f) = e {
                    out.insert(f.clone());
                }
            });
            out
        };
        assert!(used.contains("renamed"));
    }

    #[test]
    fn schema_accessed_detects_usage() {
        let p = parse(SRC).unwrap();
        assert!(schema_accessed(&p, "T"));
        assert!(schema_accessed(&p, "U"));
        assert!(!schema_accessed(&p, "V"));
    }

    #[test]
    fn dirty_between_reports_changed_commands_and_txns() {
        let before = parse(SRC).unwrap();
        assert!(dirty_between(&before, &before).is_empty());

        // Touch one command's write set: its label and transaction are dirty.
        let after = parse(&SRC.replace("set z = x.v", "set z = x.v, id = k")).unwrap();
        let dirty = dirty_between(&before, &after);
        assert_eq!(dirty.labels, BTreeSet::from(["U1".to_owned()]));
        assert_eq!(dirty.txns, BTreeSet::from(["t".to_owned()]));

        // Removing a command dirties its label and transaction too.
        let removed = parse(&SRC.replace("@S2 y := select w from T where id = k;", "")).unwrap();
        let dirty = dirty_between(&before, &removed);
        assert!(dirty.labels.contains("S2"));
        assert!(dirty.txns.contains("t"));
    }

    #[test]
    fn dirty_between_reports_pure_relabelings_as_renames() {
        // A label change on an otherwise untouched command is a rename, not
        // dirt: the verdict cache remaps instead of re-solving.
        let before = parse(SRC).unwrap();
        let after = parse(&SRC.replace("@U1", "@U9")).unwrap();
        let dirty = dirty_between(&before, &after);
        assert!(dirty.txns.is_empty(), "{dirty:?}");
        assert!(dirty.labels.is_empty(), "{dirty:?}");
        assert_eq!(
            dirty.renames,
            BTreeMap::from([("U1".to_owned(), "U9".to_owned())])
        );
        assert!(!dirty.is_empty());
    }

    #[test]
    fn dirty_between_ignores_detector_invisible_edits() {
        // Rewriting an assignment expression without changing any field or
        // variable set cannot affect a verdict, so the diff stays empty.
        let before = parse(SRC).unwrap();
        let after = parse(&SRC.replace("set z = x.v", "set z = x.v + 1")).unwrap();
        assert!(dirty_between(&before, &after).is_empty());
    }

    #[test]
    fn dirty_between_schema_change_dirties_star_selects() {
        // `select *` summaries expand through the declaration: adding a
        // field must dirty the selecting transaction even though its
        // command text is unchanged.
        const STAR: &str = "schema T { id: int key, v: int }
             txn t(k: int) {
                 @S1 x := select * from T where id = k;
                 return x.v;
             }";
        let before = parse(STAR).unwrap();
        let after = parse(&STAR.replace(
            "schema T { id: int key, v: int }",
            "schema T { id: int key, v: int, extra: int }",
        ))
        .unwrap();
        let dirty = dirty_between(&before, &after);
        assert!(dirty.txns.contains("t"), "{dirty:?}");
        assert!(dirty.labels.contains("S1"), "{dirty:?}");
    }

    #[test]
    fn dirty_set_merge_unions_payloads() {
        let mut a = DirtySet {
            labels: BTreeSet::from(["L1".to_owned()]),
            txns: BTreeSet::from(["t1".to_owned()]),
            renames: BTreeMap::new(),
        };
        let b = DirtySet {
            labels: BTreeSet::from(["L2".to_owned()]),
            txns: BTreeSet::from(["t2".to_owned()]),
            renames: BTreeMap::from([("old".to_owned(), "new".to_owned())]),
        };
        a.merge(b);
        assert_eq!(a.labels.len(), 2);
        assert_eq!(a.txns.len(), 2);
        assert_eq!(a.renames.get("old").map(String::as_str), Some("new"));
        assert!(!a.is_empty());
    }

    #[test]
    fn dirty_set_merge_composes_sequential_renames() {
        // Step 1 renamed a → b; step 2 renamed b → c. The composite map is
        // applied simultaneously by the cache, so it must read a → c.
        let mut first = DirtySet {
            renames: BTreeMap::from([("a".to_owned(), "b".to_owned())]),
            ..DirtySet::default()
        };
        let second = DirtySet {
            renames: BTreeMap::from([("b".to_owned(), "c".to_owned())]),
            ..DirtySet::default()
        };
        first.merge(second);
        assert_eq!(first.renames.get("a").map(String::as_str), Some("c"));
        // The second step's own entry survives for labels that were
        // already `b` before step 1 ran (if any).
        assert_eq!(first.renames.get("b").map(String::as_str), Some("c"));
    }
}
