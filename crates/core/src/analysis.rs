//! Program analysis utilities shared by the refactoring engine: command
//! lookup, variable usage, and in-place AST traversal.

use std::collections::BTreeSet;

use atropos_dsl::{CmdLabel, Expr, Program, Stmt, Transaction, Where};

/// Applies `f` to every statement (commands and control statements) of a
/// body, recursing into `if`/`iterate` bodies.
pub fn visit_stmts(body: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in body {
        f(s);
        match s {
            Stmt::If { body, .. } | Stmt::Iterate { body, .. } => visit_stmts(body, f),
            _ => {}
        }
    }
}

/// Applies `f` to every statement of a body mutably, recursing into nested
/// bodies.
pub fn visit_stmts_mut(body: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in body.iter_mut() {
        f(s);
        match s {
            Stmt::If { body, .. } | Stmt::Iterate { body, .. } => visit_stmts_mut(body, f),
            _ => {}
        }
    }
}

/// Removes every database command for which `pred` returns true, at any
/// nesting depth. Control statements are kept even if emptied.
pub fn retain_commands(body: &mut Vec<Stmt>, pred: &impl Fn(&Stmt) -> bool) {
    body.retain(|s| match s {
        Stmt::If { .. } | Stmt::Iterate { .. } => true,
        other => pred(other),
    });
    for s in body.iter_mut() {
        if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
            retain_commands(body, pred);
        }
    }
}

/// Finds the transaction containing the command with the given label.
pub fn txn_of_command<'p>(program: &'p Program, label: &CmdLabel) -> Option<&'p Transaction> {
    program
        .transactions
        .iter()
        .find(|t| commands_of(t).iter().any(|s| s.label() == Some(label)))
}

/// All database commands of a transaction, flattened in program order.
pub fn commands_of(txn: &Transaction) -> Vec<&Stmt> {
    fn collect<'a>(body: &'a [Stmt], out: &mut Vec<&'a Stmt>) {
        for s in body {
            match s {
                Stmt::If { body, .. } | Stmt::Iterate { body, .. } => collect(body, out),
                other => out.push(other),
            }
        }
    }
    let mut out = Vec::new();
    collect(&txn.body, &mut out);
    out
}

/// Variables read by an expression.
fn expr_vars(e: &Expr, out: &mut BTreeSet<String>) {
    e.walk(&mut |x| {
        if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = x {
            out.insert(v.clone());
        }
    });
}

fn where_vars(w: &Where, out: &mut BTreeSet<String>) {
    w.walk_exprs(&mut |e| {
        if let Expr::Agg(_, v, _) | Expr::At(_, v, _) = e {
            out.insert(v.clone());
        }
    });
}

/// Every variable *used* (read) anywhere in the transaction: command where
/// clauses, assigned expressions, control guards, and the return expression.
pub fn used_vars(txn: &Transaction) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    fn walk(body: &[Stmt], out: &mut BTreeSet<String>) {
        for s in body {
            match s {
                Stmt::Select(c) => where_vars(&c.where_, out),
                Stmt::Update(c) => {
                    where_vars(&c.where_, out);
                    for (_, e) in &c.assigns {
                        expr_vars(e, out);
                    }
                }
                Stmt::Insert(c) => {
                    for (_, e) in &c.values {
                        expr_vars(e, out);
                    }
                }
                Stmt::Delete(c) => where_vars(&c.where_, out),
                Stmt::If { cond, body } => {
                    expr_vars(cond, out);
                    walk(body, out);
                }
                Stmt::Iterate { count, body } => {
                    expr_vars(count, out);
                    walk(body, out);
                }
            }
        }
    }
    walk(&txn.body, &mut out);
    expr_vars(&txn.ret, &mut out);
    out
}

/// Rewrites every expression of a transaction in place (including nested
/// guards, where clauses, and the return expression).
pub fn rewrite_exprs(txn: &mut Transaction, f: &impl Fn(&Expr) -> Option<Expr>) {
    fn go_expr(e: &mut Expr, f: &impl Fn(&Expr) -> Option<Expr>) {
        if let Some(new) = f(e) {
            *e = new;
            return;
        }
        match e {
            Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) | Expr::Bool(_, l, r) => {
                go_expr(l, f);
                go_expr(r, f);
            }
            Expr::Not(x) => go_expr(x, f),
            Expr::At(i, _, _) => go_expr(i, f),
            _ => {}
        }
    }
    fn go_where(w: &mut Where, f: &impl Fn(&Expr) -> Option<Expr>) {
        match w {
            Where::True => {}
            Where::Cmp { expr, .. } => go_expr(expr, f),
            Where::And(l, r) | Where::Or(l, r) => {
                go_where(l, f);
                go_where(r, f);
            }
        }
    }
    fn go_body(body: &mut [Stmt], f: &impl Fn(&Expr) -> Option<Expr>) {
        for s in body.iter_mut() {
            match s {
                Stmt::Select(c) => go_where(&mut c.where_, f),
                Stmt::Update(c) => {
                    go_where(&mut c.where_, f);
                    for (_, e) in c.assigns.iter_mut() {
                        go_expr(e, f);
                    }
                }
                Stmt::Insert(c) => {
                    for (_, e) in c.values.iter_mut() {
                        go_expr(e, f);
                    }
                }
                Stmt::Delete(c) => go_where(&mut c.where_, f),
                Stmt::If { cond, body } => {
                    go_expr(cond, f);
                    go_body(body, f);
                }
                Stmt::Iterate { count, body } => {
                    go_expr(count, f);
                    go_body(body, f);
                }
            }
        }
    }
    go_body(&mut txn.body, f);
    go_expr(&mut txn.ret, f);
}

/// True if any command of the program accesses `schema`.
pub fn schema_accessed(program: &Program, schema: &str) -> bool {
    program
        .commands()
        .iter()
        .any(|(_, s)| s.schema() == Some(schema))
}

/// The fields of `schema` accessed anywhere in the program (read, written,
/// filtered on, or projected).
pub fn accessed_fields(program: &Program, schema: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let decl_fields: Vec<String> = program
        .schema(schema)
        .map(|s| s.fields.iter().map(|f| f.name.clone()).collect())
        .unwrap_or_default();
    for t in &program.transactions {
        let info = var_bindings(t);
        // Field accesses through variables bound to this schema.
        let note_expr = |e: &Expr, out: &mut BTreeSet<String>| {
            e.walk(&mut |x| {
                if let Expr::Agg(_, v, f) | Expr::At(_, v, f) = x {
                    if info.iter().any(|(bv, bs)| bv == v && bs == schema) {
                        out.insert(f.clone());
                    }
                }
            });
        };
        visit_stmts(&t.body, &mut |s| match s {
            Stmt::Select(c) if c.schema == schema => {
                out.extend(c.where_.fields());
                match &c.fields {
                    Some(fs) => out.extend(fs.iter().cloned()),
                    None => out.extend(decl_fields.iter().cloned()),
                }
            }
            Stmt::Update(c) if c.schema == schema => {
                out.extend(c.where_.fields());
                out.extend(c.assigns.iter().map(|(f, _)| f.clone()));
            }
            Stmt::Insert(c) if c.schema == schema => {
                out.extend(c.values.iter().map(|(f, _)| f.clone()));
            }
            Stmt::Delete(c) if c.schema == schema => {
                out.extend(c.where_.fields());
            }
            _ => {}
        });
        visit_stmts(&t.body, &mut |s| match s {
            Stmt::Update(c) => {
                for (_, e) in &c.assigns {
                    note_expr(e, &mut out);
                }
            }
            Stmt::If { cond, .. } => note_expr(cond, &mut out),
            Stmt::Iterate { count, .. } => note_expr(count, &mut out),
            _ => {}
        });
        note_expr(&t.ret, &mut out);
    }
    out
}

/// `(variable, schema)` pairs bound by the transaction's selects.
pub fn var_bindings(txn: &Transaction) -> Vec<(String, String)> {
    let mut out = Vec::new();
    visit_stmts(&txn.body, &mut |s| {
        if let Stmt::Select(c) = s {
            out.push((c.var.clone(), c.schema.clone()));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    const SRC: &str = "schema T { id: int key, v: int, w: int }
         schema U { id: int key, z: int }
         txn t(k: int) {
             @S1 x := select v from T where id = k;
             if (x.v > 0) {
                 @U1 update U set z = x.v where id = k;
             }
             @S2 y := select w from T where id = k;
             return x.v;
         }";

    #[test]
    fn commands_flatten_in_program_order() {
        let p = parse(SRC).unwrap();
        let cs = commands_of(&p.transactions[0]);
        let labels: Vec<_> = cs.iter().map(|s| s.label().unwrap().0.clone()).collect();
        assert_eq!(labels, vec!["S1", "U1", "S2"]);
    }

    #[test]
    fn used_vars_sees_guards_and_return() {
        let p = parse(SRC).unwrap();
        let used = used_vars(&p.transactions[0]);
        assert!(used.contains("x"));
        assert!(!used.contains("y")); // bound but never read
    }

    #[test]
    fn retain_commands_removes_nested() {
        let p = parse(SRC).unwrap();
        let mut t = p.transactions[0].clone();
        retain_commands(&mut t.body, &|s| s.label().map(|l| l.0.as_str()) != Some("U1"));
        let labels: Vec<_> = commands_of(&t)
            .iter()
            .map(|s| s.label().unwrap().0.clone())
            .collect();
        assert_eq!(labels, vec!["S1", "S2"]);
    }

    #[test]
    fn accessed_fields_covers_projection_filter_and_exprs() {
        let p = parse(SRC).unwrap();
        let t_fields = accessed_fields(&p, "T");
        assert!(t_fields.contains("v") && t_fields.contains("w") && t_fields.contains("id"));
        let u_fields = accessed_fields(&p, "U");
        assert!(u_fields.contains("z") && u_fields.contains("id"));
    }

    #[test]
    fn rewrite_exprs_replaces_field_accesses() {
        let p = parse(SRC).unwrap();
        let mut t = p.transactions[0].clone();
        rewrite_exprs(&mut t, &|e| match e {
            Expr::At(i, v, f) if v == "x" && f == "v" => {
                Some(Expr::At(i.clone(), "x".into(), "renamed".into()))
            }
            _ => None,
        });
        let used: BTreeSet<String> = {
            let mut out = BTreeSet::new();
            t.ret.walk(&mut |e| {
                if let Expr::At(_, _, f) = e {
                    out.insert(f.clone());
                }
            });
            out
        };
        assert!(used.contains("renamed"));
    }

    #[test]
    fn schema_accessed_detects_usage() {
        let p = parse(SRC).unwrap();
        assert!(schema_accessed(&p, "T"));
        assert!(schema_accessed(&p, "U"));
        assert!(!schema_accessed(&p, "V"));
    }
}
