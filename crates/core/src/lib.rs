//! # atropos-core
//!
//! The Atropos refactoring engine: value-correspondence-driven program
//! rewriting and the oracle-guided repair algorithm of *Repairing
//! Serializability Bugs in Distributed Database Programs via Automated
//! Schema Refactoring* (PLDI 2021).
//!
//! * [`analysis`] — AST traversal, variable liveness, field-access analysis,
//!   and the [`DirtySet`] invalidation payload of the verdict cache;
//! * [`rewrite`] — the `⟦·⟧_v` rewrite function: the **redirect** and
//!   **logger** rule instantiations of `intro v`;
//! * [`merge`] — `try_merging`: fusing commands into single-row atomic ops;
//! * [`chain`] — the `.T` chain rules for triple-mode anomalies:
//!   **relay materialization** and the **chain-cut merge**;
//! * [`dce`] — post-processing (dead selects, final merges, obsolete
//!   tables);
//! * [`repair`] — the Fig. 10 driver made near-incremental and parallel:
//!   preprocessing splits, per-anomaly `try_repair`, post-processing, and
//!   detection through an [`atropos_detect::DetectionEngine`] against an
//!   [`atropos_detect::DetectSession`] — so each step only re-solves the
//!   pairs it dirtied (on the engine's workers), a session shared across
//!   runs ([`repair_with_engine`], [`ablation_sweep`]) answers common
//!   transaction shapes from warm verdicts, and the [`RepairReport`]
//!   carries per-iteration [`RepairStats`];
//! * [`random_search`] — the random-refactoring baseline of Fig. 16.
//!
//! # Examples
//!
//! ```
//! use atropos_core::repair_program;
//! use atropos_detect::ConsistencyLevel;
//!
//! let program = atropos_dsl::parse(
//!     "schema C { id: int key, cnt: int }
//!      txn bump(k: int) {
//!          x := select cnt from C where id = k;
//!          update C set cnt = x.cnt + 1 where id = k;
//!          return 0;
//!      }",
//! ).unwrap();
//! let report = repair_program(&program, ConsistencyLevel::EventualConsistency);
//! assert!(report.remaining.is_empty());
//! assert!(report.repaired.schema("C_CNT_LOG").is_some());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod chain;
pub mod dce;
pub mod merge;
pub mod random_search;
pub mod repair;
pub mod rewrite;

pub use analysis::{dirty_between, DirtySet};
pub use chain::{chain_cut, materialize_relay};
pub use dce::{post_process, post_process_tracked, PostProcessReport};
pub use merge::{try_merging, try_merging_tracked};
pub use random_search::{random_refactor, random_refactor_with_session, RandomSearchOutcome};
pub use repair::{
    ablation_sweep, repair_corpus, repair_program, repair_with_config,
    repair_with_config_scratch, repair_with_engine, RepairConfig, RepairIteration, RepairReport,
    RepairStats, RepairStep,
};

// The detection bound is part of the repair configuration surface
// ([`RepairConfig::mode`]); re-exported so callers need not depend on
// `atropos_detect` directly to opt into triple mode.
pub use atropos_detect::DetectMode;
pub use rewrite::{
    apply_logging, apply_logging_tracked, apply_redirect, apply_redirect_tracked,
    fresh_field_name,
};
