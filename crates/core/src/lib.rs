//! # atropos-core
//!
//! The Atropos refactoring engine: value-correspondence-driven program
//! rewriting and the oracle-guided repair algorithm of *Repairing
//! Serializability Bugs in Distributed Database Programs via Automated
//! Schema Refactoring* (PLDI 2021).
//!
//! * [`analysis`] — AST traversal, variable liveness, field-access analysis;
//! * [`rewrite`] — the `⟦·⟧_v` rewrite function: the **redirect** and
//!   **logger** rule instantiations of `intro v`;
//! * [`merge`] — `try_merging`: fusing commands into single-row atomic ops;
//! * [`dce`] — post-processing (dead selects, final merges, obsolete
//!   tables);
//! * [`repair`] — the Fig. 10 driver: preprocessing splits, per-anomaly
//!   `try_repair`, post-processing, and the [`RepairReport`];
//! * [`random_search`] — the random-refactoring baseline of Fig. 16.
//!
//! # Examples
//!
//! ```
//! use atropos_core::repair_program;
//! use atropos_detect::ConsistencyLevel;
//!
//! let program = atropos_dsl::parse(
//!     "schema C { id: int key, cnt: int }
//!      txn bump(k: int) {
//!          x := select cnt from C where id = k;
//!          update C set cnt = x.cnt + 1 where id = k;
//!          return 0;
//!      }",
//! ).unwrap();
//! let report = repair_program(&program, ConsistencyLevel::EventualConsistency);
//! assert!(report.remaining.is_empty());
//! assert!(report.repaired.schema("C_CNT_LOG").is_some());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod dce;
pub mod merge;
pub mod random_search;
pub mod repair;
pub mod rewrite;

pub use dce::{post_process, PostProcessReport};
pub use merge::try_merging;
pub use random_search::{random_refactor, RandomSearchOutcome};
pub use repair::{repair_program, repair_with_config, RepairConfig, RepairReport, RepairStep};
pub use rewrite::{apply_logging, apply_redirect, fresh_field_name};
