//! Chain-directed refactoring rules for the triple detection mode: the
//! rewrites that consume [`AnomalyKind::ObserverChain`],
//! [`AnomalyKind::FracturedRead`], and [`AnomalyKind::WriteSkewCycle`]
//! witnesses — anomalies no two-instance oracle can see (PR 5), and hence
//! no pair rule of Fig. 10 can repair.
//!
//! Both rules consume the anomaly's relay transaction from
//! [`AccessPair::witnesses`] and mint every rewritten command label under
//! the `.T` segment the DSL reserves for triple-derived rewrites:
//!
//! * [`materialize_relay`] — **relay materialization**: when the relayed
//!   value is a pure derivation of the origin row (the relay reads the
//!   origin and writes a copy elsewhere), the derived field is materialized
//!   *on the origin row itself*. The relay's fan-out write lands on the row
//!   it read (addressed by its own read filter), the observer's chain read
//!   follows the field home (addressed by its own origin-row filter), and
//!   the observer's two reads — now same schema, same filter — collapse
//!   into one single-row atomic read via `try_merging`. The 3-hop
//!   dependency becomes pair-visible, and on the relay shape outright
//!   clean. This mirrors the derived-data materializations that
//!   schema-refactoring synthesis treats as first-class (Wang et al.).
//! * [`chain_cut`] — **chain-cut merge**: when the relay transaction *is*
//!   the hop (one observing read feeding one derived write), the hop is
//!   fused into the transaction whose write feeds it, so derivation and
//!   origin commit atomically and the middle link of the chain disappears.
//!   The residual anomaly (if any) is pair-visible — e.g. a fractured
//!   read's halves become sibling writes of one transaction, a textbook
//!   dirty-read pair.
//!
//! Like the pair rules in [`crate::rewrite`], both return `None` when their
//! preconditions fail, re-run the type checker as a safety net, and report
//! the [`DirtySet`] the driver funnels into the verdict cache — so
//! triple-mode repair stays exactly as incremental as pair-mode repair.

use std::collections::BTreeSet;

use atropos_detect::{AccessPair, AnomalyKind};
use atropos_dsl::{
    check_program, CmdLabel, Expr, FieldDecl, Program, Schema, SelectCmd, Stmt, Transaction,
    UpdateCmd, Where,
};
use atropos_semantics::{Aggregator, ThetaMap, ValueCorrespondence};

use crate::analysis::{commands_of, dirty_between, rewrite_exprs, used_vars, var_bindings,
    visit_stmts_mut, DirtySet};
use crate::merge::{rename_var_in_txn, try_merging_tracked};
use crate::repair::RepairStep;
use crate::rewrite::{fresh_field_name, well_formed_key_filter};

/// A successful chain rule: the rewritten program, the introduced value
/// correspondences, the applied steps, and the rule's [`DirtySet`].
pub type ChainOutcome = (Program, Vec<ValueCorrespondence>, Vec<RepairStep>, DirtySet);

/// Fields a select observes: its projection (all fields for `*`).
fn select_reads(c: &SelectCmd, schema: &Schema) -> BTreeSet<String> {
    match &c.fields {
        Some(fs) => fs.iter().cloned().collect(),
        None => schema.fields.iter().map(|f| f.name.clone()).collect(),
    }
}

fn expr_uses_var(e: &Expr, var: &str) -> bool {
    match e {
        Expr::At(i, v, _) => v == var || expr_uses_var(i, var),
        Expr::Agg(_, v, _) => v == var,
        Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) | Expr::Bool(_, l, r) => {
            expr_uses_var(l, var) || expr_uses_var(r, var)
        }
        Expr::Not(x) => expr_uses_var(x, var),
        _ => false,
    }
}

fn where_uses_var(w: &Where, var: &str) -> bool {
    match w {
        Where::True => false,
        Where::Cmp { expr, .. } => expr_uses_var(expr, var),
        Where::And(l, r) | Where::Or(l, r) => where_uses_var(l, var) || where_uses_var(r, var),
    }
}

fn stmt_uses_var(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Select(c) => where_uses_var(&c.where_, var),
        Stmt::Update(c) => {
            where_uses_var(&c.where_, var) || c.assigns.iter().any(|(_, e)| expr_uses_var(e, var))
        }
        Stmt::Insert(c) => c.values.iter().any(|(_, e)| expr_uses_var(e, var)),
        Stmt::Delete(c) => where_uses_var(&c.where_, var),
        Stmt::If { cond, body } => {
            expr_uses_var(cond, var) || body.iter().any(|s| stmt_uses_var(s, var))
        }
        Stmt::Iterate { count, body } => {
            expr_uses_var(count, var) || body.iter().any(|s| stmt_uses_var(s, var))
        }
    }
}

/// Does this command read, write, or filter on `schema.field`?
fn touches_field(s: &Stmt, schema: &str, field: &str, decl: &Schema) -> bool {
    match s {
        Stmt::Select(c) if c.schema == schema => {
            select_reads(c, decl).contains(field) || c.where_.fields().iter().any(|f| f == field)
        }
        Stmt::Update(c) if c.schema == schema => {
            c.assigns.iter().any(|(f, _)| f == field)
                || c.where_.fields().iter().any(|f| f == field)
        }
        Stmt::Insert(c) if c.schema == schema => c.values.iter().any(|(f, _)| f == field),
        Stmt::Delete(c) if c.schema == schema => c.where_.fields().iter().any(|f| f == field),
        _ => false,
    }
}

/// The first field of `reads` the expression derives through `var`, i.e.
/// the source field of a relayed derivation `g := e(x.f)`.
fn derived_source_field(e: &Expr, var: &str, reads: &BTreeSet<String>) -> Option<String> {
    match e {
        Expr::At(_, v, f) | Expr::Agg(_, v, f) if v == var && reads.contains(f) => Some(f.clone()),
        Expr::At(i, _, _) => derived_source_field(i, var, reads),
        Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) | Expr::Bool(_, l, r) => {
            derived_source_field(l, var, reads).or_else(|| derived_source_field(r, var, reads))
        }
        Expr::Not(x) => derived_source_field(x, var, reads),
        _ => None,
    }
}

/// **Relay materialization** (observer chains): copies the relayed
/// derivation into the origin row, minting the moved field and the
/// rewritten command labels under `.T`, then merges the observer's two
/// origin-row reads into one atomic select when `merge_enabled`.
///
/// Preconditions (each checked syntactically, with `check_program` as the
/// final safety net):
///
/// 1. the anomaly pair is the chain's origin write and the observer's
///    missing read, both on the origin schema, the read pinned to one row
///    by a well-formed key filter;
/// 2. some witness transaction contains the hop: a key-filtered select of
///    the origin schema observing the written field, followed by a
///    single-assignment update of *another* schema derived from that
///    select's binding;
/// 3. the observer reads the derived field earlier in program order,
///    projecting exactly that field;
/// 4. no other command in the program touches the derived field — the
///    move is closed.
pub fn materialize_relay(
    program: &Program,
    pair: &AccessPair,
    merge_enabled: bool,
) -> Option<ChainOutcome> {
    if pair.kind != AnomalyKind::ObserverChain {
        return None;
    }
    let (ta, ca) = crate::rewrite::find_command(program, &pair.cmd1)?;
    let (tb, cb) = crate::rewrite::find_command(program, &pair.cmd2)?;
    // Recover orientation: the pair arrives label-sorted, not role-sorted.
    let ((origin_txn, origin_w), (obs_txn, missing)) = match (ca, cb) {
        (Stmt::Update(_), Stmt::Select(_)) => ((ta, ca), (tb, cb)),
        (Stmt::Select(_), Stmt::Update(_)) => ((tb, cb), (ta, ca)),
        _ => return None,
    };
    let (Stmt::Update(w1), Stmt::Select(r3b)) = (origin_w, missing) else {
        return None;
    };
    if origin_txn.name == obs_txn.name || r3b.schema != w1.schema {
        return None;
    }
    let s_schema = program.schema(&w1.schema)?;
    well_formed_key_filter(s_schema, &r3b.where_)?;
    let w1_writes: BTreeSet<String> = w1.assigns.iter().map(|(f, _)| f.clone()).collect();

    // Witnesses arrive as a sorted set, so the attempt order (and with it
    // the cached-≡-scratch differential) is deterministic.
    for relay_name in &pair.witnesses {
        if relay_name == &origin_txn.name || relay_name == &obs_txn.name {
            continue;
        }
        let Some(relay) = program.transaction(relay_name) else {
            continue;
        };
        if let Some(out) = materialize_via(
            program, relay, obs_txn, s_schema, &w1_writes, r3b, merge_enabled,
        ) {
            return Some(out);
        }
    }
    None
}

/// One witness's materialization attempt (see [`materialize_relay`]).
fn materialize_via(
    program: &Program,
    relay: &Transaction,
    obs_txn: &Transaction,
    s_schema: &Schema,
    w1_writes: &BTreeSet<String>,
    r3b: &SelectCmd,
    merge_enabled: bool,
) -> Option<ChainOutcome> {
    // The hop inside the relay: observing read, then derived write.
    let cmds = commands_of(relay);
    let mut hop: Option<(&SelectCmd, &UpdateCmd)> = None;
    'outer: for (i, s) in cmds.iter().enumerate() {
        let Stmt::Select(r2) = s else { continue };
        if r2.schema != s_schema.name
            || select_reads(r2, s_schema).is_disjoint(w1_writes)
            || well_formed_key_filter(s_schema, &r2.where_).is_none()
        {
            continue;
        }
        for s2 in &cmds[i + 1..] {
            let Stmt::Update(w2) = s2 else { continue };
            if w2.schema != s_schema.name
                && w2.assigns.len() == 1
                && expr_uses_var(&w2.assigns[0].1, &r2.var)
            {
                hop = Some((r2, w2));
                break 'outer;
            }
        }
    }
    let (r2, w2) = hop?;
    let d_schema = program.schema(&w2.schema)?;
    let (g, derivation) = &w2.assigns[0];
    if d_schema.field(g)?.primary_key {
        return None;
    }

    // The observer's chain read: an earlier select projecting exactly the
    // derived field.
    let obs_cmds = commands_of(obs_txn);
    let r3b_pos = obs_cmds
        .iter()
        .position(|s| s.label() == Some(&r3b.label))?;
    let r3a = obs_cmds[..r3b_pos].iter().find_map(|s| match s {
        Stmt::Select(c)
            if c.schema == d_schema.name && c.fields.as_deref() == Some(&[g.clone()][..]) =>
        {
            Some(c)
        }
        _ => None,
    })?;

    // Closure: the hop's write and the observer's read must be the derived
    // field's only accessors, or the move would strand a third party.
    for t in &program.transactions {
        for s in commands_of(t) {
            if s.label() == Some(&w2.label) || s.label() == Some(&r3a.label) {
                continue;
            }
            if touches_field(s, &d_schema.name, g, d_schema) {
                return None;
            }
        }
    }

    // Materialize: the derived field moves onto the origin schema…
    let mut out = program.clone();
    let new_field = fresh_field_name(s_schema, g);
    let ty = d_schema.field(g).expect("checked above").ty;
    out.schemas
        .iter_mut()
        .find(|s| s.name == s_schema.name)
        .expect("origin schema exists")
        .fields
        .push(FieldDecl::new(new_field.clone(), ty));
    let w2_new = CmdLabel(format!("{}.T", w2.label.0));
    let r3a_new = CmdLabel(format!("{}.T", r3a.label.0));
    for t in out.transactions.iter_mut() {
        if t.name == relay.name {
            // …the relay's fan-out write lands on the row it read…
            visit_stmts_mut(&mut t.body, &mut |s| {
                if s.label() == Some(&w2.label) {
                    *s = Stmt::Update(UpdateCmd {
                        label: w2_new.clone(),
                        schema: s_schema.name.clone(),
                        assigns: vec![(new_field.clone(), derivation.clone())],
                        where_: r2.where_.clone(),
                    });
                }
            });
        } else if t.name == obs_txn.name {
            // …and the observer's chain read follows it home, pinned to
            // the same origin row as its (previously missing) direct read.
            visit_stmts_mut(&mut t.body, &mut |s| {
                if s.label() == Some(&r3a.label) {
                    *s = Stmt::Select(SelectCmd {
                        label: r3a_new.clone(),
                        var: r3a.var.clone(),
                        fields: Some(vec![new_field.clone()]),
                        schema: s_schema.name.clone(),
                        where_: r3b.where_.clone(),
                    });
                }
            });
            let (var, old_f, new_f) = (r3a.var.clone(), g.clone(), new_field.clone());
            rewrite_exprs(t, &move |e| match e {
                Expr::At(i, v, f) if v == &var && f == &old_f => {
                    Some(Expr::At(i.clone(), v.clone(), new_f.clone()))
                }
                Expr::Agg(op, v, f) if v == &var && f == &old_f => {
                    Some(Expr::Agg(*op, v.clone(), new_f.clone()))
                }
                _ => None,
            });
        }
    }
    if check_program(&out).is_err() {
        return None;
    }

    // The derived copy now lives on the origin row, addressed by the
    // origin key.
    let theta = ThetaMap::identity(s_schema);
    let vcs = vec![ValueCorrespondence {
        src_schema: d_schema.name.clone(),
        dst_schema: s_schema.name.clone(),
        src_field: g.clone(),
        dst_field: new_field.clone(),
        theta,
        alpha: Aggregator::Any,
    }];
    let mut steps = vec![RepairStep::Materialize {
        src: d_schema.name.clone(),
        dst: s_schema.name.clone(),
        field: g.clone(),
        into: new_field.clone(),
    }];
    let mut dirty = dirty_between(program, &out);

    // Collapse the observer's two origin-row reads into one atomic select:
    // with a single read there is no r3a/r3b split for a chain to fracture.
    if merge_enabled {
        if let Some((merged, mdirty)) = try_merging_tracked(&out, &r3a_new, &r3b.label) {
            steps.push(RepairStep::Merge {
                kept: r3a_new.0.clone(),
                removed: r3b.label.0.clone(),
            });
            dirty.merge(mdirty);
            out = merged;
        }
    }
    Some((out, vcs, steps, dirty))
}

/// **Chain-cut merge** (fractured reads, write-skew cycles, and observer
/// chains the materialization cannot close): fuses the witness
/// transaction's hop — one observing read feeding one derived write, which
/// must be the witness's whole body — into the anomaly transaction whose
/// write feeds that read, minting the moved labels under `.T`. Derivation
/// and origin then commit as one atomic transaction; the witness transaction
/// is left empty (its maintenance duty moved to the origin site), and any
/// residual violation is pair-visible.
pub fn chain_cut(program: &Program, pair: &AccessPair) -> Option<ChainOutcome> {
    if !matches!(
        pair.kind,
        AnomalyKind::ObserverChain | AnomalyKind::FracturedRead | AnomalyKind::WriteSkewCycle
    ) {
        return None;
    }
    for relay_name in &pair.witnesses {
        if relay_name == &pair.txn1 || relay_name == &pair.txn2 {
            continue;
        }
        let Some(relay) = program.transaction(relay_name) else {
            continue;
        };
        // The hop must be the witness's entire straight-line body, and the
        // derivation must not escape through its return value.
        if relay.body.len() != 2 {
            continue;
        }
        let Stmt::Select(rb) = &relay.body[0] else {
            continue;
        };
        let wb = &relay.body[1];
        if !matches!(wb, Stmt::Update(_) | Stmt::Insert(_) | Stmt::Delete(_))
            || !stmt_uses_var(wb, &rb.var)
            || expr_uses_var(&relay.ret, &rb.var)
        {
            continue;
        }
        let Some(rb_schema) = program.schema(&rb.schema) else {
            continue;
        };
        let rb_reads = select_reads(rb, rb_schema);
        // Host: the first pair transaction whose write feeds the hop's read.
        for host_name in [&pair.txn1, &pair.txn2] {
            if host_name == relay_name {
                continue;
            }
            let Some(host) = program.transaction(host_name) else {
                continue;
            };
            let feeds = commands_of(host).iter().any(|s| match s {
                Stmt::Update(u) => {
                    u.schema == rb.schema && u.assigns.iter().any(|(f, _)| rb_reads.contains(f))
                }
                Stmt::Insert(i) => {
                    i.schema == rb.schema && i.values.iter().any(|(f, _)| rb_reads.contains(f))
                }
                _ => false,
            });
            if !feeds {
                continue;
            }
            if let Some(out) = fuse_hop(program, relay, host, rb, wb, &rb_reads) {
                return Some(out);
            }
        }
    }
    None
}

/// One host's fusion attempt (see [`chain_cut`]).
fn fuse_hop(
    program: &Program,
    relay: &Transaction,
    host: &Transaction,
    rb: &SelectCmd,
    wb: &Stmt,
    rb_reads: &BTreeSet<String>,
) -> Option<ChainOutcome> {
    // Unify parameters: same-named same-typed parameters merge (the host's
    // value keys the fused hop); a name clash at different types is fatal.
    let mut new_params = host.params.clone();
    for p in &relay.params {
        match new_params.iter().find(|q| q.name == p.name) {
            Some(q) if q.ty != p.ty => return None,
            Some(_) => {}
            None => new_params.push(p.clone()),
        }
    }

    // The hop's binding must not capture anything in the host.
    let mut moved = relay.clone();
    let mut host_vars: BTreeSet<String> =
        var_bindings(host).into_iter().map(|(v, _)| v).collect();
    host_vars.extend(used_vars(host));
    if host_vars.contains(&rb.var) {
        let mut fresh = format!("{}_t", rb.var);
        let mut n = 2;
        while host_vars.contains(&fresh) {
            fresh = format!("{}_t{n}", rb.var);
            n += 1;
        }
        // `rename_var_in_txn` renames uses; the binding site is ours.
        rename_var_in_txn(&mut moved, &rb.var, &fresh);
        if let Stmt::Select(c) = &mut moved.body[0] {
            c.var = fresh;
        }
    }
    // Mint the moved labels under the `.T` segment.
    let mut moved_labels = Vec::new();
    for s in moved.body.iter_mut() {
        let relabel = |l: &mut CmdLabel| l.0 = format!("{}.T", l.0);
        match s {
            Stmt::Select(c) => relabel(&mut c.label),
            Stmt::Update(c) => relabel(&mut c.label),
            Stmt::Insert(c) => relabel(&mut c.label),
            Stmt::Delete(c) => relabel(&mut c.label),
            _ => return None,
        }
        moved_labels.push(s.label().expect("database command").0.clone());
    }

    let mut out = program.clone();
    for t in out.transactions.iter_mut() {
        if t.name == host.name {
            t.params = new_params.clone();
            t.body.extend(moved.body.iter().cloned());
        } else if t.name == relay.name {
            // The witness keeps its signature but its maintenance duty
            // moved to the origin site.
            t.body.clear();
        }
    }
    if check_program(&out).is_err() {
        return None;
    }

    // When the hop is a plain derivation `g := e(x.f)`, record where the
    // derived value now comes from.
    let vcs = match wb {
        Stmt::Update(u) if u.assigns.len() == 1 => {
            let (g, e) = &u.assigns[0];
            derived_source_field(e, &rb.var, rb_reads).map(|src_field| {
                vec![ValueCorrespondence {
                    src_schema: rb.schema.clone(),
                    dst_schema: u.schema.clone(),
                    src_field,
                    dst_field: g.clone(),
                    theta: ThetaMap::new(
                        program
                            .schema(&rb.schema)
                            .map(|s| {
                                s.primary_key()
                                    .iter()
                                    .map(|k| ((*k).to_owned(), (*k).to_owned()))
                                    .collect()
                            })
                            .unwrap_or_default(),
                    ),
                    alpha: Aggregator::Any,
                }]
            })
        }
        _ => None,
    }
    .unwrap_or_default();

    let steps = vec![RepairStep::ChainCut {
        relay: relay.name.clone(),
        host: host.name.clone(),
        moved: moved_labels,
    }];
    let dirty = dirty_between(program, &out);
    Some((out, vcs, steps, dirty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_detect::{detect_anomalies, detect_anomalies_triples, ConsistencyLevel};
    use atropos_dsl::{parse, print_program};

    const EC: ConsistencyLevel = ConsistencyLevel::EventualConsistency;

    // The Relay workload's source (`atropos_workloads::relay`), inlined —
    // `atropos_workloads` depends on this crate, so the workload registry
    // is not importable here. `tests/triple_vs_pair.rs` drives the real
    // registry entry through the full repair loop.
    fn relay_program() -> Program {
        parse(
            "schema MSG  { m_id: int key, m_body: int }
             schema FEED { f_id: int key, f_body: int }
             txn post(m: int, body: int) {
                 @W1 update MSG set m_body = body where m_id = m;
                 return 0;
             }
             txn relay(m: int, f: int) {
                 @R2 x := select m_body from MSG where m_id = m;
                 @W2 update FEED set f_body = x.m_body where f_id = f;
                 return 0;
             }
             txn timeline(f: int, m: int) {
                 @R3 y := select f_body from FEED where f_id = f;
                 @R4 z := select m_body from MSG where m_id = m;
                 return y.f_body + z.m_body;
             }",
        )
        .unwrap()
    }

    fn chain_pair(p: &Program) -> AccessPair {
        let (anoms, _) = detect_anomalies_triples(p, EC);
        anoms
            .into_iter()
            .find(|a| a.kind == AnomalyKind::ObserverChain)
            .expect("relay has an observer chain at EC")
    }

    #[test]
    fn materialization_collapses_the_relay_chain() {
        let p = relay_program();
        let pair = chain_pair(&p);
        let (out, vcs, steps, dirty) = materialize_relay(&p, &pair, true).unwrap();
        let text = print_program(&out);
        // The derived field moved onto the origin row under a .T label…
        assert!(text.contains("update MSG set m_f_body = x.m_body where m_id = m"), "{text}");
        assert!(text.contains("@W2.T"), "{text}");
        // …and the observer's two reads merged into one atomic select.
        assert!(text.contains("@R3.T"), "{text}");
        assert!(text.contains("select m_f_body, m_body from MSG"), "{text}");
        assert!(
            steps.iter().any(|s| matches!(s, RepairStep::Materialize { .. }))
                && steps.iter().any(|s| matches!(s, RepairStep::Merge { .. })),
            "{steps:?}"
        );
        assert_eq!(vcs[0].src_schema, "FEED");
        assert_eq!(vcs[0].dst_schema, "MSG");
        assert_eq!(vcs[0].dst_field, "m_f_body");
        // All three chain transactions were rewritten or re-addressed.
        assert!(dirty.txns.contains("relay") && dirty.txns.contains("timeline"), "{dirty:?}");

        // The rewritten program is pair-clean *and* triple-clean at EC.
        assert!(detect_anomalies(&out, EC).is_empty());
        let (triples, _) = detect_anomalies_triples(&out, EC);
        assert!(triples.is_empty(), "{triples:?}");
    }

    #[test]
    fn materialization_without_merge_leaves_two_reads() {
        let p = relay_program();
        let pair = chain_pair(&p);
        let (out, _, steps, _) = materialize_relay(&p, &pair, false).unwrap();
        assert!(steps.iter().all(|s| !matches!(s, RepairStep::Merge { .. })));
        let timeline = out.transaction("timeline").unwrap();
        assert_eq!(commands_of(timeline).len(), 2);
    }

    #[test]
    fn materialization_requires_a_closed_derived_field() {
        // A second reader of FEED.f_body keeps the copy pinned in place.
        let p = parse(
            "schema MSG  { m_id: int key, m_body: int }
             schema FEED { f_id: int key, f_body: int }
             txn post(m: int, body: int) {
                 @W1 update MSG set m_body = body where m_id = m;
                 return 0;
             }
             txn relay(m: int, f: int) {
                 @R2 x := select m_body from MSG where m_id = m;
                 @W2 update FEED set f_body = x.m_body where f_id = f;
                 return 0;
             }
             txn timeline(f: int, m: int) {
                 @R3 y := select f_body from FEED where f_id = f;
                 @R4 z := select m_body from MSG where m_id = m;
                 return y.f_body + z.m_body;
             }
             txn audit(f: int) {
                 @R5 w := select f_body from FEED where f_id = f;
                 return w.f_body;
             }",
        )
        .unwrap();
        let pair = chain_pair(&p);
        assert!(materialize_relay(&p, &pair, true).is_none());
    }

    #[test]
    fn chain_cut_fuses_the_fractured_hop_into_the_writer() {
        let p = parse(
            "schema A { a_id: int key, a_v: int }
             schema B { b_id: int key, b_v: int }
             schema C { c_id: int key, c_v: int }
             txn writer(a: int, b: int) {
                 @WA update A set a_v = 1 where a_id = a;
                 @WB update B set b_v = 1 where b_id = b;
                 return 0;
             }
             txn relay(a: int, c: int) {
                 @RB x := select a_v from A where a_id = a;
                 @WC update C set c_v = x.a_v where c_id = c;
                 return 0;
             }
             txn observer(c: int, b: int) {
                 @RC y := select c_v from C where c_id = c;
                 @RD z := select b_v from B where b_id = b;
                 return y.c_v + z.b_v;
             }",
        )
        .unwrap();
        let (anoms, _) = detect_anomalies_triples(&p, EC);
        let pair = anoms
            .iter()
            .find(|a| a.kind == AnomalyKind::FracturedRead)
            .expect("fractured read at EC");
        let (out, vcs, steps, dirty) = chain_cut(&p, pair).unwrap();
        let text = print_program(&out);
        // The hop moved into the writer under .T labels, inheriting the
        // relay's extra parameter…
        assert!(text.contains("@RB.T"), "{text}");
        assert!(text.contains("@WC.T"), "{text}");
        let writer = out.transaction("writer").unwrap();
        assert_eq!(commands_of(writer).len(), 4);
        assert!(writer.params.iter().any(|p| p.name == "c"), "{text}");
        // …and the relay is an empty shell.
        let relay = out.transaction("relay").unwrap();
        assert!(commands_of(relay).is_empty());
        assert!(matches!(steps[0], RepairStep::ChainCut { .. }));
        assert_eq!(vcs[0].src_field, "a_v");
        assert_eq!(vcs[0].dst_field, "c_v");
        assert!(dirty.txns.contains("writer") && dirty.txns.contains("relay"), "{dirty:?}");

        // The fracture is gone; what remains is pair-visible (the writer's
        // sibling writes observed non-atomically — a dirty read).
        let (triples, _) = detect_anomalies_triples(&out, EC);
        assert!(
            triples.iter().all(|a| a.kind != AnomalyKind::FracturedRead),
            "{triples:?}"
        );
    }

    #[test]
    fn chain_cut_renames_colliding_hop_bindings() {
        // The write-skew cycle: every transaction binds `x`, so the moved
        // hop's binding must be freshened.
        let p = parse(
            "schema K { k_id: int key, v: int }
             txn t1(a: int, b: int) {
                 @A1 x := select v from K where k_id = a;
                 @A2 update K set v = x.v + 1 where k_id = b;
                 return 0;
             }
             txn t2(b: int, c: int) {
                 @B1 x := select v from K where k_id = b;
                 @B2 update K set v = x.v + 1 where k_id = c;
                 return 0;
             }
             txn t3(c: int, a: int) {
                 @C1 x := select v from K where k_id = c;
                 @C2 update K set v = x.v + 1 where k_id = a;
                 return 0;
             }",
        )
        .unwrap();
        let (anoms, _) = detect_anomalies_triples(&p, EC);
        let pair = anoms
            .iter()
            .find(|a| a.kind == AnomalyKind::WriteSkewCycle)
            .expect("write skew at EC");
        let (out, _, steps, _) = chain_cut(&p, pair).unwrap();
        let text = print_program(&out);
        assert!(matches!(steps[0], RepairStep::ChainCut { .. }));
        // The fused hop reads through a freshened binding.
        assert!(text.contains("x_t := select"), "{text}");
        assert!(text.contains("x_t.v"), "{text}");
        // The cycle needs a hop in all three transactions; one is now empty.
        let (triples, _) = detect_anomalies_triples(&out, EC);
        assert!(
            triples.iter().all(|a| a.kind != AnomalyKind::WriteSkewCycle),
            "{triples:?}"
        );
    }

    #[test]
    fn chain_cut_requires_the_hop_to_be_the_whole_witness() {
        // An extra command in the relay body blocks the fusion.
        let p = parse(
            "schema A { a_id: int key, a_v: int }
             schema B { b_id: int key, b_v: int }
             schema C { c_id: int key, c_v: int }
             txn writer(a: int, b: int) {
                 @WA update A set a_v = 1 where a_id = a;
                 @WB update B set b_v = 1 where b_id = b;
                 return 0;
             }
             txn relay(a: int, c: int) {
                 @RB x := select a_v from A where a_id = a;
                 @WC update C set c_v = x.a_v where c_id = c;
                 @WX update A set a_v = 2 where a_id = a;
                 return 0;
             }
             txn observer(c: int, b: int) {
                 @RC y := select c_v from C where c_id = c;
                 @RD z := select b_v from B where b_id = b;
                 return y.c_v + z.b_v;
             }",
        )
        .unwrap();
        let (anoms, _) = detect_anomalies_triples(&p, EC);
        if let Some(pair) = anoms.iter().find(|a| a.kind == AnomalyKind::FracturedRead) {
            assert!(chain_cut(&p, pair).is_none());
        }
    }
}
