//! Command merging (`try_merging` of Fig. 10): fusing two database commands
//! of one transaction into a single command so their effects become a single
//! atom, protected by row-level atomicity.

use atropos_dsl::{check_program, CmdLabel, CmpOp, Expr, Program, Stmt, Transaction, Where};

use crate::analysis::{dirty_between, DirtySet};

fn where_key(w: &Where) -> String {
    atropos_dsl::print_where(w)
}

/// Select bindings visible in a transaction: `(var, schema, printed where)`.
fn select_bindings(txn: &Transaction) -> Vec<(String, String, String)> {
    fn walk(body: &[Stmt], out: &mut Vec<(String, String, String)>) {
        for s in body {
            match s {
                Stmt::Select(c) => {
                    out.push((c.var.clone(), c.schema.clone(), where_key(&c.where_)))
                }
                Stmt::If { body, .. } | Stmt::Iterate { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&txn.body, &mut out);
    out
}

/// Establishes that `b` (the later command) selects the same records as `a`
/// (R1 of §4.2), using three increasingly semantic arguments:
///
/// 1. the filters are syntactically equal;
/// 2. every conjunct of `b`'s filter has the form `f = x.f` where `x` is
///    bound by a select on the same schema with `a`'s filter — i.e. `b`
///    re-selects the record `a` selected, through its own fields;
/// 3. (updates only) every conjunct of `b`'s filter has the form `f = e`
///    where `a` assigns `f = e`: after `a` runs, `a`'s target record
///    satisfies `b`'s filter.
fn same_record_set(
    bindings: &[(String, String, String)],
    schema: &str,
    a: &Stmt,
    a_where: &Where,
    b_where: &Where,
) -> bool {
    if where_key(a_where) == where_key(b_where) {
        return true;
    }
    let Some(conj) = b_where.conjuncts() else {
        return false;
    };
    if conj.is_empty() {
        return false;
    }
    let a_where_str = where_key(a_where);
    let a_assigns: Vec<(String, String)> = match a {
        Stmt::Update(c) => c
            .assigns
            .iter()
            .map(|(f, e)| (f.clone(), atropos_dsl::print_expr(e)))
            .collect(),
        _ => Vec::new(),
    };
    conj.into_iter().all(|(f, op, e)| {
        if op != CmpOp::Eq {
            return false;
        }
        // Rule 2: f = x.f with x bound by a same-filter select on `schema`.
        if let Expr::At(idx, v, g) = e {
            if matches!(**idx, Expr::Const(atropos_dsl::Value::Int(0)))
                && g == f
                && bindings
                    .iter()
                    .any(|(bv, bs, bw)| bv == v && bs == schema && bw == &a_where_str)
            {
                return true;
            }
        }
        // Rule 3: f = e where `a` assigns f = e.
        let printed = atropos_dsl::print_expr(e);
        a_assigns.iter().any(|(af, ae)| af == f && ae == &printed)
    })
}

/// Fields of the schema a command touches outside its own label (used to
/// check that no intermediate command interferes with the merge).
fn touches_schema(s: &Stmt, schema: &str) -> bool {
    s.schema() == Some(schema)
}

/// Attempts to merge the commands labelled `l1` and `l2`, which must be of
/// the same kind, on the same schema, with syntactically equal filters, and
/// adjacent up to commands on other schemas. On success the merged command
/// keeps `l1`'s label and position.
pub fn try_merging(program: &Program, l1: &CmdLabel, l2: &CmdLabel) -> Option<Program> {
    if l1 == l2 {
        return None;
    }
    let mut out = program.clone();
    let mut merged = false;

    for t in out.transactions.iter_mut() {
        // Both labels must live in the same statement block.
        let bindings = select_bindings(t);
        let mut done = false;
        let mut rename: Option<(String, String)> = None;
        visit_block(&mut t.body, l1, l2, &mut done, &mut rename, &bindings);
        if done {
            // Variable renames apply to the whole transaction, including
            // the return expression.
            if let Some((from, to)) = rename {
                rename_var_in_txn(t, &from, &to);
            }
            merged = true;
            break;
        }
    }
    if !merged {
        return None;
    }
    if check_program(&out).is_err() {
        return None;
    }
    Some(out)
}

/// [`try_merging`] plus this rule's contribution to the verdict-cache
/// invalidation protocol: the [`DirtySet`] naming the transaction whose
/// commands were fused (and every label whose printed form changed — the
/// surviving command, the removed one, and any command rewritten by the
/// variable rename).
pub fn try_merging_tracked(
    program: &Program,
    l1: &CmdLabel,
    l2: &CmdLabel,
) -> Option<(Program, DirtySet)> {
    let next = try_merging(program, l1, l2)?;
    let dirty = dirty_between(program, &next);
    Some((next, dirty))
}

fn visit_block(
    body: &mut Vec<Stmt>,
    l1: &CmdLabel,
    l2: &CmdLabel,
    done: &mut bool,
    rename: &mut Option<(String, String)>,
    bindings: &[(String, String, String)],
) {
    if *done {
        return;
    }
    let pos1 = body.iter().position(|s| s.label() == Some(l1));
    let pos2 = body.iter().position(|s| s.label() == Some(l2));
    if let (Some(mut i), Some(mut j)) = (pos1, pos2) {
        let mut labels = (l1.clone(), l2.clone());
        if i > j {
            std::mem::swap(&mut i, &mut j);
            labels = (l2.clone(), l1.clone());
        }
        if let Some((new_body, rn)) = merge_in_block(body, i, j, &labels.0, bindings) {
            *body = new_body;
            *rename = rn;
            *done = true;
        }
        return;
    }
    for s in body.iter_mut() {
        if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
            visit_block(body, l1, l2, done, rename, bindings);
            if *done {
                return;
            }
        }
    }
}

/// Merges commands at block positions `i < j`, keeping the label of the
/// earlier command. Returns the new block and an optional variable rename
/// `(removed var, surviving var)` the caller must apply transaction-wide.
fn merge_in_block(
    body: &[Stmt],
    i: usize,
    j: usize,
    keep: &CmdLabel,
    bindings: &[(String, String, String)],
) -> Option<(Vec<Stmt>, Option<(String, String)>)> {
    let (a, b) = (&body[i], &body[j]);
    let schema = a.schema()?;
    if b.schema() != Some(schema) {
        return None;
    }
    // No intermediate statement (at any nesting) may touch the same schema.
    for s in &body[i + 1..j] {
        let mut conflict = false;
        check_nested(s, schema, &mut conflict);
        if conflict {
            return None;
        }
    }
    let merged: Stmt = match (a, b) {
        (Stmt::Select(c1), Stmt::Select(c2)) => {
            if !same_record_set(bindings, schema, a, &c1.where_, &c2.where_) {
                return None;
            }
            let fields = match (&c1.fields, &c2.fields) {
                (None, _) | (_, None) => None,
                (Some(f1), Some(f2)) => {
                    let mut fs: Vec<String> = f1.clone();
                    for f in f2 {
                        if !fs.contains(f) {
                            fs.push(f.clone());
                        }
                    }
                    Some(fs)
                }
            };
            let mut c = c1.clone();
            c.label = keep.clone();
            c.fields = fields;
            // The surviving variable is c1's; uses of c2's variable are
            // renamed by the caller via `rename_var`.
            Stmt::Select(c)
        }
        (Stmt::Update(c1), Stmt::Update(c2)) => {
            if !same_record_set(bindings, schema, a, &c1.where_, &c2.where_) {
                return None;
            }
            let mut assigns = c1.assigns.clone();
            for (f, e) in &c2.assigns {
                if let Some(slot) = assigns.iter_mut().find(|(g, _)| g == f) {
                    // Later assignment wins.
                    slot.1 = e.clone();
                } else {
                    assigns.push((f.clone(), e.clone()));
                }
            }
            let mut c = c1.clone();
            c.label = keep.clone();
            c.assigns = assigns;
            Stmt::Update(c)
        }
        (Stmt::Delete(c1), Stmt::Delete(c2)) => {
            if where_key(&c1.where_) != where_key(&c2.where_) {
                return None;
            }
            let mut c = c1.clone();
            c.label = keep.clone();
            Stmt::Delete(c)
        }
        _ => return None,
    };

    let mut out: Vec<Stmt> = Vec::with_capacity(body.len() - 1);
    let rename: Option<(String, String)> = match (&body[i], &body[j]) {
        (Stmt::Select(c1), Stmt::Select(c2)) if c1.var != c2.var => {
            Some((c2.var.clone(), c1.var.clone()))
        }
        _ => None,
    };
    for (k, s) in body.iter().enumerate() {
        if k == i {
            out.push(merged.clone());
        } else if k == j {
            continue;
        } else {
            out.push(s.clone());
        }
    }
    Some((out, rename))
}

fn check_nested(s: &Stmt, schema: &str, conflict: &mut bool) {
    if touches_schema(s, schema) {
        *conflict = true;
        return;
    }
    if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
        for inner in body {
            check_nested(inner, schema, conflict);
        }
    }
}

fn rename_var_expr(e: &mut Expr, from: &str, to: &str) {
    match e {
        Expr::Agg(_, v, _) | Expr::At(_, v, _) => {
            if v == from {
                *v = to.to_owned();
            }
            if let Expr::At(i, _, _) = e {
                rename_var_expr(i, from, to);
            }
        }
        Expr::Bin(_, l, r) | Expr::Cmp(_, l, r) | Expr::Bool(_, l, r) => {
            rename_var_expr(l, from, to);
            rename_var_expr(r, from, to);
        }
        Expr::Not(x) => rename_var_expr(x, from, to),
        _ => {}
    }
}

fn rename_var_where(w: &mut Where, from: &str, to: &str) {
    match w {
        Where::True => {}
        Where::Cmp { expr, .. } => rename_var_expr(expr, from, to),
        Where::And(l, r) | Where::Or(l, r) => {
            rename_var_where(l, from, to);
            rename_var_where(r, from, to);
        }
    }
}

fn rename_var_stmt(s: &mut Stmt, from: &str, to: &str) {
    match s {
        Stmt::Select(c) => rename_var_where(&mut c.where_, from, to),
        Stmt::Update(c) => {
            rename_var_where(&mut c.where_, from, to);
            for (_, e) in c.assigns.iter_mut() {
                rename_var_expr(e, from, to);
            }
        }
        Stmt::Insert(c) => {
            for (_, e) in c.values.iter_mut() {
                rename_var_expr(e, from, to);
            }
        }
        Stmt::Delete(c) => rename_var_where(&mut c.where_, from, to),
        Stmt::If { cond, body } => {
            rename_var_expr(cond, from, to);
            for inner in body {
                rename_var_stmt(inner, from, to);
            }
        }
        Stmt::Iterate { count, body } => {
            rename_var_expr(count, from, to);
            for inner in body {
                rename_var_stmt(inner, from, to);
            }
        }
    }
}

/// Renames uses of a select variable in a whole transaction (helper shared
/// with the repair driver for post-merge cleanup).
pub fn rename_var_in_txn(txn: &mut atropos_dsl::Transaction, from: &str, to: &str) {
    for s in &mut txn.body {
        rename_var_stmt(s, from, to);
    }
    rename_var_expr(&mut txn.ret, from, to);
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::{parse, print_program};

    #[test]
    fn merges_two_selects_with_equal_filters() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             txn t(k: int) {
                 @S1 x := select a from T where id = k;
                 @S2 y := select b from T where id = k;
                 return x.a + y.b;
             }",
        )
        .unwrap();
        let out = try_merging(&p, &"S1".into(), &"S2".into()).unwrap();
        let text = print_program(&out);
        assert!(text.contains("select a, b from T"), "{text}");
        // y was renamed to x everywhere.
        assert!(text.contains("return x.a + x.b"), "{text}");
        assert_eq!(out.command_count(), 1);
    }

    #[test]
    fn merges_two_updates_with_equal_filters() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             txn t(k: int) {
                 @U1 update T set a = 1 where id = k;
                 @U2 update T set b = 2 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let out = try_merging(&p, &"U1".into(), &"U2".into()).unwrap();
        let text = print_program(&out);
        assert!(text.contains("update T set a = 1, b = 2"), "{text}");
        assert_eq!(out.command_count(), 1);
    }

    #[test]
    fn rejects_different_filters() {
        let p = parse(
            "schema T { id: int key, a: int }
             txn t(k: int, m: int) {
                 @U1 update T set a = 1 where id = k;
                 @U2 update T set a = 2 where id = m;
                 return 0;
             }",
        )
        .unwrap();
        assert!(try_merging(&p, &"U1".into(), &"U2".into()).is_none());
    }

    #[test]
    fn rejects_interfering_intermediate_command() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             txn t(k: int) {
                 @U1 update T set a = 1 where id = k;
                 @S1 x := select a from T where id = k;
                 @U2 update T set b = x.a where id = k;
                 return 0;
             }",
        )
        .unwrap();
        assert!(try_merging(&p, &"U1".into(), &"U2".into()).is_none());
    }

    #[test]
    fn allows_intermediate_commands_on_other_schemas() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             schema U { id: int key, z: int }
             txn t(k: int) {
                 @U1 update T set a = 1 where id = k;
                 @UO update U set z = 9 where id = k;
                 @U2 update T set b = 2 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let out = try_merging(&p, &"U1".into(), &"U2".into()).unwrap();
        assert_eq!(out.command_count(), 2);
    }

    #[test]
    fn rejects_kind_mismatch() {
        let p = parse(
            "schema T { id: int key, a: int }
             txn t(k: int) {
                 @S1 x := select a from T where id = k;
                 @U1 update T set a = x.a + 1 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        assert!(try_merging(&p, &"S1".into(), &"U1".into()).is_none());
    }

    #[test]
    fn update_merge_later_assignment_wins() {
        let p = parse(
            "schema T { id: int key, a: int }
             txn t(k: int) {
                 @U1 update T set a = 1 where id = k;
                 @U2 update T set a = 2 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let out = try_merging(&p, &"U1".into(), &"U2".into()).unwrap();
        let text = print_program(&out);
        assert!(text.contains("set a = 2"), "{text}");
    }

    #[test]
    fn merges_inside_nested_blocks() {
        let p = parse(
            "schema T { id: int key, a: int, b: int }
             txn t(k: int) {
                 if (k > 0) {
                     @S1 x := select a from T where id = k;
                     @S2 y := select b from T where id = k;
                 }
                 return 0;
             }",
        )
        .unwrap();
        let out = try_merging(&p, &"S1".into(), &"S2".into()).unwrap();
        assert_eq!(out.command_count(), 1);
    }
}
