//! Post-processing: dead-code elimination, final command merging, and
//! obsolete-table removal (the `post_process` step of Fig. 10).

use atropos_dsl::{Program, Stmt};

use crate::analysis::{
    commands_of, dirty_between, retain_commands, schema_accessed, used_vars, DirtySet,
};
use crate::merge::try_merging;

/// Removes selects whose bound variable is never read, iterating to a fixed
/// point (removing one select can make another's filter the only use of a
/// variable). Returns the labels removed.
pub fn eliminate_dead_selects(program: &mut Program) -> Vec<String> {
    let mut removed = Vec::new();
    loop {
        let mut progress = false;
        for t in program.transactions.iter_mut() {
            let used = used_vars(t);
            let mut dead: Vec<String> = Vec::new();
            for s in commands_of(t) {
                if let Stmt::Select(c) = s {
                    if !used.contains(&c.var) {
                        dead.push(c.label.0.clone());
                    }
                }
            }
            if !dead.is_empty() {
                retain_commands(&mut t.body, &|s| {
                    s.label().is_none_or(|l| !dead.contains(&l.0))
                });
                removed.extend(dead);
                progress = true;
            }
        }
        if !progress {
            return removed;
        }
    }
}

/// Drops schemas no command accesses (obsolete tables). Returns their names.
pub fn drop_obsolete_tables(program: &mut Program) -> Vec<String> {
    let obsolete: Vec<String> = program
        .schemas
        .iter()
        .filter(|s| !schema_accessed(program, &s.name))
        .map(|s| s.name.clone())
        .collect();
    program.schemas.retain(|s| !obsolete.contains(&s.name));
    obsolete
}

/// Final merging sweep: repeatedly merges any mergeable same-transaction
/// command pair until no merge applies. Returns the merged label pairs.
pub fn merge_all(program: &mut Program) -> Vec<(String, String)> {
    let mut merges = Vec::new();
    loop {
        let mut progress = false;
        'outer: for t in &program.transactions {
            let cmds = commands_of(t);
            for i in 0..cmds.len() {
                for j in (i + 1)..cmds.len() {
                    let (Some(l1), Some(l2)) = (cmds[i].label(), cmds[j].label()) else {
                        continue;
                    };
                    if let Some(next) = try_merging(program, l1, l2) {
                        merges.push((l1.0.clone(), l2.0.clone()));
                        *program = next;
                        progress = true;
                        break 'outer;
                    }
                }
            }
        }
        if !progress {
            return merges;
        }
    }
}

/// The full post-processing pipeline: dead selects, final merges, dead
/// selects again (merging can orphan variables), then obsolete tables.
pub fn post_process(program: &mut Program) -> PostProcessReport {
    let mut removed = eliminate_dead_selects(program);
    let merged = merge_all(program);
    removed.extend(eliminate_dead_selects(program));
    let dropped = drop_obsolete_tables(program);
    PostProcessReport {
        removed_selects: removed,
        merged_pairs: merged,
        dropped_tables: dropped,
    }
}

/// [`post_process`] plus the pipeline's [`DirtySet`] (dead-select removal
/// and final merges both change transaction bodies; dropped tables change
/// the schema list), so the repair driver can evict the affected
/// verdict-cache entries before the final re-detection.
pub fn post_process_tracked(program: &mut Program) -> (PostProcessReport, DirtySet) {
    let before = program.clone();
    let report = post_process(program);
    let dirty = dirty_between(&before, program);
    (report, dirty)
}

/// What post-processing did, for the repair log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostProcessReport {
    /// Labels of dead selects removed.
    pub removed_selects: Vec<String>,
    /// Command label pairs merged.
    pub merged_pairs: Vec<(String, String)>,
    /// Obsolete tables dropped.
    pub dropped_tables: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::parse;

    #[test]
    fn removes_transitively_dead_selects() {
        let mut p = parse(
            "schema T { id: int key, v: int }
             txn t(k: int) {
                 @S1 x := select v from T where id = k;
                 @S2 y := select v from T where id = x.v;
                 return 0;
             }",
        )
        .unwrap();
        let removed = eliminate_dead_selects(&mut p);
        // S2 is dead (y unused); then S1 becomes dead (x only used by S2).
        assert_eq!(removed, vec!["S2".to_owned(), "S1".to_owned()]);
        assert_eq!(p.command_count(), 0);
    }

    #[test]
    fn keeps_selects_used_by_return() {
        let mut p = parse(
            "schema T { id: int key, v: int }
             txn t(k: int) {
                 @S1 x := select v from T where id = k;
                 return x.v;
             }",
        )
        .unwrap();
        assert!(eliminate_dead_selects(&mut p).is_empty());
        assert_eq!(p.command_count(), 1);
    }

    #[test]
    fn drops_unaccessed_tables() {
        let mut p = parse(
            "schema T { id: int key, v: int }
             schema DEADTBL { id: int key, w: int }
             txn t(k: int) {
                 update T set v = 1 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let dropped = drop_obsolete_tables(&mut p);
        assert_eq!(dropped, vec!["DEADTBL".to_owned()]);
        assert_eq!(p.schemas.len(), 1);
    }

    #[test]
    fn post_process_merges_and_cleans() {
        let mut p = parse(
            "schema T { id: int key, a: int, b: int }
             schema OLD { id: int key, z: int }
             txn t(k: int) {
                 @U1 update T set a = 1 where id = k;
                 @U2 update T set b = 2 where id = k;
                 @S1 x := select a from T where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let rep = post_process(&mut p);
        assert!(rep.removed_selects.contains(&"S1".to_owned()));
        assert_eq!(rep.merged_pairs, vec![("U1".to_owned(), "U2".to_owned())]);
        assert_eq!(rep.dropped_tables, vec!["OLD".to_owned()]);
        assert_eq!(p.command_count(), 1);
    }
}
