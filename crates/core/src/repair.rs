//! The repair algorithm (Fig. 10): oracle-guided, iterative elimination of
//! anomalous access pairs by command splitting, merging, redirecting, and
//! logging.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use atropos_detect::{
    detect_anomalies_triples, detect_anomalies_with_stats, AccessPair, AnomalyKind, CacheStats,
    ConsistencyLevel, DetectMode, DetectSession, DetectionEngine,
};
use atropos_dsl::{check_program, CmdLabel, Expr, Program, Stmt, Transaction, UpdateCmd};
use atropos_semantics::{ThetaMap, ValueCorrespondence};

use crate::analysis::{commands_of, dirty_between, var_bindings, visit_stmts_mut, DirtySet};
use crate::dce::{post_process_tracked, PostProcessReport};
use crate::merge::try_merging_tracked;
use crate::rewrite::{apply_logging_tracked, apply_redirect_tracked, find_command};

/// One applied refactoring, for the repair log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairStep {
    /// A mixed update was split into per-anomaly commands.
    Split {
        /// Original label.
        label: String,
        /// Labels of the fragments.
        into: Vec<String>,
    },
    /// Two commands were merged.
    Merge {
        /// Surviving label.
        kept: String,
        /// Removed label.
        removed: String,
    },
    /// Fields were moved between schemas (redirect rule).
    Redirect {
        /// Source schema.
        src: String,
        /// Target schema.
        dst: String,
        /// Moved fields.
        fields: Vec<String>,
    },
    /// A counter field was turned into a logging table (logger rule).
    Logging {
        /// Source schema.
        schema: String,
        /// Logged field.
        field: String,
        /// New logging schema name.
        log: String,
    },
    /// A relayed derivation was materialized onto the origin row
    /// ([`crate::chain::materialize_relay`], triple mode).
    Materialize {
        /// Schema the derived copy lived on.
        src: String,
        /// Origin schema it moved to.
        dst: String,
        /// Derived field (its name on `src`).
        field: String,
        /// Its minted name on `dst`.
        into: String,
    },
    /// A chain's middle hop was fused into the transaction feeding it
    /// ([`crate::chain::chain_cut`], triple mode).
    ChainCut {
        /// The relay transaction the hop was cut from.
        relay: String,
        /// The transaction the hop was fused into.
        host: String,
        /// Labels of the moved commands (minted under `.T`).
        moved: Vec<String>,
    },
}

impl std::fmt::Display for RepairStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairStep::Split { label, into } => write!(f, "split {label} into {into:?}"),
            RepairStep::Merge { kept, removed } => write!(f, "merge {removed} into {kept}"),
            RepairStep::Redirect { src, dst, fields } => {
                write!(f, "redirect {fields:?} from {src} to {dst}")
            }
            RepairStep::Logging { schema, field, log } => {
                write!(f, "log {schema}.{field} into {log}")
            }
            RepairStep::Materialize { src, dst, field, into } => {
                write!(f, "materialize {src}.{field} into {dst}.{into}")
            }
            RepairStep::ChainCut { relay, host, moved } => {
                write!(f, "cut chain: fuse {relay}'s {moved:?} into {host}")
            }
        }
    }
}

/// Configuration of the repair driver (the ablation switches correspond to
/// the paper's individual refactoring rules).
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Consistency level the oracle assumes (EC in the paper's Table 1).
    pub level: ConsistencyLevel,
    /// Detection bound the oracle grounds queries over. The default
    /// [`DetectMode::Pairs`] is the paper's two-instance skeleton;
    /// [`DetectMode::Triples`] additionally runs the bounded
    /// three-instance chain templates, so the repair loop also sees (and
    /// reports as `remaining` / [`RepairReport::unsafe_transactions`])
    /// observer-chain violations no pair can witness. Opt-in: triple
    /// detection costs extra solver work per pass.
    pub mode: DetectMode,
    /// Enable command splitting in preprocessing.
    pub enable_split: bool,
    /// Enable the merge strategy.
    pub enable_merge: bool,
    /// Enable the redirect rule.
    pub enable_redirect: bool,
    /// Enable the logger rule.
    pub enable_logging: bool,
    /// Enable relay materialization (the `.T` chain rule consuming
    /// [`AnomalyKind::ObserverChain`] witnesses; only reachable in
    /// [`DetectMode::Triples`]).
    pub enable_materialize: bool,
    /// Enable the chain-cut merge (the `.T` chain rule consuming
    /// fractured-read / write-skew / residual observer-chain witnesses;
    /// only reachable in [`DetectMode::Triples`]).
    pub enable_chain_cut: bool,
    /// Run the post-processing pipeline (DCE, final merges, table drops).
    pub enable_postprocess: bool,
    /// Safety cap on repair iterations.
    pub max_iterations: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            level: ConsistencyLevel::EventualConsistency,
            mode: DetectMode::Pairs,
            enable_split: true,
            enable_merge: true,
            enable_redirect: true,
            enable_logging: true,
            enable_materialize: true,
            enable_chain_cut: true,
            enable_postprocess: true,
            max_iterations: 64,
        }
    }
}

impl RepairConfig {
    /// The rule-ablation sweep of the differential suites and the
    /// benchmark bins: the default configuration plus each refactoring
    /// rule disabled in turn.
    pub fn ablations() -> Vec<(&'static str, RepairConfig)> {
        let base = RepairConfig::default();
        vec![
            ("default", base.clone()),
            ("no-split", RepairConfig { enable_split: false, ..base.clone() }),
            ("no-merge", RepairConfig { enable_merge: false, ..base.clone() }),
            ("no-redirect", RepairConfig { enable_redirect: false, ..base.clone() }),
            ("no-logging", RepairConfig { enable_logging: false, ..base.clone() }),
            ("no-materialize", RepairConfig { enable_materialize: false, ..base.clone() }),
            ("no-chain-cut", RepairConfig { enable_chain_cut: false, ..base.clone() }),
            ("no-postprocess", RepairConfig { enable_postprocess: false, ..base }),
        ]
    }
}

/// Oracle work done by one detection pass of the repair loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairIteration {
    /// Ordered transaction pairs the pass examined.
    pub pairs: u64,
    /// Pairs answered from the verdict cache (zero on the scratch path).
    pub pairs_reused: u64,
    /// Pairs re-encoded and re-solved.
    pub pairs_solved: u64,
    /// SAT queries issued by the re-solved pairs.
    pub queries: u64,
    /// Transactions dirtied by the step applied on the strength of this
    /// pass's verdicts (empty when they drove no repair). When the loop
    /// reuses a pass's verdicts instead of re-detecting, the step still
    /// attributes here — to the pass that produced the verdicts — so each
    /// entry carries at most one step.
    pub dirtied_txns: Vec<String>,
    /// Wall-clock seconds spent in this detection pass.
    pub seconds: f64,
}

/// Instrumentation of one whole repair run: every detection pass the loop
/// performed (or skipped by reusing the previous verdict), plus the verdict
/// cache's lifetime counters.
#[derive(Debug, Clone, Default)]
pub struct RepairStats {
    /// One entry per detection pass actually run, in order (the initial
    /// pass, each loop re-detection, and the post-processing re-detection
    /// when needed).
    pub iterations: Vec<RepairIteration>,
    /// Detection passes run.
    pub detections: u64,
    /// Detection passes avoided by reusing the previous pass's verdicts
    /// (the program had not changed since).
    pub detections_skipped: u64,
    /// Verdict-cache counters (all zero on the scratch path).
    pub cache: CacheStats,
    /// Initial dirty verdicts whose decoded witness schedule manifested
    /// its anomaly on the simulated cluster (witness replay; engine path
    /// only, zero on the scratch path).
    pub replay_manifested: u64,
    /// Initial verdicts that failed to decode or manifest on the original
    /// program — a detector/replay divergence, expected to stay zero.
    pub replay_failed: u64,
    /// Initial verdicts with no realizable (or no manifesting) witness
    /// left on the repaired program under the AT-SC marked set: the
    /// anomaly is suppressed.
    pub replay_suppressed: u64,
    /// Initial verdicts that still manifest on the repaired program —
    /// expected to stay zero after a successful repair.
    pub replay_surviving: u64,
    /// UNSAT proof certificates this run's detection passes banked in the
    /// session's verdict cache (engine path with the engine's proof
    /// logging on — see [`atropos_detect::DetectionEngine::with_proofs`];
    /// zero otherwise). Each is independently checkable with
    /// `atropos_proof::check_blob`.
    pub proof_certs: u64,
}

impl RepairStats {
    /// Total pairs answered from the cache across the run.
    pub fn pairs_reused(&self) -> u64 {
        self.iterations.iter().map(|i| i.pairs_reused).sum()
    }

    /// Total pairs re-encoded and re-solved across the run.
    pub fn pairs_solved(&self) -> u64 {
        self.iterations.iter().map(|i| i.pairs_solved).sum()
    }

    /// Fraction of pair analyses answered from the cache (0 on scratch).
    pub fn hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Total wall-clock seconds spent in detection passes.
    pub fn detect_seconds(&self) -> f64 {
        self.iterations.iter().map(|i| i.seconds).sum()
    }
}

/// The outcome of repairing a program.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The original program.
    pub original: Program,
    /// The repaired program.
    pub repaired: Program,
    /// Anomalous pairs of the original program.
    pub initial: Vec<AccessPair>,
    /// Anomalous pairs remaining after repair.
    pub remaining: Vec<AccessPair>,
    /// Value correspondences introduced by the applied refactorings.
    pub vcs: Vec<ValueCorrespondence>,
    /// Applied refactorings, in order.
    pub steps: Vec<RepairStep>,
    /// Post-processing summary.
    pub post: PostProcessReport,
    /// Per-iteration oracle statistics.
    pub stats: RepairStats,
    /// Wall-clock time of analysis plus repair, in seconds.
    pub seconds: f64,
}

impl RepairReport {
    /// Fraction of initial anomalies eliminated (1.0 when all were fixed).
    ///
    /// `initial` and `remaining` are both reported by the *configured*
    /// detection mode, so pair and triple anomalies count consistently in
    /// numerator and denominator. The ratio is clamped to `[0, 1]`: a
    /// repair that surfaces anomalies absent from `initial` (e.g. a chain
    /// cut trading a fractured read for a pair-visible dirty read) reports
    /// zero progress, never a negative ratio.
    pub fn repair_ratio(&self) -> f64 {
        if self.initial.is_empty() {
            return if self.remaining.is_empty() { 1.0 } else { 0.0 };
        }
        let eliminated = self.initial.len().saturating_sub(self.remaining.len());
        eliminated as f64 / self.initial.len() as f64
    }

    /// Names of transactions still involved in at least one anomaly; running
    /// exactly these under serializability yields a provably safe program
    /// (the AT-SC configuration).
    pub fn unsafe_transactions(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in &self.remaining {
            out.insert(p.txn1.clone());
            out.insert(p.txn2.clone());
            out.extend(p.witnesses.iter().cloned());
        }
        out
    }
}

/// Repairs a program with the default configuration at the given level.
///
/// # Examples
///
/// ```
/// use atropos_core::{repair_program};
/// use atropos_detect::ConsistencyLevel;
///
/// let p = atropos_dsl::parse(
///     "schema C { id: int key, cnt: int }
///      txn bump(k: int) {
///          x := select cnt from C where id = k;
///          update C set cnt = x.cnt + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
/// assert!(report.remaining.is_empty());
/// ```
pub fn repair_program(program: &Program, level: ConsistencyLevel) -> RepairReport {
    repair_with_config(
        program,
        &RepairConfig {
            level,
            ..RepairConfig::default()
        },
    )
}

/// Repairs a program under an explicit configuration.
///
/// This is the production, near-incremental driver: it builds a
/// [`DetectionEngine`] from the environment (`ATROPOS_THREADS`) and a
/// fresh [`DetectSession`] for the run, so each re-detection after a
/// refactoring step only re-solves the transaction pairs the step dirtied
/// (in parallel when the engine has workers to spare), and a detection
/// pass is skipped entirely when the program has not changed since the
/// previous one. Callers that repair many programs (or the same program
/// under many configurations) should construct the engine and session once
/// and call [`repair_with_engine`] instead — warm verdicts then carry
/// across runs. Verdict- and step-equivalence with the from-scratch
/// reference driver ([`repair_with_config_scratch`]) is pinned by the
/// `repair_incremental_vs_scratch` differential suite on all nine
/// workloads and every rule ablation.
///
/// # Panics
///
/// Panics if the input program fails to type check.
pub fn repair_with_config(program: &Program, config: &RepairConfig) -> RepairReport {
    let engine = DetectionEngine::from_env();
    let mut session = DetectSession::new();
    repair_with_engine(program, config, &engine, &mut session)
}

/// [`repair_with_config`] against a caller-owned engine and session: the
/// session's verdict cache (and its retained pair solvers) survives the
/// call, so a following run over a program sharing transaction shapes —
/// the same benchmark under another rule ablation, the next iteration of a
/// parameter sweep — answers those pairs from warm verdicts. The run's
/// [`RepairStats::cache`] reports only this run's share of the session's
/// counters.
///
/// # Panics
///
/// Panics if the input program fails to type check.
pub fn repair_with_engine(
    program: &Program,
    config: &RepairConfig,
    engine: &DetectionEngine,
    session: &mut DetectSession,
) -> RepairReport {
    // Bound the session at each run boundary: reset liveness to this run's
    // input program, evicting entries stranded by the previous run's
    // intermediate refactoring states while keeping every shape of the
    // (typically shared) input program warm — which is exactly where
    // cross-run reuse comes from. Within the run, liveness then grows by
    // union as the program is refactored (see `atropos_detect::cache`).
    session.sweep(program);
    session.begin_run();
    let before = session.cache_stats();
    let certs_before = if engine.proofs_enabled() {
        session.proof_blobs().len()
    } else {
        0
    };
    let mut report = repair_core(program, config, &mut Oracle::Engine { engine, session });
    report.stats.cache = session.cache_stats().since(&before);
    if engine.proofs_enabled() {
        report.stats.proof_certs = session.proof_blobs().len().saturating_sub(certs_before) as u64;
    }
    replay_initial_verdicts(program, config, &mut report);
    report
}

/// Witness replay: proves each initial dirty verdict on the cluster and
/// checks the repair killed it. Every verdict of `report.initial` is
/// decoded ([`atropos_detect::decode_witness`]) into a concrete schedule
/// and run on the simulated replica set against the original program
/// (counting [`RepairStats::replay_manifested`] /
/// [`RepairStats::replay_failed`]); then the *repaired* program is
/// searched for a surviving witness of the same anomaly — loosely
/// anchored, since repair rewrites command labels, and with
/// [`RepairReport::unsafe_transactions`] as the AT-SC marked set
/// (counting [`RepairStats::replay_suppressed`] /
/// [`RepairStats::replay_surviving`]). Replay is deterministic, so these
/// counters are independent of the engine's thread count.
fn replay_initial_verdicts(program: &Program, config: &RepairConfig, report: &mut RepairReport) {
    let marked = report.unsafe_transactions();
    for verdict in &report.initial {
        match atropos_detect::replay_verdict(program, verdict, config.level) {
            Some(outcome) if outcome.manifested => report.stats.replay_manifested += 1,
            _ => report.stats.replay_failed += 1,
        }
        let surviving = atropos_detect::decode_witness_marked(
            &report.repaired,
            verdict,
            config.level,
            &marked,
        )
        .is_some_and(|s| atropos_sim::run_schedule(&s).manifested);
        if surviving {
            report.stats.replay_surviving += 1;
        } else {
            report.stats.replay_suppressed += 1;
        }
    }
}

/// The from-scratch reference driver, verbatim Fig. 10: the full anomaly
/// oracle re-runs after every refactoring step *and* on the final program,
/// with no verdict cache and no carried-forward verdicts. Slow; kept for
/// differential testing and for the incremental-vs-scratch speedup
/// accounting in the benchmark binaries.
///
/// # Panics
///
/// Panics if the input program fails to type check.
pub fn repair_with_config_scratch(program: &Program, config: &RepairConfig) -> RepairReport {
    repair_core(program, config, &mut Oracle::Scratch)
}

/// Repairs `program` under every configuration of
/// [`RepairConfig::ablations`] through **one shared session**: common
/// transaction shapes (every ablation starts from the same program) are
/// answered from warm verdicts across runs, which is where the session's
/// cross-run hit ratio ([`CacheStats::cross_run_hit_ratio`]) comes from in
/// the benchmark bins.
///
/// # Panics
///
/// Panics if the input program fails to type check.
pub fn ablation_sweep(
    program: &Program,
    engine: &DetectionEngine,
    session: &mut DetectSession,
) -> Vec<(&'static str, RepairReport)> {
    RepairConfig::ablations()
        .into_iter()
        .map(|(name, config)| (name, repair_with_engine(program, &config, engine, session)))
        .collect()
}

/// Repairs a whole corpus of programs through **one shared engine and
/// session** — the repair-side analogue of
/// [`atropos_detect::CorpusService`]: the session is swept once to the
/// union of every corpus program (so no program's run strands another's
/// warm entries), then each program repairs in corpus order, answering
/// every transaction shape the corpus shares from warm verdicts. Returns
/// one report per program, in input order.
///
/// # Examples
///
/// ```
/// use atropos_core::{repair_corpus, RepairConfig};
/// use atropos_detect::{DetectSession, DetectionEngine};
///
/// let p = atropos_dsl::parse(
///     "schema C { id: int key, cnt: int }
///      txn bump(k: int) {
///          x := select cnt from C where id = k;
///          update C set cnt = x.cnt + 1 where id = k;
///          return 0;
///      }",
/// ).unwrap();
/// let corpus = vec![("a".to_string(), p.clone()), ("b".to_string(), p)];
/// let engine = DetectionEngine::serial();
/// let mut session = DetectSession::new();
/// let reports = repair_corpus(&corpus, &RepairConfig::default(), &engine, &mut session);
/// assert_eq!(reports.len(), 2);
/// assert!(reports.iter().all(|(_, r)| r.remaining.is_empty()));
/// // The duplicate program's initial detection replays entirely warm.
/// assert_eq!(reports[1].1.stats.cache.misses, 0);
/// ```
///
/// # Panics
///
/// Panics if any input program fails to type check.
pub fn repair_corpus(
    programs: &[(String, Program)],
    config: &RepairConfig,
    engine: &DetectionEngine,
    session: &mut DetectSession,
) -> Vec<(String, RepairReport)> {
    session.sweep_corpus(programs.iter().map(|(_, p)| p));
    programs
        .iter()
        .map(|(name, program)| {
            session.begin_run();
            let before = session.cache_stats();
            let mut report =
                repair_core(program, config, &mut Oracle::Engine { engine, session });
            report.stats.cache = session.cache_stats().since(&before);
            replay_initial_verdicts(program, config, &mut report);
            (name.clone(), report)
        })
        .collect()
}

/// How a repair run discharges its detection passes.
enum Oracle<'e, 's> {
    /// The Fig. 10 reference: a full fresh oracle pass every time.
    Scratch,
    /// The production path: the engine's (possibly parallel) cached oracle
    /// against a caller-owned session.
    Engine {
        engine: &'e DetectionEngine,
        session: &'s mut DetectSession,
    },
}

impl Oracle<'_, '_> {
    fn is_cached(&self) -> bool {
        matches!(self, Oracle::Engine { .. })
    }
}

/// Runs one detection pass (cached or scratch) at the configuration's
/// detection mode and records its [`RepairIteration`] in `stats`.
fn run_detection(
    program: &Program,
    level: ConsistencyLevel,
    mode: DetectMode,
    oracle: &mut Oracle<'_, '_>,
    stats: &mut RepairStats,
) -> Vec<AccessPair> {
    stats.detections += 1;
    match oracle {
        Oracle::Engine { engine, session } => {
            let before = session.cache_stats();
            let (pairs, d) = engine.detect_with_mode(program, level, mode, session);
            let after = session.cache_stats();
            stats.iterations.push(RepairIteration {
                pairs: d.pairs,
                pairs_reused: after.hits - before.hits,
                pairs_solved: after.misses - before.misses,
                queries: d.queries,
                dirtied_txns: Vec::new(),
                seconds: d.seconds,
            });
            pairs
        }
        Oracle::Scratch => {
            // The Fig. 10 reference pays a full fresh oracle every pass —
            // in triple mode that is a cold triple oracle per pass too.
            let (pairs, d) = match mode {
                DetectMode::Pairs => detect_anomalies_with_stats(program, level),
                DetectMode::Triples => detect_anomalies_triples(program, level),
            };
            stats.iterations.push(RepairIteration {
                pairs: d.pairs,
                pairs_reused: 0,
                pairs_solved: d.pairs,
                queries: d.queries,
                dirtied_txns: Vec::new(),
                seconds: d.seconds,
            });
            pairs
        }
    }
}

fn repair_core(
    program: &Program,
    config: &RepairConfig,
    oracle: &mut Oracle<'_, '_>,
) -> RepairReport {
    check_program(program).expect("repair requires a well-typed program");
    let start = Instant::now();
    let cached = oracle.is_cached();
    let mut stats = RepairStats::default();

    let initial = run_detection(program, config.level, config.mode, oracle, &mut stats);

    let mut current = program.clone();
    let mut steps: Vec<RepairStep> = Vec::new();
    let mut vcs: Vec<ValueCorrespondence> = Vec::new();
    // The verdicts valid for `current` right now, carried forward by the
    // incremental driver so an unchanged program is never re-detected
    // (neither by the loop's next pass nor by the final `remaining`
    // computation). The Fig. 10 reference path always re-detects, so both
    // of its redundant passes stay measurable.
    let mut last_verdict: Option<Vec<AccessPair>> = cached.then(|| initial.clone());

    if config.enable_split {
        let before = current.clone();
        pre_process(&mut current, &initial, &mut steps);
        let dirty = dirty_between(&before, &current);
        if !dirty.is_empty() {
            apply_dirty(oracle, &dirty);
            last_verdict = None;
        }
    }

    let mut failed: BTreeSet<(String, String, AnomalyKind)> = BTreeSet::new();
    for _ in 0..config.max_iterations {
        let mut pairs = match last_verdict.take() {
            Some(p) => {
                stats.detections_skipped += 1;
                p
            }
            None => run_detection(&current, config.level, config.mode, oracle, &mut stats),
        };
        // Repair lost updates (logging) before dirty/non-repeatable pairs
        // (merging): merging first would fuse updates into multi-assignment
        // commands the logger rule cannot translate.
        pairs.sort_by(|a, b| {
            (a.kind, &a.cmd1, &a.cmd2).cmp(&(b.kind, &b.cmd1, &b.cmd2))
        });
        let mut progress = false;
        for pair in &pairs {
            let key = (pair.cmd1.0.clone(), pair.cmd2.0.clone(), pair.kind);
            if failed.contains(&key) {
                continue;
            }
            match try_repair(&current, pair, config) {
                Some((next, new_vcs, new_steps, dirty)) => {
                    current = next;
                    vcs.extend(new_vcs);
                    steps.extend(new_steps);
                    if let Some(it) = stats.iterations.last_mut() {
                        it.dirtied_txns = dirty.txns.iter().cloned().collect();
                    }
                    apply_dirty(oracle, &dirty);
                    progress = true;
                    break;
                }
                None => {
                    failed.insert(key);
                }
            }
        }
        if !progress {
            // No step applied: `pairs` still describes `current` exactly.
            last_verdict = cached.then_some(pairs);
            break;
        }
    }

    let post = if config.enable_postprocess {
        let (report, dirty) = post_process_tracked(&mut current);
        if !dirty.is_empty() {
            apply_dirty(oracle, &dirty);
            last_verdict = None;
        }
        report
    } else {
        PostProcessReport::default()
    };
    let mut remaining = match last_verdict {
        Some(p) => {
            stats.detections_skipped += 1;
            p
        }
        None => run_detection(&current, config.level, config.mode, oracle, &mut stats),
    };
    // Canonical order: the carried-forward verdicts arrive in repair-rule
    // order while a fresh detection arrives in witness order, and the two
    // drivers must report byte-identical remainders.
    remaining.sort();
    // The cached driver's share of the session cache counters is filled in
    // by `repair_with_engine` (the session may be older than this run).
    RepairReport {
        original: program.clone(),
        repaired: current,
        initial,
        remaining,
        vcs,
        steps,
        post,
        stats,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Funnels one step's [`DirtySet`] into the session's verdict cache: pure
/// relabelings are remapped so surviving entries serve current labels.
/// Eviction needs no driver action — the next detection pass sweeps
/// stranded entries by fingerprint liveness itself.
fn apply_dirty(oracle: &mut Oracle<'_, '_>, dirty: &DirtySet) {
    if let Oracle::Engine { session, .. } = oracle {
        session.record_renames(&dirty.renames);
    }
}

/// Preprocessing: splits every update that participates in several anomalies
/// with disjoint field sets into one update per field group (U4 → U4.1,
/// U4.2 in the paper), provided no other command accesses fields from two
/// different groups.
fn pre_process(program: &mut Program, pairs: &[AccessPair], steps: &mut Vec<RepairStep>) {
    // Fields demanded per command label.
    let mut demand: BTreeMap<String, Vec<BTreeSet<String>>> = BTreeMap::new();
    for p in pairs {
        demand.entry(p.cmd1.0.clone()).or_default().push(p.fields1.clone());
        demand.entry(p.cmd2.0.clone()).or_default().push(p.fields2.clone());
    }

    let snapshot = program.clone();
    for t in program.transactions.iter_mut() {
        // Select splitting first: a select projecting fields demanded by
        // several disjoint anomalies is divided into one select per group,
        // with fresh variables substituted into all later reads.
        split_selects_in_txn(t, &demand, &snapshot, steps);
        visit_stmts_mut(&mut t.body, &mut |s| {
            let Stmt::Update(c) = s else { return };
            let Some(groups) = demand.get(&c.label.0) else { return };
            if c.assigns.len() < 2 {
                return;
            }
            // Partition assigned fields by the anomaly groups that need them.
            let mut parts: Vec<BTreeSet<String>> = Vec::new();
            for g in groups {
                let mine: BTreeSet<String> = c
                    .assigns
                    .iter()
                    .map(|(f, _)| f.clone())
                    .filter(|f| g.contains(f))
                    .collect();
                if mine.is_empty() {
                    continue;
                }
                if !parts.iter().any(|p| p == &mine) {
                    parts.push(mine);
                }
            }
            // Need at least two disjoint groups for a split to help.
            if parts.len() < 2 || !pairwise_disjoint(&parts) {
                return;
            }
            // Leftover fields go to the first group.
            let covered: BTreeSet<String> = parts.iter().flatten().cloned().collect();
            for (f, _) in &c.assigns {
                if !covered.contains(f) {
                    parts[0].insert(f.clone());
                }
            }
            // Safety: no other command may access fields of two groups.
            if !split_safe(&snapshot, &c.schema, &c.label, &parts) {
                return;
            }
            let mut fragments = Vec::new();
            for (k, group) in parts.iter().enumerate() {
                let assigns: Vec<(String, Expr)> = c
                    .assigns
                    .iter()
                    .filter(|(f, _)| group.contains(f))
                    .cloned()
                    .collect();
                fragments.push(UpdateCmd {
                    label: CmdLabel(format!("{}.{}", c.label.0, k + 1)),
                    schema: c.schema.clone(),
                    assigns,
                    where_: c.where_.clone(),
                });
            }
            let old_label = c.label.0.clone();
            steps.push(RepairStep::Split {
                label: old_label.clone(),
                into: fragments.iter().map(|f| f.label.0.clone()).collect(),
            });
            // Replace in place: first fragment here; the rest are spliced in
            // after the traversal.
            *s = Stmt::Update(fragments[0].clone());
            PENDING.with(|p| p.borrow_mut().push((old_label, fragments)));
        });
        // Splice remaining fragments after their first part.
        PENDING.with(|p| {
            let mut pending = p.borrow_mut();
            for (_, fragments) in pending.drain(..) {
                splice_after(&mut t.body, &fragments[0].label, &fragments[1..]);
            }
        });
    }
}

thread_local! {
    static PENDING: std::cell::RefCell<Vec<(String, Vec<UpdateCmd>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn splice_after(body: &mut Vec<Stmt>, after: &CmdLabel, rest: &[UpdateCmd]) {
    if let Some(pos) = body.iter().position(|s| s.label() == Some(after)) {
        for (k, frag) in rest.iter().enumerate() {
            body.insert(pos + 1 + k, Stmt::Update(frag.clone()));
        }
        return;
    }
    for s in body.iter_mut() {
        if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
            splice_after(body, after, rest);
        }
    }
}

/// Splits selects demanded by several disjoint anomaly groups. Each group
/// becomes its own select (same filter) bound to a fresh variable; accesses
/// are rewritten to the fragment carrying the field.
fn split_selects_in_txn(
    t: &mut Transaction,
    demand: &BTreeMap<String, Vec<BTreeSet<String>>>,
    snapshot: &Program,
    steps: &mut Vec<RepairStep>,
) {
    // Collect the splits first (immutable pass), then apply.
    struct SelSplit {
        label: String,
        parts: Vec<BTreeSet<String>>,
    }
    let mut splits: Vec<SelSplit> = Vec::new();
    for s in commands_of(t) {
        let Stmt::Select(c) = s else { continue };
        let Some(groups) = demand.get(&c.label.0) else { continue };
        let Some(fields) = &c.fields else { continue };
        if fields.len() < 2 {
            continue;
        }
        let mut parts: Vec<BTreeSet<String>> = Vec::new();
        for g in groups {
            let mine: BTreeSet<String> = fields
                .iter()
                .filter(|f| g.contains(*f))
                .cloned()
                .collect();
            if mine.is_empty() || parts.iter().any(|p| p == &mine) {
                continue;
            }
            parts.push(mine);
        }
        if parts.len() < 2 || !pairwise_disjoint(&parts) {
            continue;
        }
        let covered: BTreeSet<String> = parts.iter().flatten().cloned().collect();
        for f in fields {
            if !covered.contains(f) {
                parts[0].insert(f.clone());
            }
        }
        if !split_safe(snapshot, &c.schema, &c.label, &parts) {
            continue;
        }
        splits.push(SelSplit {
            label: c.label.0.clone(),
            parts,
        });
    }
    for sp in splits {
        let mut var_of_field: Vec<(String, String)> = Vec::new(); // field -> fragment var
        let mut old_var = String::new();
        // Replace the select in place with its first fragment and remember
        // the rest.
        let mut fragments: Vec<Stmt> = Vec::new();
        visit_stmts_mut(&mut t.body, &mut |s| {
            let Stmt::Select(c) = s else { return };
            if c.label.0 != sp.label {
                return;
            }
            old_var = c.var.clone();
            for (k, group) in sp.parts.iter().enumerate() {
                let var = format!("{}_{}", c.var, k + 1);
                for f in group {
                    var_of_field.push((f.clone(), var.clone()));
                }
                fragments.push(Stmt::Select(atropos_dsl::SelectCmd {
                    label: CmdLabel(format!("{}.{}", sp.label, k + 1)),
                    var,
                    fields: Some(group.iter().cloned().collect()),
                    schema: c.schema.clone(),
                    where_: c.where_.clone(),
                }));
            }
            if let Some(Stmt::Select(first)) = fragments.first().cloned() {
                *s = Stmt::Select(first);
            }
        });
        if fragments.is_empty() {
            continue;
        }
        steps.push(RepairStep::Split {
            label: sp.label.clone(),
            into: fragments
                .iter()
                .filter_map(|f| f.label().map(|l| l.0.clone()))
                .collect(),
        });
        // Splice remaining fragments after the first.
        if let Some(first_label) = fragments[0].label().cloned() {
            let rest: Vec<Stmt> = fragments[1..].to_vec();
            splice_stmts_after(&mut t.body, &first_label, &rest);
        }
        // Rewrite accesses through the old variable to the fragment vars.
        let var_map = var_of_field.clone();
        let old = old_var.clone();
        crate::analysis::rewrite_exprs(t, &move |e| match e {
            Expr::At(i, v, f) if *v == old => var_map
                .iter()
                .find(|(mf, _)| mf == f)
                .map(|(_, nv)| Expr::At(i.clone(), nv.clone(), f.clone())),
            Expr::Agg(op, v, f) if *v == old => var_map
                .iter()
                .find(|(mf, _)| mf == f)
                .map(|(_, nv)| Expr::Agg(*op, nv.clone(), f.clone())),
            _ => None,
        });
    }
}

fn splice_stmts_after(body: &mut Vec<Stmt>, after: &CmdLabel, rest: &[Stmt]) {
    if let Some(pos) = body.iter().position(|s| s.label() == Some(after)) {
        for (k, frag) in rest.iter().enumerate() {
            body.insert(pos + 1 + k, frag.clone());
        }
        return;
    }
    for s in body.iter_mut() {
        if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
            splice_stmts_after(body, after, rest);
        }
    }
}

fn pairwise_disjoint(parts: &[BTreeSet<String>]) -> bool {
    for i in 0..parts.len() {
        for j in (i + 1)..parts.len() {
            if parts[i].intersection(&parts[j]).next().is_some() {
                return false;
            }
        }
    }
    true
}

/// "We only perform this step if the split fields are not accessed together
/// in other parts of the program."
fn split_safe(
    program: &Program,
    schema: &str,
    split_label: &CmdLabel,
    parts: &[BTreeSet<String>],
) -> bool {
    for t in &program.transactions {
        for s in commands_of(t) {
            if s.label() == Some(split_label) || s.schema() != Some(schema) {
                continue;
            }
            let touched: BTreeSet<String> = match s {
                Stmt::Select(c) => match &c.fields {
                    Some(fs) => fs.iter().cloned().collect(),
                    None => parts.iter().flatten().cloned().collect(),
                },
                Stmt::Update(c) => c.assigns.iter().map(|(f, _)| f.clone()).collect(),
                Stmt::Insert(c) => c.values.iter().map(|(f, _)| f.clone()).collect(),
                Stmt::Delete(_) => BTreeSet::new(),
                _ => BTreeSet::new(),
            };
            let hit = parts
                .iter()
                .filter(|p| p.intersection(&touched).next().is_some())
                .count();
            if hit > 1 {
                return false;
            }
        }
    }
    true
}

type RepairOutcome = (Program, Vec<ValueCorrespondence>, Vec<RepairStep>, DirtySet);

/// `try_repair` (Fig. 10): merge, redirect+merge, or logging — extended
/// with the `.T` chain rules for the triple-mode anomaly kinds. Besides
/// the rewritten program, every successful branch returns the union of the
/// applied rules' [`DirtySet`]s for the driver's verdict cache.
fn try_repair(program: &Program, pair: &AccessPair, config: &RepairConfig) -> Option<RepairOutcome> {
    // Chain anomalies carry their relay in `witnesses` and never fit the
    // pair rules' (c1, c2) shapes — dispatch them to the chain rules.
    if matches!(
        pair.kind,
        AnomalyKind::ObserverChain | AnomalyKind::FracturedRead | AnomalyKind::WriteSkewCycle
    ) {
        if config.enable_materialize {
            if let Some(out) = crate::chain::materialize_relay(program, pair, config.enable_merge) {
                return Some(out);
            }
        }
        if config.enable_chain_cut {
            if let Some(out) = crate::chain::chain_cut(program, pair) {
                return Some(out);
            }
        }
        return None;
    }

    let (t1, c1) = find_command(program, &pair.cmd1)?;
    let (t2, c2) = find_command(program, &pair.cmd2)?;
    let same_kind = matches!(
        (c1, c2),
        (Stmt::Select(_), Stmt::Select(_))
            | (Stmt::Update(_), Stmt::Update(_))
            | (Stmt::Insert(_), Stmt::Insert(_))
            | (Stmt::Delete(_), Stmt::Delete(_))
    );
    let same_txn = t1.name == t2.name;

    if same_kind && same_txn {
        let (s1, s2) = (c1.schema()?, c2.schema()?);
        if s1 == s2 {
            if config.enable_merge {
                if let Some((next, dirty)) = try_merging_tracked(program, &pair.cmd1, &pair.cmd2) {
                    return Some((
                        next,
                        vec![],
                        vec![RepairStep::Merge {
                            kept: pair.cmd1.0.clone(),
                            removed: pair.cmd2.0.clone(),
                        }],
                        dirty,
                    ));
                }
            }
        } else if config.enable_redirect {
            // Try redirecting c2's schema into c1's, then the reverse.
            for (from, into, from_cmd, into_cmd) in
                [(s2, s1, c2, c1), (s1, s2, c1, c2)]
            {
                if let Some(out) =
                    redirect_then_merge(program, t1, from, into, from_cmd, into_cmd, config)
                {
                    return Some(out);
                }
            }
        }
    }

    if config.enable_logging && pair.kind == AnomalyKind::LostUpdate {
        // The pair is (read, write) on a shared field; log the written field.
        let (write_cmd, read_cmd, read_txn) = if matches!(c2, Stmt::Update(_)) {
            (c2, c1, t1)
        } else {
            (c1, c2, t2)
        };
        if let Stmt::Update(u) = write_cmd {
            let field = pair
                .fields1
                .intersection(&pair.fields2)
                .next()
                .cloned()
                .or_else(|| pair.fields2.iter().next().cloned())?;
            if let Some((mut next, new_vcs, mut dirty)) =
                apply_logging_tracked(program, &u.schema, &field)
            {
                // Fig. 10's success condition: the select involved in the
                // anomaly must become obsolete (dead code) — otherwise the
                // residual read still races the functional inserts. Remove
                // exactly that select; unrelated dead code waits for
                // post-processing.
                if let Some(read_label) = read_cmd.label() {
                    if !remove_if_dead_select(&mut next, read_label) {
                        return None;
                    }
                    // The removal's dirt is known exactly: the dead select's
                    // label and its transaction (whose later commands shift).
                    dirty.labels.insert(read_label.0.clone());
                    dirty.txns.insert(read_txn.name.clone());
                }
                let log = format!("{}_{}_LOG", u.schema, field.to_uppercase());
                return Some((
                    next,
                    new_vcs,
                    vec![RepairStep::Logging {
                        schema: u.schema.clone(),
                        field,
                        log,
                    }],
                    dirty,
                ));
            }
        }
    }
    None
}

/// Removes the select labelled `label` if (and only if) its bound variable
/// is no longer used in its transaction. Returns whether it was removed.
fn remove_if_dead_select(program: &mut Program, label: &CmdLabel) -> bool {
    for t in program.transactions.iter_mut() {
        let Some(var) = commands_of(t).into_iter().find_map(|s| match s {
            Stmt::Select(c) if &c.label == label => Some(c.var.clone()),
            _ => None,
        }) else {
            continue;
        };
        if crate::analysis::used_vars(t).contains(&var) {
            return false;
        }
        crate::analysis::retain_commands(&mut t.body, &|s| s.label() != Some(label));
        return true;
    }
    // The select is already gone (e.g. merged away): vacuously obsolete.
    true
}

/// `try_redirect` followed by `try_merging`: discover a record
/// correspondence from the commands' filters, move the fields `from_cmd`
/// accesses onto `into`'s schema, and merge the now-co-located commands.
fn redirect_then_merge(
    program: &Program,
    txn: &Transaction,
    from: &str,
    into: &str,
    from_cmd: &Stmt,
    into_cmd: &Stmt,
    config: &RepairConfig,
) -> Option<RepairOutcome> {
    let theta = discover_theta(program, txn, from, into, from_cmd, into_cmd)?;
    // Move the non-key fields the command accesses.
    let src_schema = program.schema(from)?;
    let moved: BTreeSet<String> = match from_cmd {
        Stmt::Select(c) => match &c.fields {
            Some(fs) => fs
                .iter()
                .filter(|f| src_schema.field(f).is_some_and(|d| !d.primary_key))
                .cloned()
                .collect(),
            None => src_schema.value_fields().iter().map(|f| (*f).to_owned()).collect(),
        },
        Stmt::Update(c) => c.assigns.iter().map(|(f, _)| f.clone()).collect(),
        _ => return None,
    };
    if moved.is_empty() {
        return None;
    }
    let (next, new_vcs, mut dirty) = apply_redirect_tracked(program, from, into, &moved, &theta)?;
    let mut steps = vec![RepairStep::Redirect {
        src: from.to_owned(),
        dst: into.to_owned(),
        fields: moved.iter().cloned().collect(),
    }];
    // Merge if possible; a successful redirect is kept even when the merge
    // itself fails (the pair may already be single-record safe).
    let (l1, l2) = (into_cmd.label()?, from_cmd.label()?);
    if config.enable_merge {
        if let Some((merged, merge_dirty)) = try_merging_tracked(&next, l1, l2) {
            steps.push(RepairStep::Merge {
                kept: l1.0.clone(),
                removed: l2.0.clone(),
            });
            dirty.merge(merge_dirty);
            return Some((merged, new_vcs, steps, dirty));
        }
    }
    Some((next, new_vcs, steps, dirty))
}

/// Derives the lifted record correspondence `θ̂ : pk(from) → fields(into)`
/// by analysing the filter of the command on `from` (§5): a key expression
/// `x.g` where `x` is bound to rows of `into` maps to `g`; a key expression
/// also assigned to a field `g` of `into` in the same transaction maps to
/// `g`.
fn discover_theta(
    program: &Program,
    txn: &Transaction,
    from: &str,
    into: &str,
    from_cmd: &Stmt,
    into_cmd: &Stmt,
) -> Option<ThetaMap> {
    let src = program.schema(from)?;
    let where_ = match from_cmd {
        Stmt::Select(c) => &c.where_,
        Stmt::Update(c) => &c.where_,
        Stmt::Delete(c) => &c.where_,
        _ => return None,
    };
    let into_where = match into_cmd {
        Stmt::Select(c) => Some(&c.where_),
        Stmt::Update(c) => Some(&c.where_),
        Stmt::Delete(c) => Some(&c.where_),
        _ => None,
    };
    let bindings = var_bindings(txn);
    let mut map = Vec::new();
    for k in src.primary_key() {
        let e = where_.eq_expr_for(k)?;
        let target = theta_target(program, txn, into, e, &bindings)
            .or_else(|| theta_from_pair_constraint(program, into, into_where, e))?;
        map.push((k.to_owned(), target));
    }
    Some(ThetaMap::new(map))
}

/// §5's "equivalent expressions used in their constraints": if the paired
/// command on `into` pins one of its own key fields `g` to the very same
/// expression, the correspondence maps through `g` (the two commands name
/// the same logical entity).
fn theta_from_pair_constraint(
    program: &Program,
    into: &str,
    into_where: Option<&atropos_dsl::Where>,
    key_expr: &Expr,
) -> Option<String> {
    let w = into_where?;
    let dst = program.schema(into)?;
    let printed = atropos_dsl::print_expr(key_expr);
    for g in dst.primary_key() {
        if let Some(e) = w.eq_expr_for(g) {
            if atropos_dsl::print_expr(e) == printed {
                return Some(g.to_owned());
            }
        }
    }
    None
}

fn theta_target(
    program: &Program,
    txn: &Transaction,
    into: &str,
    key_expr: &Expr,
    bindings: &[(String, String)],
) -> Option<String> {
    // Case (a): the key expression reads a field of a row of `into`.
    if let Expr::At(_, v, g) = key_expr {
        if bindings.iter().any(|(bv, bs)| bv == v && bs == into) {
            return Some(g.clone());
        }
    }
    // Case (b): some update of `into` in this transaction assigns a field
    // the very same expression.
    let printed = atropos_dsl::print_expr(key_expr);
    for s in commands_of(txn) {
        if let Stmt::Update(c) = s {
            if c.schema == into {
                for (g, e) in &c.assigns {
                    if atropos_dsl::print_expr(e) == printed {
                        return Some(g.clone());
                    }
                }
            }
        }
    }
    // Case (c): `into` has a field of the same name as an argument used as
    // the key (common in benchmarks: WHERE a_id = aid with ACCOUNT.a_id).
    if let Expr::Arg(a) = key_expr {
        let dst = program.schema(into)?;
        for f in &dst.fields {
            if &f.name == a {
                return Some(f.name.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::{parse, print_program};

    #[test]
    fn engine_with_proofs_banks_checkable_certificates() {
        // Under serializability the counter is clean, so the initial
        // detection pass is pure refutation — every UNSAT answer must bank
        // a certificate in the session, and the run must report the count.
        let p = parse(
            "schema C { id: int key, cnt: int }
             txn bump(k: int) {
                 x := select cnt from C where id = k;
                 update C set cnt = x.cnt + 1 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let engine = DetectionEngine::serial().with_proofs(true);
        let mut session = DetectSession::new();
        let config = RepairConfig {
            level: ConsistencyLevel::Serializable,
            ..RepairConfig::default()
        };
        let report = repair_with_engine(&p, &config, &engine, &mut session);
        assert!(report.remaining.is_empty());
        assert!(report.stats.proof_certs > 0, "{:?}", report.stats);
        let blobs = session.proof_blobs();
        assert_eq!(report.stats.proof_certs as usize, blobs.len());
        for blob in &blobs {
            atropos_proof::check_blob(blob).expect("certificate checks");
        }
    }

    /// Fig. 1 course-management program.
    const COURSEWARE: &str = r#"
        schema STUDENT { st_id: int key, st_name: string, st_em_id: int, st_co_id: int, st_reg: bool }
        schema COURSE  { co_id: int key, co_avail: bool, co_st_cnt: int }
        schema EMAIL   { em_id: int key, em_addr: string }

        txn getSt(id: int) {
            @S1 x := select * from STUDENT where st_id = id;
            @S2 y := select em_addr from EMAIL where em_id = x.st_em_id;
            @S3 z := select co_avail from COURSE where co_id = x.st_co_id;
            return y.em_addr;
        }
        txn setSt(id: int, name: string, email: string) {
            @S4 x := select st_em_id from STUDENT where st_id = id;
            @U1 update STUDENT set st_name = name where st_id = id;
            @U2 update EMAIL set em_addr = email where em_id = x.st_em_id;
            return 0;
        }
        txn regSt(id: int, course: int) {
            @U3 update STUDENT set st_co_id = course, st_reg = true where st_id = id;
            @S5 x := select co_st_cnt from COURSE where co_id = course;
            @U4 update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
            return 0;
        }
    "#;

    #[test]
    fn repairs_courseware_to_fig3_shape() {
        let p = parse(COURSEWARE).unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        let text = print_program(&report.repaired);

        assert!(!report.initial.is_empty());
        assert!(
            report.remaining.is_empty(),
            "remaining: {:?}\nprogram:\n{text}",
            report.remaining
        );
        // EMAIL and COURSE are gone; a log table exists.
        assert!(report.repaired.schema("EMAIL").is_none(), "{text}");
        assert!(report.repaired.schema("COURSE").is_none(), "{text}");
        assert!(
            report.repaired.schema("COURSE_CO_ST_CNT_LOG").is_some(),
            "{text}"
        );
        // getSt collapsed to a single select on STUDENT.
        let get = report.repaired.transaction("getSt").unwrap();
        assert_eq!(crate::analysis::commands_of(get).len(), 1, "{text}");
        // setSt collapsed to a single update.
        let set = report.repaired.transaction("setSt").unwrap();
        assert_eq!(crate::analysis::commands_of(set).len(), 1, "{text}");
        // regSt: one student update + one log insert.
        let reg = report.repaired.transaction("regSt").unwrap();
        assert_eq!(crate::analysis::commands_of(reg).len(), 2, "{text}");
        assert!(text.contains("insert into COURSE_CO_ST_CNT_LOG"), "{text}");
    }

    #[test]
    fn split_preprocessing_divides_mixed_update() {
        let p = parse(COURSEWARE).unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        assert!(
            report
                .steps
                .iter()
                .any(|s| matches!(s, RepairStep::Split { label, .. } if label == "U4")),
            "steps: {:?}",
            report.steps
        );
    }

    #[test]
    fn repair_ratio_reported() {
        let p = parse(COURSEWARE).unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        assert!((report.repair_ratio() - 1.0).abs() < 1e-9);
        assert!(report.unsafe_transactions().is_empty());
    }

    #[test]
    fn unfixable_blind_write_pairs_remain() {
        // Blind write vs read-modify-write on the same field cannot be
        // merged (different transactions) nor logged (blind write).
        let p = parse(
            "schema T { id: int key, v: int }
             txn setit(k: int, n: int) {
                 update T set v = n where id = k;
                 return 0;
             }
             txn bump(k: int) {
                 x := select v from T where id = k;
                 update T set v = x.v + 1 where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        assert!(!report.remaining.is_empty());
        assert!(report.unsafe_transactions().contains("bump"));
        // Witness replay still closes the loop: every initial verdict
        // manifests on the original program, and the AT-SC marked set
        // suppresses the leftovers on the (unchanged) repaired program.
        assert_eq!(
            report.stats.replay_manifested,
            report.initial.len() as u64,
            "{:?}",
            report.stats
        );
        assert_eq!(report.stats.replay_failed, 0, "{:?}", report.stats);
        assert_eq!(report.stats.replay_surviving, 0, "{:?}", report.stats);
    }

    /// A fully repaired program suppresses every initial verdict's witness
    /// without needing any AT-SC marking.
    #[test]
    fn replay_counters_close_on_full_repair() {
        let p = parse(COURSEWARE).unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        assert!(report.remaining.is_empty());
        assert!(!report.initial.is_empty());
        let n = report.initial.len() as u64;
        assert_eq!(report.stats.replay_manifested, n, "{:?}", report.stats);
        assert_eq!(report.stats.replay_failed, 0, "{:?}", report.stats);
        assert_eq!(report.stats.replay_suppressed, n, "{:?}", report.stats);
        assert_eq!(report.stats.replay_surviving, 0, "{:?}", report.stats);
    }

    #[test]
    fn disabling_rules_disables_repairs() {
        let p = parse(COURSEWARE).unwrap();
        let config = RepairConfig {
            enable_merge: false,
            enable_redirect: false,
            enable_logging: false,
            enable_split: false,
            enable_postprocess: false,
            ..RepairConfig::default()
        };
        let report = repair_with_config(&p, &config);
        assert_eq!(report.initial.len(), report.remaining.len());
        assert!(report.steps.is_empty());
    }

    #[test]
    fn already_clean_program_is_detected_exactly_once() {
        // A single-command program has no anomalies and nothing for the
        // post-processor to touch: the driver must run the oracle once and
        // reuse that verdict for both the loop's pass and `remaining`,
        // instead of re-detecting the unchanged program twice more.
        let p = parse(
            "schema T { id: int key, v: int }
             txn set(k: int, n: int) {
                 update T set v = n where id = k;
                 return 0;
             }",
        )
        .unwrap();
        let cached = repair_program(&p, ConsistencyLevel::EventualConsistency);
        assert!(cached.initial.is_empty());
        assert!(cached.remaining.is_empty());
        assert_eq!(cached.stats.detections, 1, "{:?}", cached.stats);
        assert_eq!(cached.stats.detections_skipped, 2, "{:?}", cached.stats);
        // The Fig. 10 reference pays all three passes on the same input.
        let scratch = repair_with_config_scratch(&p, &RepairConfig::default());
        assert!(scratch.remaining.is_empty());
        assert_eq!(scratch.stats.detections, 3, "{:?}", scratch.stats);
        assert_eq!(scratch.stats.detections_skipped, 0, "{:?}", scratch.stats);
    }

    #[test]
    fn cached_and_scratch_drivers_agree_on_courseware() {
        let p = parse(COURSEWARE).unwrap();
        let cached = repair_program(&p, ConsistencyLevel::EventualConsistency);
        let scratch = repair_with_config_scratch(&p, &RepairConfig::default());
        assert_eq!(cached.steps, scratch.steps);
        assert_eq!(cached.remaining, scratch.remaining);
        assert_eq!(cached.vcs, scratch.vcs);
        assert_eq!(
            atropos_dsl::print_program(&cached.repaired),
            atropos_dsl::print_program(&scratch.repaired)
        );
        // The cached run must actually reuse verdicts across iterations…
        assert!(
            cached.stats.pairs_reused() > 0,
            "no cache reuse: {:?}",
            cached.stats
        );
        assert!(cached.stats.hit_ratio() > 0.0);
        // …while the scratch reference never does.
        assert_eq!(scratch.stats.pairs_reused(), 0);
        assert_eq!(scratch.stats.cache, atropos_detect::CacheStats::default());
        // Both record the same number of oracle passes (run or skipped).
        assert_eq!(
            cached.stats.detections + cached.stats.detections_skipped,
            scratch.stats.detections + scratch.stats.detections_skipped
        );
    }

    /// The ablation sweep shares one session: every configuration repairs
    /// the same program, so later runs answer the shapes earlier runs
    /// solved — a nonzero cross-run hit ratio — while each run's report
    /// still matches an isolated repair of the same configuration.
    #[test]
    fn ablation_sweep_shares_warm_verdicts_across_runs() {
        let p = parse(COURSEWARE).unwrap();
        let engine = DetectionEngine::new(2);
        let mut session = DetectSession::new();
        let sweep = ablation_sweep(&p, &engine, &mut session);
        assert_eq!(sweep.len(), RepairConfig::ablations().len());
        for ((name, config), (_, shared)) in RepairConfig::ablations().iter().zip(&sweep) {
            let isolated = repair_with_config(&p, config);
            assert_eq!(shared.steps, isolated.steps, "{name}");
            assert_eq!(shared.remaining, isolated.remaining, "{name}");
            assert_eq!(
                print_program(&shared.repaired),
                print_program(&isolated.repaired),
                "{name}"
            );
        }
        let stats = session.cache_stats();
        assert!(
            stats.cross_run_hit_ratio() > 0.0,
            "sweep must reuse verdicts across runs: {stats:?}"
        );
        assert_eq!(session.runs(), sweep.len() as u64);
        // Per-run cache shares sum to the session's lifetime counters.
        let run_hits: u64 = sweep.iter().map(|(_, r)| r.stats.cache.hits).sum();
        assert_eq!(run_hits, stats.hits);
    }

    #[test]
    fn applied_steps_report_their_dirtied_transactions() {
        let p = parse(COURSEWARE).unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        // Every iteration that applied a step names at least one dirtied
        // transaction; the union covers the transactions the steps rewrote.
        let applied: Vec<_> = report
            .stats
            .iterations
            .iter()
            .filter(|i| !i.dirtied_txns.is_empty())
            .collect();
        assert!(!applied.is_empty(), "{:?}", report.stats);
        let dirtied: BTreeSet<&str> = applied
            .iter()
            .flat_map(|i| i.dirtied_txns.iter().map(String::as_str))
            .collect();
        assert!(dirtied.contains("getSt") || dirtied.contains("setSt"), "{dirtied:?}");
    }

    /// Triple mode threads through the repair loop: on the 3-hop relay the
    /// pair-mode driver sees nothing, while the triple-mode driver surfaces
    /// the observer chain — and, with the chain rules enabled, repairs it
    /// to clean via relay materialization (`repair_ratio == 1.0`).
    #[test]
    fn triple_mode_repairs_the_relay_chain_to_clean() {
        let p = atropos_workloads_relay();
        let pair_report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        assert!(pair_report.initial.is_empty(), "{:?}", pair_report.initial);
        assert!(pair_report.remaining.is_empty());

        let config = RepairConfig {
            mode: DetectMode::Triples,
            ..RepairConfig::default()
        };
        let triple_report = repair_with_config(&p, &config);
        assert_eq!(triple_report.initial.len(), 1, "{:?}", triple_report.initial);
        assert_eq!(triple_report.initial[0].kind, AnomalyKind::ObserverChain);
        assert!(triple_report.remaining.is_empty(), "{:?}", triple_report.remaining);
        assert!(triple_report.unsafe_transactions().is_empty());
        assert!(
            triple_report
                .steps
                .iter()
                .any(|s| matches!(s, RepairStep::Materialize { .. })),
            "{:?}",
            triple_report.steps
        );
        assert!((triple_report.repair_ratio() - 1.0).abs() < 1e-12);
        // The scratch reference agrees in triple mode too.
        let scratch = repair_with_config_scratch(&p, &config);
        assert_eq!(triple_report.remaining, scratch.remaining);
        assert_eq!(triple_report.steps, scratch.steps);
        assert_eq!(
            print_program(&triple_report.repaired),
            print_program(&scratch.repaired)
        );
    }

    /// With both chain rules ablated, triple mode degrades to PR 5
    /// behaviour: the observer chain is surfaced but not repaired, and the
    /// unsafe coordination set names the whole chain (the AT-SC fallback).
    #[test]
    fn triple_mode_without_chain_rules_surfaces_the_chain_unrepaired() {
        let p = atropos_workloads_relay();
        let config = RepairConfig {
            mode: DetectMode::Triples,
            enable_materialize: false,
            enable_chain_cut: false,
            ..RepairConfig::default()
        };
        let triple_report = repair_with_config(&p, &config);
        assert_eq!(triple_report.initial.len(), 1);
        assert_eq!(triple_report.remaining.len(), 1);
        assert_eq!(
            triple_report.unsafe_transactions(),
            BTreeSet::from(["post".to_owned(), "relay".to_owned(), "timeline".to_owned()]),
            "AT-SC must coordinate the whole chain, including the relay witness"
        );
        // Surfacing without repairing is zero progress, never negative.
        assert_eq!(triple_report.repair_ratio(), 0.0);
    }

    /// The relay-shaped program shared by the triple-mode repair tests
    /// (`atropos_workloads::relay`, inlined — the workloads crate depends
    /// on this one). The timeline's reads flow into its result, so
    /// dead-select elimination cannot dissolve the chain in
    /// post-processing.
    fn atropos_workloads_relay() -> Program {
        parse(
            "schema MSG { m_id: int key, m_body: int }
             schema FEED { f_id: int key, f_body: int }
             txn post(m: int, body: int) {
                 @W1 update MSG set m_body = body where m_id = m;
                 return 0;
             }
             txn relay(m: int, f: int) {
                 @R2 x := select m_body from MSG where m_id = m;
                 @W2 update FEED set f_body = x.m_body where f_id = f;
                 return 0;
             }
             txn timeline(f: int, m: int) {
                 @R3 y := select f_body from FEED where f_id = f;
                 @R4 z := select m_body from MSG where m_id = m;
                 return y.f_body + z.m_body;
             }",
        )
        .unwrap()
    }

    #[test]
    fn vcs_describe_moved_data() {
        let p = parse(COURSEWARE).unwrap();
        let report = repair_program(&p, ConsistencyLevel::EventualConsistency);
        // em_addr moved somewhere, co_st_cnt logged.
        assert!(report
            .vcs
            .iter()
            .any(|v| v.src_schema == "EMAIL" && v.src_field == "em_addr"));
        assert!(report.vcs.iter().any(|v| {
            v.src_schema == "COURSE"
                && v.src_field == "co_st_cnt"
                && v.alpha == atropos_semantics::Aggregator::Sum
        }));
    }
}
