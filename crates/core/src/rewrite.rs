//! The program rewrite function `⟦·⟧_v` (§4.2): applying a value
//! correspondence to every command that touches the moved data.
//!
//! Two instantiations are provided, mirroring the paper:
//!
//! * [`apply_redirect`] — the **redirect** rule (α = any): moves a set of
//!   fields from a source schema onto a target schema, rewriting every
//!   well-formed access through the record correspondence `θ̂`;
//! * [`apply_logging`] — the **logger** rule (α = sum): replaces
//!   read-modify-write updates of a numeric field with functional inserts
//!   into a fresh logging schema, and redirects residual reads to
//!   program-level `sum` aggregation.
//!
//! Both return `None` when the preconditions of the rule (well-formed where
//! clauses, no mixed accesses, increment-shaped writes, …) do not hold, and
//! both re-run the type checker on the result as a safety net, so a
//! returned program is always well-typed.

use std::collections::BTreeSet;

use atropos_dsl::{
    check_program, BinOp, CmdLabel, CmpOp, Expr, FieldDecl, InsertCmd, Program, Schema, SelectCmd,
    Stmt, Transaction, Ty, Where,
};
use atropos_semantics::{Aggregator, ThetaMap, ValueCorrespondence};

use crate::analysis::{dirty_between, rewrite_exprs, visit_stmts_mut, DirtySet};

/// Mints a field name for `src_field` moved into `dst`: reuses the target
/// schema's leading prefix (`st` for `st_id`, …) when one exists.
pub fn fresh_field_name(dst: &Schema, src_field: &str) -> String {
    let prefix = dst
        .fields
        .first()
        .and_then(|f| f.name.split('_').next())
        .unwrap_or("m");
    let mut candidate = format!("{prefix}_{src_field}");
    let mut n = 2;
    while dst.has_field(&candidate) {
        candidate = format!("{prefix}_{src_field}_{n}");
        n += 1;
    }
    candidate
}

/// Is `w` a *well-formed* filter on `schema` (§4.2.1): a conjunction of
/// equality constraints on primary-key fields only? Returns the pinned
/// `(pk field, expr)` pairs in key order.
pub(crate) fn well_formed_key_filter<'w>(
    schema: &Schema,
    w: &'w Where,
) -> Option<Vec<(String, &'w Expr)>> {
    let conj = w.conjuncts()?;
    let pk: Vec<&str> = schema.primary_key();
    let mut out = Vec::new();
    for (f, op, e) in &conj {
        if *op != CmpOp::Eq || !pk.contains(f) {
            return None;
        }
        out.push(((*f).to_owned(), *e));
    }
    // Every pinned field must be a key field (checked above); require at
    // least one constraint so scans are not silently redirected.
    if out.is_empty() {
        return None;
    }
    Some(out)
}

/// `redirect(φ, θ̂)`: rewrites a well-formed filter on the source schema to
/// the equivalent filter on the target schema.
fn redirect_where(src: &Schema, theta: &ThetaMap, w: &Where) -> Option<Where> {
    let pins = well_formed_key_filter(src, w)?;
    let mut out: Option<Where> = None;
    for (f, e) in pins {
        let dst_f = theta.target_of(&f)?;
        let c = Where::Cmp {
            field: dst_f.to_owned(),
            op: CmpOp::Eq,
            expr: e.clone(),
        };
        out = Some(match out {
            None => c,
            Some(prev) => prev.and(c),
        });
    }
    out
}

/// Fields of the source schema accessed by one command (projection, where,
/// assignments), excluding nothing.
fn fields_touched(cmd: &Stmt, src: &Schema) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match cmd {
        Stmt::Select(c) if c.schema == src.name => {
            out.extend(c.where_.fields());
            match &c.fields {
                Some(fs) => out.extend(fs.iter().cloned()),
                None => out.extend(src.fields.iter().map(|f| f.name.clone())),
            }
        }
        Stmt::Update(c) if c.schema == src.name => {
            out.extend(c.where_.fields());
            out.extend(c.assigns.iter().map(|(f, _)| f.clone()));
        }
        Stmt::Insert(c) if c.schema == src.name => {
            out.extend(c.values.iter().map(|(f, _)| f.clone()));
        }
        Stmt::Delete(c) if c.schema == src.name => {
            out.extend(c.where_.fields());
        }
        _ => {}
    }
    out
}

/// Applies the redirect rule: moves `moved` (non-key fields of `src`) into
/// `dst` under the record correspondence `theta`, rewriting every access.
///
/// Returns the refactored program and the introduced value correspondences,
/// or `None` when any access cannot be rewritten soundly.
pub fn apply_redirect(
    program: &Program,
    src_name: &str,
    dst_name: &str,
    moved: &BTreeSet<String>,
    theta: &ThetaMap,
) -> Option<(Program, Vec<ValueCorrespondence>)> {
    if src_name == dst_name || moved.is_empty() {
        return None;
    }
    let src = program.schema(src_name)?.clone();
    let dst = program.schema(dst_name)?.clone();
    // Moved fields must be non-key fields of the source.
    for f in moved {
        let decl = src.field(f)?;
        if decl.primary_key {
            return None;
        }
    }
    // θ̂ must map every source key to an existing, type-compatible dst field.
    for k in src.primary_key() {
        let t = theta.target_of(k)?;
        let kd = src.field(k).expect("pk field exists");
        let td = dst.field(t)?;
        if kd.ty != td.ty {
            return None;
        }
    }

    // Mint destination fields.
    let mut dst_new = dst.clone();
    let mut renames: Vec<(String, String)> = Vec::new(); // moved field -> new name
    for f in moved {
        let new_name = fresh_field_name(&dst_new, f);
        let ty = src.field(f).expect("checked above").ty;
        dst_new.fields.push(FieldDecl::new(new_name.clone(), ty));
        renames.push((f.clone(), new_name));
    }
    let rename_of = |f: &str| -> Option<&str> {
        renames
            .iter()
            .find(|(old, _)| old == f)
            .map(|(_, new)| new.as_str())
    };

    let mut out = program.clone();
    // Install the extended destination schema.
    for s in out.schemas.iter_mut() {
        if s.name == dst_name {
            *s = dst_new.clone();
        }
    }

    // Rewrite all commands of every transaction.
    let mut ok = true;
    let mut redirected_vars: Vec<(String, String)> = Vec::new(); // (txn, var)
    for t in out.transactions.iter_mut() {
        let mut failed = false;
        visit_stmts_mut(&mut t.body, &mut |s| {
            if failed {
                return;
            }
            let touched = fields_touched(s, &src);
            if touched.is_empty() {
                return;
            }
            let touched_moved: BTreeSet<&String> =
                touched.iter().filter(|f| moved.contains(*f)).collect();
            if touched_moved.is_empty() {
                return;
            }
            // Mixed access to moved and unmoved non-key fields is not
            // rewritable (preprocessing should have split the command).
            let touched_unmoved_nonkey = touched.iter().any(|f| {
                !moved.contains(f)
                    && src.field(f).is_some_and(|d| !d.primary_key)
            });
            if touched_unmoved_nonkey {
                failed = true;
                return;
            }
            match s {
                Stmt::Select(c) => {
                    let Some(new_where) = redirect_where(&src, theta, &c.where_) else {
                        failed = true;
                        return;
                    };
                    let new_fields = match &c.fields {
                        None => Some(
                            src.fields
                                .iter()
                                .map(|f| {
                                    if let Some(n) = rename_of(&f.name) {
                                        n.to_owned()
                                    } else if f.primary_key {
                                        theta
                                            .target_of(&f.name)
                                            .unwrap_or(&f.name)
                                            .to_owned()
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect::<Vec<_>>(),
                        ),
                        Some(fs) => Some(
                            fs.iter()
                                .map(|f| {
                                    if let Some(n) = rename_of(f) {
                                        n.to_owned()
                                    } else if src
                                        .field(f)
                                        .is_some_and(|d| d.primary_key)
                                    {
                                        theta.target_of(f).unwrap_or(f).to_owned()
                                    } else {
                                        f.clone()
                                    }
                                })
                                .collect::<Vec<_>>(),
                        ),
                    };
                    redirected_vars.push((t.name.clone(), c.var.clone()));
                    c.schema = dst_name.to_owned();
                    c.fields = new_fields;
                    c.where_ = new_where;
                }
                Stmt::Update(c) => {
                    let Some(new_where) = redirect_where(&src, theta, &c.where_) else {
                        failed = true;
                        return;
                    };
                    c.schema = dst_name.to_owned();
                    c.where_ = new_where;
                    for (f, _) in c.assigns.iter_mut() {
                        if let Some(n) = rename_of(f) {
                            *f = n.to_owned();
                        }
                    }
                }
                // Inserting or deleting whole source records cannot be
                // expressed through a partial field move.
                Stmt::Insert(_) | Stmt::Delete(_) => {
                    failed = true;
                }
                Stmt::If { .. } | Stmt::Iterate { .. } => {}
            }
        });
        if failed {
            ok = false;
            break;
        }
    }
    if !ok {
        return None;
    }

    // Rewrite expressions reading the moved fields (and source key fields)
    // through redirected variables.
    let redirected_vars2 = redirected_vars.clone();
    for t in out.transactions.iter_mut() {
        let tname = t.name.clone();
        let renames = renames.clone();
        let src2 = src.clone();
        let theta2 = theta.clone();
        let rv = redirected_vars2.clone();
        rewrite_exprs(t, &move |e| match e {
            Expr::Agg(op, v, f) => {
                if rv.iter().any(|(tn, vn)| tn == &tname && vn == v) {
                    if let Some((_, n)) = renames.iter().find(|(old, _)| old == f) {
                        return Some(Expr::Agg(*op, v.clone(), n.clone()));
                    }
                    if src2.field(f).is_some_and(|d| d.primary_key) {
                        if let Some(n) = theta2.target_of(f) {
                            return Some(Expr::Agg(*op, v.clone(), n.to_owned()));
                        }
                    }
                }
                None
            }
            Expr::At(i, v, f) => {
                if rv.iter().any(|(tn, vn)| tn == &tname && vn == v) {
                    if let Some((_, n)) = renames.iter().find(|(old, _)| old == f) {
                        return Some(Expr::At(i.clone(), v.clone(), n.clone()));
                    }
                    if src2.field(f).is_some_and(|d| d.primary_key) {
                        if let Some(n) = theta2.target_of(f) {
                            return Some(Expr::At(i.clone(), v.clone(), n.to_owned()));
                        }
                    }
                }
                None
            }
            _ => None,
        });
    }

    // Safety net: the refactored program must type check.
    if check_program(&out).is_err() {
        return None;
    }
    let vcs = renames
        .iter()
        .map(|(old, new)| ValueCorrespondence {
            src_schema: src_name.to_owned(),
            dst_schema: dst_name.to_owned(),
            src_field: old.clone(),
            dst_field: new.clone(),
            theta: theta.clone(),
            alpha: Aggregator::Any,
        })
        .collect();
    Some((out, vcs))
}

/// Recognizes `e` as an increment of `x.f` (or `sum(x.f)`) and returns the
/// delta expression, i.e. `e ≡ at(x.f) + δ` or `e ≡ at(x.f) - δ`.
fn increment_delta(e: &Expr, field: &str) -> Option<(String, Expr)> {
    let is_self = |x: &Expr| -> Option<String> {
        match x {
            Expr::At(_, v, f) if f == field => Some(v.clone()),
            Expr::Agg(atropos_dsl::AggOp::Sum, v, f) if f == field => Some(v.clone()),
            _ => None,
        }
    };
    match e {
        Expr::Bin(BinOp::Add, l, r) => {
            if let Some(v) = is_self(l) {
                return Some((v, (**r).clone()));
            }
            if let Some(v) = is_self(r) {
                return Some((v, (**l).clone()));
            }
            None
        }
        Expr::Bin(BinOp::Sub, l, r) => {
            let v = is_self(l)?;
            Some((v, Expr::int(0).sub((**r).clone())))
        }
        _ => None,
    }
}

/// Applies the logger rule to `(schema, field)`: every write must be an
/// increment, writes become inserts of deltas into a fresh logging schema,
/// and other reads are redirected to `sum` aggregation over the log.
///
/// Returns `None` when some write is not increment-shaped, some read cannot
/// be redirected, or the result fails to type check.
pub fn apply_logging(
    program: &Program,
    schema_name: &str,
    field: &str,
) -> Option<(Program, Vec<ValueCorrespondence>)> {
    let src = program.schema(schema_name)?.clone();
    let decl = src.field(field)?;
    if decl.primary_key || decl.ty != Ty::Int {
        return None;
    }

    let log_name = format!("{}_{}_LOG", schema_name, field.to_uppercase());
    if program.schema(&log_name).is_some() {
        return None;
    }
    let log_field = format!("{field}_log");
    // Log schema: copies of the source keys + a uuid discriminator.
    let mut log_fields: Vec<FieldDecl> = src
        .fields
        .iter()
        .filter(|f| f.primary_key)
        .map(|f| FieldDecl::key(f.name.clone(), f.ty))
        .collect();
    log_fields.push(FieldDecl::key("log_id", Ty::Uuid));
    log_fields.push(FieldDecl::new(log_field.clone(), Ty::Int));

    let mut out = program.clone();
    out.schemas.push(Schema::new(log_name.clone(), log_fields));

    let mut ok = true;
    for t in out.transactions.iter_mut() {
        let mut failed = false;
        let mut redirected_vars: Vec<String> = Vec::new();
        // Selects projecting the logged field *among others* are split: the
        // residue keeps the original schema, a new select aggregates the
        // log. `pending` collects the splices applied after the traversal.
        let mut pending: Vec<(CmdLabel, Stmt)> = Vec::new();
        let mut split_vars: Vec<(String, String)> = Vec::new(); // old var -> log var
        visit_stmts_mut(&mut t.body, &mut |s| {
            if failed {
                return;
            }
            match s {
                Stmt::Update(c) if c.schema == schema_name => {
                    let writes_field = c.assigns.iter().any(|(f, _)| f == field);
                    if !writes_field {
                        return;
                    }
                    if c.assigns.len() != 1 {
                        // Mixed update: preprocessing should have split it.
                        failed = true;
                        return;
                    }
                    let (_, e) = &c.assigns[0];
                    let Some((_, delta)) = increment_delta(e, field) else {
                        failed = true;
                        return;
                    };
                    let Some(pins) = well_formed_key_filter(&src, &c.where_) else {
                        failed = true;
                        return;
                    };
                    // All source keys must be pinned to build the log key.
                    let pk: Vec<&str> = src.primary_key();
                    if pins.len() != pk.len() {
                        failed = true;
                        return;
                    }
                    let mut values: Vec<(String, Expr)> = pins
                        .into_iter()
                        .map(|(f, e)| (f, e.clone()))
                        .collect();
                    values.push(("log_id".to_owned(), Expr::Uuid));
                    values.push((log_field.clone(), delta));
                    *s = Stmt::Insert(InsertCmd {
                        label: c.label.clone(),
                        schema: log_name.clone(),
                        values,
                    });
                }
                // Inserting the logged field (or deleting whole records)
                // cannot be expressed through the log.
                Stmt::Insert(c) if c.schema == schema_name
                    && c.values.iter().any(|(f, _)| f == field) => {
                        failed = true;
                    }
                Stmt::Delete(c) if c.schema == schema_name => {
                    let _ = c;
                    failed = true;
                }
                Stmt::Select(c) if c.schema == schema_name => {
                    let projects: Vec<String> = match &c.fields {
                        Some(fs) => fs.clone(),
                        None => src.fields.iter().map(|f| f.name.clone()).collect(),
                    };
                    if !projects.iter().any(|f| f == field) {
                        return;
                    }
                    if c.where_.fields().iter().any(|f| f == field) {
                        failed = true;
                        return;
                    }
                    let Some(pins) = well_formed_key_filter(&src, &c.where_) else {
                        failed = true;
                        return;
                    };
                    let mut new_where: Option<Where> = None;
                    for (f, e) in pins {
                        let cmp = Where::Cmp {
                            field: f,
                            op: CmpOp::Eq,
                            expr: e.clone(),
                        };
                        new_where = Some(match new_where.take() {
                            None => cmp,
                            Some(p) => p.and(cmp),
                        });
                    }
                    let others: Vec<String> = projects
                        .iter()
                        .filter(|f| *f != field)
                        .cloned()
                        .collect();
                    if others.is_empty() {
                        // Pure read of the logged field: redirect in place.
                        let var = c.var.clone();
                        *s = Stmt::Select(SelectCmd {
                            label: c.label.clone(),
                            var: var.clone(),
                            fields: Some(vec![log_field.clone()]),
                            schema: log_name.clone(),
                            where_: new_where.unwrap_or(Where::True),
                        });
                        redirected_vars.push(var);
                    } else {
                        // Mixed projection: keep the residue, splice in a
                        // log-aggregation select bound to a fresh variable.
                        let log_var = format!("{}_log", c.var);
                        pending.push((
                            c.label.clone(),
                            Stmt::Select(SelectCmd {
                                label: CmdLabel(format!("{}.L", c.label.0)),
                                var: log_var.clone(),
                                fields: Some(vec![log_field.clone()]),
                                schema: log_name.clone(),
                                where_: new_where.unwrap_or(Where::True),
                            }),
                        ));
                        split_vars.push((c.var.clone(), log_var));
                        c.fields = Some(others);
                    }
                }
                _ => {}
            }
        });
        if failed {
            ok = false;
            break;
        }
        for (after, stmt) in pending {
            splice_stmt_after(&mut t.body, &after, stmt);
        }
        // Accesses through redirected variables become sums over the log;
        // accesses through split variables aggregate the fresh log binding.
        let vars: BTreeSet<String> = redirected_vars.into_iter().collect();
        let splits = split_vars;
        let field_owned = field.to_owned();
        let log_field2 = log_field.clone();
        rewrite_exprs(t, &move |e| match e {
            Expr::At(_, v, f) | Expr::Agg(_, v, f) if f == &field_owned => {
                if vars.contains(v) {
                    Some(Expr::Agg(
                        atropos_dsl::AggOp::Sum,
                        v.clone(),
                        log_field2.clone(),
                    ))
                } else {
                    splits.iter().find(|(old, _)| old == v).map(|(_, nv)| {
                        Expr::Agg(atropos_dsl::AggOp::Sum, nv.clone(), log_field2.clone())
                    })
                }
            }
            _ => None,
        });
    }
    if !ok {
        return None;
    }
    if check_program(&out).is_err() {
        return None;
    }
    let theta = ThetaMap::new(
        src.primary_key()
            .iter()
            .map(|k| ((*k).to_owned(), (*k).to_owned()))
            .collect(),
    );
    let vcs = vec![ValueCorrespondence {
        src_schema: schema_name.to_owned(),
        dst_schema: log_name,
        src_field: field.to_owned(),
        dst_field: log_field,
        theta,
        alpha: Aggregator::Sum,
    }];
    Some((out, vcs))
}

/// [`apply_redirect`] plus this rule's [`DirtySet`]: the redirect rewrites
/// *every* access to the source schema program-wide and mutates both schema
/// declarations, so the payload typically spans several transactions.
pub fn apply_redirect_tracked(
    program: &Program,
    src_name: &str,
    dst_name: &str,
    moved: &BTreeSet<String>,
    theta: &ThetaMap,
) -> Option<(Program, Vec<ValueCorrespondence>, DirtySet)> {
    let (next, vcs) = apply_redirect(program, src_name, dst_name, moved, theta)?;
    let dirty = dirty_between(program, &next);
    Some((next, vcs, dirty))
}

/// [`apply_logging`] plus this rule's [`DirtySet`]: covers the rewritten
/// increments, the redirected reads, and every transaction touching the
/// source schema or the fresh logging schema.
pub fn apply_logging_tracked(
    program: &Program,
    schema_name: &str,
    field: &str,
) -> Option<(Program, Vec<ValueCorrespondence>, DirtySet)> {
    let (next, vcs) = apply_logging(program, schema_name, field)?;
    let dirty = dirty_between(program, &next);
    Some((next, vcs, dirty))
}

fn splice_stmt_after(body: &mut Vec<Stmt>, after: &CmdLabel, stmt: Stmt) {
    if let Some(pos) = body.iter().position(|s| s.label() == Some(after)) {
        body.insert(pos + 1, stmt);
        return;
    }
    for s in body.iter_mut() {
        if let Stmt::If { body, .. } | Stmt::Iterate { body, .. } = s {
            splice_stmt_after(body, after, stmt.clone());
        }
    }
}

/// Looks up the transaction and statement for a command label.
pub fn find_command<'p>(
    program: &'p Program,
    label: &CmdLabel,
) -> Option<(&'p Transaction, &'p Stmt)> {
    for t in &program.transactions {
        for s in crate::analysis::commands_of(t) {
            if s.label() == Some(label) {
                return Some((t, s));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::{parse, print_program};

    fn email_program() -> Program {
        parse(
            "schema STUDENT { st_id: int key, st_name: string, st_em_id: int }
             schema EMAIL { em_id: int key, em_addr: string }
             txn getSt(id: int) {
                 @S1 x := select * from STUDENT where st_id = id;
                 @S2 y := select em_addr from EMAIL where em_id = x.st_em_id;
                 return y.em_addr;
             }
             txn setSt(id: int, name: string, email: string) {
                 @S4 x := select st_em_id from STUDENT where st_id = id;
                 @U1 update STUDENT set st_name = name where st_id = id;
                 @U2 update EMAIL set em_addr = email where em_id = x.st_em_id;
                 return 0;
             }",
        )
        .unwrap()
    }

    #[test]
    fn redirect_email_into_student_matches_fig9() {
        let p = email_program();
        let theta = ThetaMap::new(vec![("em_id".into(), "st_em_id".into())]);
        let moved = BTreeSet::from(["em_addr".to_owned()]);
        let (out, vcs) = apply_redirect(&p, "EMAIL", "STUDENT", &moved, &theta).unwrap();
        let text = print_program(&out);
        // S2 now selects the new field from STUDENT via st_em_id.
        assert!(text.contains("select st_em_addr from STUDENT"), "{text}");
        assert!(text.contains("st_em_id = x.st_em_id"), "{text}");
        // U2 updates STUDENT.
        assert!(text.contains("update STUDENT set st_em_addr = email"), "{text}");
        // The return expression reads the renamed field.
        assert!(text.contains("return y.st_em_addr"), "{text}");
        assert_eq!(vcs.len(), 1);
        assert_eq!(vcs[0].src_field, "em_addr");
        assert_eq!(vcs[0].dst_field, "st_em_addr");
        assert_eq!(vcs[0].alpha, Aggregator::Any);
    }

    #[test]
    fn redirect_fails_on_type_mismatched_theta() {
        let p = email_program();
        let theta = ThetaMap::new(vec![("em_id".into(), "st_name".into())]);
        let moved = BTreeSet::from(["em_addr".to_owned()]);
        assert!(apply_redirect(&p, "EMAIL", "STUDENT", &moved, &theta).is_none());
    }

    #[test]
    fn redirect_fails_when_source_has_inserts() {
        let p = parse(
            "schema A { id: int key, v: int }
             schema B { id: int key, a_id: int }
             txn w(k: int) { insert into A values (id = k, v = 0); return 0; }
             txn r(k: int) {
                 x := select a_id from B where id = k;
                 y := select v from A where id = x.a_id;
                 return y.v;
             }",
        )
        .unwrap();
        let theta = ThetaMap::new(vec![("id".into(), "a_id".into())]);
        let moved = BTreeSet::from(["v".to_owned()]);
        assert!(apply_redirect(&p, "A", "B", &moved, &theta).is_none());
    }

    #[test]
    fn logging_rewrites_counter_to_insert() {
        let p = parse(
            "schema COURSE { co_id: int key, co_st_cnt: int }
             txn reg(course: int) {
                 @S5 x := select co_st_cnt from COURSE where co_id = course;
                 @U4 update COURSE set co_st_cnt = x.co_st_cnt + 1 where co_id = course;
                 return 0;
             }",
        )
        .unwrap();
        let (out, vcs) = apply_logging(&p, "COURSE", "co_st_cnt").unwrap();
        let text = print_program(&out);
        assert!(
            text.contains("insert into COURSE_CO_ST_CNT_LOG"),
            "{text}"
        );
        assert!(text.contains("log_id = uuid()"), "{text}");
        assert!(text.contains("co_st_cnt_log = 1"), "{text}");
        // The RMW select was redirected to the log (it will be dead-code
        // eliminated later since x is now unused).
        assert!(text.contains("select co_st_cnt_log from COURSE_CO_ST_CNT_LOG"), "{text}");
        assert_eq!(vcs[0].alpha, Aggregator::Sum);
    }

    #[test]
    fn logging_keeps_reader_as_sum() {
        let p = parse(
            "schema C { id: int key, cnt: int }
             txn bump(k: int) {
                 x := select cnt from C where id = k;
                 update C set cnt = x.cnt + 1 where id = k;
                 return 0;
             }
             txn get(k: int) {
                 y := select cnt from C where id = k;
                 return y.cnt;
             }",
        )
        .unwrap();
        let (out, _) = apply_logging(&p, "C", "cnt").unwrap();
        let text = print_program(&out);
        assert!(text.contains("return sum(y.cnt_log)"), "{text}");
    }

    #[test]
    fn logging_rejects_blind_writes() {
        let p = parse(
            "schema C { id: int key, cnt: int }
             txn setit(k: int, n: int) {
                 update C set cnt = n where id = k;
                 return 0;
             }",
        )
        .unwrap();
        assert!(apply_logging(&p, "C", "cnt").is_none());
    }

    #[test]
    fn logging_rejects_non_integer_fields() {
        let p = parse(
            "schema C { id: int key, name: string }
             txn t(k: int, n: string) {
                 update C set name = n where id = k;
                 return 0;
             }",
        )
        .unwrap();
        assert!(apply_logging(&p, "C", "name").is_none());
    }

    #[test]
    fn increment_delta_shapes() {
        let x_f = Expr::field("x", "f");
        let (v, d) = increment_delta(&x_f.clone().add(Expr::int(3)), "f").unwrap();
        assert_eq!(v, "x");
        assert_eq!(d, Expr::int(3));
        let (_, d) = increment_delta(&Expr::int(2).add(x_f.clone()), "f").unwrap();
        assert_eq!(d, Expr::int(2));
        let (_, d) = increment_delta(&x_f.clone().sub(Expr::int(1)), "f").unwrap();
        assert_eq!(d, Expr::int(0).sub(Expr::int(1)));
        assert!(increment_delta(&Expr::int(5), "f").is_none());
        assert!(increment_delta(&x_f.clone(), "f").is_none());
    }

    #[test]
    fn fresh_field_names_avoid_collisions() {
        let s = Schema::new(
            "STUDENT",
            vec![
                FieldDecl::key("st_id", Ty::Int),
                FieldDecl::new("st_addr", Ty::Str),
            ],
        );
        assert_eq!(fresh_field_name(&s, "email"), "st_email");
        assert_eq!(fresh_field_name(&s, "addr"), "st_addr_2");
    }
}
