//! The random-refactoring baseline of Fig. 16: apply randomly chosen schema
//! refactorings (ignoring the anomaly oracle) and count the anomalies that
//! remain. Used to demonstrate that oracle guidance, not refactoring per
//! se, is what eliminates bugs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use atropos_detect::{detect_anomalies, ConsistencyLevel, DetectSession, DetectionEngine};
use atropos_dsl::Program;
use atropos_semantics::ThetaMap;

use crate::analysis::commands_of;
use crate::merge::try_merging;
use crate::rewrite::{apply_logging, apply_redirect};

/// Result of one random-refactoring round.
#[derive(Debug, Clone)]
pub struct RandomSearchOutcome {
    /// The (possibly mangled, always well-typed) refactored program.
    pub program: Program,
    /// Number of random refactorings that actually applied.
    pub applied: usize,
    /// Anomalous access pairs of the result under EC.
    pub anomalies: usize,
}

/// Applies up to `moves` randomly chosen refactorings (merge / redirect with
/// a random record correspondence / logging of a random integer field) and
/// reports the anomaly count of the result.
pub fn random_refactor(program: &Program, seed: u64, moves: usize) -> RandomSearchOutcome {
    let (current, applied) = random_moves(program, seed, moves);
    let anomalies = detect_anomalies(&current, ConsistencyLevel::EventualConsistency).len();
    RandomSearchOutcome {
        program: current,
        applied,
        anomalies,
    }
}

/// [`random_refactor`] with the anomaly count discharged through a shared
/// engine and session: every round is one session run, so rounds over the
/// same base program answer the transaction pairs their random moves left
/// untouched (usually most of them — random moves rarely apply) from warm
/// verdicts instead of re-solving. Outcome-identical to [`random_refactor`]
/// for every `(program, seed, moves)` triple.
pub fn random_refactor_with_session(
    program: &Program,
    seed: u64,
    moves: usize,
    engine: &DetectionEngine,
    session: &mut DetectSession,
) -> RandomSearchOutcome {
    let (current, applied) = random_moves(program, seed, moves);
    // Reset session liveness to the shared base program between rounds:
    // the previous round's mutated shapes are evicted, the base shapes —
    // the source of cross-round reuse — stay warm.
    session.sweep(program);
    session.begin_run();
    let (pairs, _) = engine.detect(&current, ConsistencyLevel::EventualConsistency, session);
    RandomSearchOutcome {
        program: current,
        applied,
        anomalies: pairs.len(),
    }
}

/// The deterministic random-move replay shared by both entry points.
fn random_moves(program: &Program, seed: u64, moves: usize) -> (Program, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = program.clone();
    let mut applied = 0;
    for _ in 0..moves {
        let choice = rng.gen_range(0..3);
        let next = match choice {
            0 => random_merge(&current, &mut rng),
            1 => random_redirect(&current, &mut rng),
            _ => random_logging(&current, &mut rng),
        };
        if let Some(p) = next {
            current = p;
            applied += 1;
        }
    }
    (current, applied)
}

fn random_merge(p: &Program, rng: &mut StdRng) -> Option<Program> {
    let labels: Vec<_> = p
        .transactions
        .iter()
        .flat_map(|t| {
            commands_of(t)
                .into_iter()
                .filter_map(|s| s.label().cloned())
        })
        .collect();
    if labels.len() < 2 {
        return None;
    }
    let l1 = labels.choose(rng)?.clone();
    let l2 = labels.choose(rng)?.clone();
    try_merging(p, &l1, &l2)
}

fn random_redirect(p: &Program, rng: &mut StdRng) -> Option<Program> {
    if p.schemas.len() < 2 {
        return None;
    }
    let src = p.schemas.choose(rng)?;
    let dst = p.schemas.choose(rng)?;
    if src.name == dst.name {
        return None;
    }
    // Random θ̂: map each source key to a random type-compatible dst field.
    let mut theta = Vec::new();
    for k in src.primary_key() {
        let kd = src.field(k).expect("pk exists");
        let candidates: Vec<_> = dst
            .fields
            .iter()
            .filter(|f| f.ty == kd.ty)
            .collect();
        let target = candidates.choose(rng)?;
        theta.push((k.to_owned(), target.name.clone()));
    }
    let value_fields: Vec<String> = src.value_fields().iter().map(|f| (*f).to_owned()).collect();
    if value_fields.is_empty() {
        return None;
    }
    let moved: std::collections::BTreeSet<String> = value_fields
        .iter()
        .filter(|_| rng.gen_bool(0.7))
        .cloned()
        .collect();
    if moved.is_empty() {
        return None;
    }
    apply_redirect(p, &src.name, &dst.name, &moved, &ThetaMap::new(theta)).map(|(p, _)| p)
}

fn random_logging(p: &Program, rng: &mut StdRng) -> Option<Program> {
    let schema = p.schemas.choose(rng)?;
    let fields: Vec<String> = schema
        .fields
        .iter()
        .filter(|f| !f.primary_key && f.ty == atropos_dsl::Ty::Int)
        .map(|f| f.name.clone())
        .collect();
    let field = fields.choose(rng)?;
    apply_logging(p, &schema.name, field).map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::{check_program, parse};

    const SRC: &str = "schema A { id: int key, v: int, w: int }
         schema B { id: int key, a_id: int, z: int }
         txn t1(k: int) {
             x := select v from A where id = k;
             update A set v = x.v + 1 where id = k;
             return 0;
         }
         txn t2(k: int) {
             y := select a_id, z from B where id = k;
             u := select w from A where id = y.a_id;
             return u.w + y.z;
         }";

    #[test]
    fn random_rounds_always_produce_well_typed_programs() {
        let p = parse(SRC).unwrap();
        for seed in 0..20 {
            let out = random_refactor(&p, seed, 5);
            check_program(&out.program).unwrap();
        }
    }

    /// A counter increment the logger rule fixes outright — small enough
    /// that random search stumbles onto the repair for many seeds.
    const COUNTER: &str = "schema C { id: int key, cnt: int }
         txn bump(k: int) {
             x := select cnt from C where id = k;
             update C set cnt = x.cnt + 1 where id = k;
             return 0;
         }";

    #[test]
    fn fixed_seed_runs_are_deterministic_and_reported_faithfully() {
        let p = parse(SRC).unwrap();
        let a = random_refactor(&p, 7, 6);
        let b = random_refactor(&p, 7, 6);
        assert_eq!(a.program, b.program, "same seed must replay identically");
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.anomalies, b.anomalies);
        // The reported anomaly count matches an independent recount.
        assert_eq!(
            a.anomalies,
            detect_anomalies(&a.program, ConsistencyLevel::EventualConsistency).len()
        );
    }

    #[test]
    fn pinned_seed_reaches_a_repaired_program_with_driver_invariants() {
        // Seed 72 applies one random logging refactoring that happens to be
        // the oracle-guided repair; the outcome must satisfy the same
        // invariants the deterministic driver guarantees.
        let p = parse(COUNTER).unwrap();
        let out = random_refactor(&p, 72, 4);
        assert!(out.applied > 0);
        assert_eq!(out.anomalies, 0, "seed 72 repairs the counter: {out:?}");
        check_program(&out.program).unwrap();
        assert!(out.program.transaction("bump").is_some(), "API preserved");

        let report = crate::repair::repair_program(
            &p,
            ConsistencyLevel::EventualConsistency,
        );
        assert!(report.remaining.is_empty());
        // Both eliminated every initial anomaly; the lucky random seed found
        // the very same logging table the driver introduces.
        assert_eq!(
            out.anomalies,
            report.remaining.len(),
            "random (seed 72) and deterministic outcomes diverge"
        );
        assert!(out.program.schema("C_CNT_LOG").is_some());
        assert!(report.repaired.schema("C_CNT_LOG").is_some());
    }

    /// Session-shared rounds must report exactly what the plain entry
    /// point reports, while the shared cache turns repeated base shapes
    /// into warm cross-run verdicts.
    #[test]
    fn session_shared_rounds_match_plain_and_reuse_verdicts() {
        let p = parse(SRC).unwrap();
        let engine = DetectionEngine::new(2);
        let mut session = DetectSession::new();
        for seed in 0..10 {
            let plain = random_refactor(&p, seed, 5);
            let shared = random_refactor_with_session(&p, seed, 5, &engine, &mut session);
            assert_eq!(shared.program, plain.program, "seed {seed}");
            assert_eq!(shared.applied, plain.applied, "seed {seed}");
            assert_eq!(shared.anomalies, plain.anomalies, "seed {seed}");
        }
        let stats = session.cache_stats();
        assert!(
            stats.cross_run_hits > 0,
            "ten rounds over one base program must share verdicts: {stats:?}"
        );
    }

    #[test]
    fn random_refactoring_rarely_eliminates_all_anomalies() {
        let p = parse(SRC).unwrap();
        let base = detect_anomalies(&p, ConsistencyLevel::EventualConsistency).len();
        assert!(base > 0);
        let mut no_better = 0;
        for seed in 0..20 {
            let out = random_refactor(&p, seed, 5);
            if out.anomalies >= base {
                no_better += 1;
            }
        }
        // The vast majority of random rounds do not improve the program.
        assert!(no_better >= 10, "only {no_better}/20 rounds failed to improve");
    }
}
