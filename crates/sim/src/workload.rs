//! Abstract transaction workloads: what the simulator executes.
//!
//! A workload is a weighted mix of [`TxnProfile`]s; each profile is a
//! sequence of [`OpProfile`]s describing which table and record an operation
//! touches, how many fields it moves, and whether it reads, writes, or
//! inserts a fresh record. The `atropos-workloads` crate derives these
//! profiles mechanically from DSL programs (original and refactored), so the
//! simulator never needs to interpret SQL.

use rand::rngs::StdRng;
use rand::Rng;

/// What an operation does to its record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read one record (or a keyed range of a log table).
    Read,
    /// Update fields of one existing record.
    Write,
    /// Insert a fresh record (uuid-keyed log append).
    InsertFresh,
}

/// How the record key of an operation is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over `0..n`.
    Uniform(u64),
    /// Hot-spot: with probability `hot_prob` pick uniformly from the first
    /// `hot_fraction` of the key space, otherwise from the rest.
    HotSpot {
        /// Key-space size.
        n: u64,
        /// Fraction of keys that are hot (e.g. 0.2).
        hot_fraction: f64,
        /// Probability an access goes to the hot set (e.g. 0.8).
        hot_prob: f64,
    },
    /// Always the same key (a global row — the classic contention point).
    Fixed(u64),
    /// Reuse the key drawn for a previous op of the same transaction.
    SameAs(usize),
}

impl KeyDist {
    fn sample(&self, rng: &mut StdRng, prior: &[u64]) -> u64 {
        match *self {
            KeyDist::Uniform(n) => rng.gen_range(0..n.max(1)),
            KeyDist::HotSpot {
                n,
                hot_fraction,
                hot_prob,
            } => {
                let n = n.max(1);
                let hot = ((n as f64 * hot_fraction).ceil() as u64).clamp(1, n);
                if rng.gen_bool(hot_prob.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot)
                } else if hot < n {
                    rng.gen_range(hot..n)
                } else {
                    rng.gen_range(0..n)
                }
            }
            KeyDist::Fixed(k) => k,
            KeyDist::SameAs(i) => prior.get(i).copied().unwrap_or(0),
        }
    }
}

/// One abstract database operation.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Table identifier (interned by the workload builder).
    pub table: String,
    /// Read / write / fresh insert.
    pub kind: OpKind,
    /// Key distribution.
    pub key: KeyDist,
    /// Number of fields moved (scales CPU cost).
    pub fields: u32,
    /// Extra read amplification (log-table aggregation scans read more than
    /// one physical record; 1.0 for plain row reads).
    pub scan_factor: f64,
}

/// One transaction type in the mix.
#[derive(Debug, Clone)]
pub struct TxnProfile {
    /// Transaction name (for reports).
    pub name: String,
    /// Relative weight in the mix.
    pub weight: f64,
    /// Run under serializable coordination (the SC / AT-SC configurations).
    pub serializable: bool,
    /// The operations, in program order.
    pub ops: Vec<OpProfile>,
}

/// A weighted mix of transaction profiles.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The profiles.
    pub txns: Vec<TxnProfile>,
}

/// A concrete transaction instance: ops with sampled keys.
#[derive(Debug, Clone)]
pub struct ConcreteTxn {
    /// Index of the profile in the workload.
    pub profile: usize,
    /// Sampled keys, parallel to the profile's ops.
    pub keys: Vec<u64>,
}

impl Workload {
    /// Builds a workload.
    ///
    /// # Panics
    ///
    /// Panics if `txns` is empty or all weights are non-positive.
    pub fn new(txns: Vec<TxnProfile>) -> Workload {
        assert!(!txns.is_empty(), "workload needs at least one profile");
        assert!(
            txns.iter().map(|t| t.weight).sum::<f64>() > 0.0,
            "total weight must be positive"
        );
        Workload { txns }
    }

    /// Marks the named transactions serializable (AT-SC mode); all others
    /// stay weak.
    pub fn with_serializable<S: AsRef<str>>(mut self, names: &[S]) -> Workload {
        for t in self.txns.iter_mut() {
            t.serializable = names.iter().any(|n| n.as_ref() == t.name);
        }
        self
    }

    /// Marks every transaction serializable (the SC baseline).
    pub fn all_serializable(mut self) -> Workload {
        for t in self.txns.iter_mut() {
            t.serializable = true;
        }
        self
    }

    /// Samples the next transaction instance.
    pub fn sample(&self, rng: &mut StdRng) -> ConcreteTxn {
        let total: f64 = self.txns.iter().map(|t| t.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut profile = 0;
        for (i, t) in self.txns.iter().enumerate() {
            if pick < t.weight {
                profile = i;
                break;
            }
            pick -= t.weight;
        }
        let t = &self.txns[profile];
        let mut keys: Vec<u64> = Vec::with_capacity(t.ops.len());
        for op in &t.ops {
            let k = op.key.sample(rng, &keys);
            keys.push(k);
        }
        ConcreteTxn { profile, keys }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn op(kind: OpKind, key: KeyDist) -> OpProfile {
        OpProfile {
            table: "T".into(),
            kind,
            key,
            fields: 1,
            scan_factor: 1.0,
        }
    }

    #[test]
    fn same_as_reuses_prior_key() {
        let w = Workload::new(vec![TxnProfile {
            name: "t".into(),
            weight: 1.0,
            serializable: false,
            ops: vec![
                op(OpKind::Read, KeyDist::Uniform(1000)),
                op(OpKind::Write, KeyDist::SameAs(0)),
            ],
        }]);
        let mut r = rng();
        for _ in 0..50 {
            let c = w.sample(&mut r);
            assert_eq!(c.keys[0], c.keys[1]);
        }
    }

    #[test]
    fn hotspot_prefers_hot_keys() {
        let d = KeyDist::HotSpot {
            n: 1000,
            hot_fraction: 0.1,
            hot_prob: 0.9,
        };
        let mut r = rng();
        let hits = (0..2000)
            .filter(|_| d.sample(&mut r, &[]) < 100)
            .count();
        assert!(hits > 1500, "only {hits}/2000 hot hits");
    }

    #[test]
    fn mix_respects_weights() {
        let w = Workload::new(vec![
            TxnProfile {
                name: "a".into(),
                weight: 9.0,
                serializable: false,
                ops: vec![op(OpKind::Read, KeyDist::Fixed(0))],
            },
            TxnProfile {
                name: "b".into(),
                weight: 1.0,
                serializable: false,
                ops: vec![op(OpKind::Read, KeyDist::Fixed(0))],
            },
        ]);
        let mut r = rng();
        let a_count = (0..5000).filter(|_| w.sample(&mut r).profile == 0).count();
        assert!(
            (4000..=4900).contains(&a_count),
            "a drawn {a_count}/5000 times"
        );
    }

    #[test]
    fn serializable_marking() {
        let w = Workload::new(vec![
            TxnProfile {
                name: "a".into(),
                weight: 1.0,
                serializable: false,
                ops: vec![],
            },
            TxnProfile {
                name: "b".into(),
                weight: 1.0,
                serializable: false,
                ops: vec![],
            },
        ]);
        let w = w.with_serializable(&["b"]);
        assert!(!w.txns[0].serializable && w.txns[1].serializable);
        let w = w.all_serializable();
        assert!(w.txns[0].serializable && w.txns[1].serializable);
    }
}
