//! Cluster topologies: replica counts and pairwise round-trip times.
//!
//! The three presets mirror the paper's §7.2/App. A.1 deployments: three
//! MongoDB M10 nodes in one data centre (VA), spread across the US
//! (N. Virginia / Ohio / Oregon), and spread globally (N. Virginia /
//! London / Tokyo).

/// A replicated cluster: `rtt_ms[i][j]` is the round-trip time between
/// replicas `i` and `j` in milliseconds.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Pairwise RTTs; the diagonal is 0.
    pub rtt_ms: Vec<Vec<f64>>,
}

impl ClusterConfig {
    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.rtt_ms.len()
    }

    /// One-way delay from `i` to `j`.
    pub fn one_way_ms(&self, i: usize, j: usize) -> f64 {
        self.rtt_ms[i][j] / 2.0
    }

    /// Round-trip time needed for replica `i` to reach a majority quorum:
    /// with 2f+1 replicas, the f-th fastest peer acknowledgment.
    pub fn quorum_rtt_ms(&self, i: usize) -> f64 {
        let mut peers: Vec<f64> = (0..self.replicas())
            .filter(|&j| j != i)
            .map(|j| self.rtt_ms[i][j])
            .collect();
        peers.sort_by(|a, b| a.partial_cmp(b).expect("finite RTTs"));
        let needed = self.replicas() / 2; // additional acks beyond self
        if needed == 0 {
            0.0
        } else {
            peers[needed - 1]
        }
    }

    /// Builds a symmetric config from the upper triangle.
    ///
    /// # Panics
    ///
    /// Panics if `rtts` is not an upper-triangle of size n·(n−1)/2.
    pub fn symmetric(name: &str, n: usize, rtts: &[f64]) -> ClusterConfig {
        assert_eq!(rtts.len(), n * (n - 1) / 2, "upper triangle size");
        let mut m = vec![vec![0.0; n]; n];
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                m[i][j] = rtts[k];
                m[j][i] = rtts[k];
                k += 1;
            }
        }
        ClusterConfig {
            name: name.to_owned(),
            rtt_ms: m,
        }
    }

    /// Three nodes in one data centre (N. Virginia): sub-millisecond RTTs.
    pub fn virginia() -> ClusterConfig {
        ClusterConfig::symmetric("VA", 3, &[0.8, 0.8, 0.8])
    }

    /// Three nodes across the US (N. Virginia, Ohio, Oregon).
    pub fn us() -> ClusterConfig {
        ClusterConfig::symmetric("US", 3, &[12.0, 62.0, 52.0])
    }

    /// Three nodes across the world (N. Virginia, London, Tokyo).
    pub fn global() -> ClusterConfig {
        ClusterConfig::symmetric("Global", 3, &[76.0, 160.0, 230.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_three_node_symmetric() {
        for c in [ClusterConfig::virginia(), ClusterConfig::us(), ClusterConfig::global()] {
            assert_eq!(c.replicas(), 3);
            for i in 0..3 {
                assert_eq!(c.rtt_ms[i][i], 0.0);
                for j in 0..3 {
                    assert_eq!(c.rtt_ms[i][j], c.rtt_ms[j][i]);
                }
            }
        }
    }

    #[test]
    fn quorum_rtt_is_fastest_peer_for_three_nodes() {
        let c = ClusterConfig::us();
        // From node 0 (Virginia): peers at 12 (Ohio) and 62 (Oregon);
        // majority needs one ack → 12ms.
        assert_eq!(c.quorum_rtt_ms(0), 12.0);
        assert_eq!(c.quorum_rtt_ms(2), 52.0);
    }

    #[test]
    fn one_way_is_half_rtt() {
        let c = ClusterConfig::us();
        assert_eq!(c.one_way_ms(0, 1), 6.0);
    }

    #[test]
    fn ordering_of_cluster_severity() {
        let va = ClusterConfig::virginia().quorum_rtt_ms(0);
        let us = ClusterConfig::us().quorum_rtt_ms(0);
        let gl = ClusterConfig::global().quorum_rtt_ms(0);
        assert!(va < us && us < gl);
    }
}
