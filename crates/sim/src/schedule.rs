//! Scheduled execution: replaying a concrete witness schedule on the
//! replicated store.
//!
//! The closed-loop mode ([`crate::run_simulation`]) drives random
//! workloads for throughput/latency figures; this module is the *other*
//! execution mode: a [`ConcreteSchedule`] — decoded from a detector
//! witness (a SAT model's arbitration order, replica placement, and
//! read-from edges) — is run **deterministically** on a simulated cluster
//! of replicas, and the anomaly's observable predicate is checked against
//! what each read actually observed.
//!
//! The store model is deliberately the weak half of the simulator's
//! semantics: writes apply at their session's home replica, replication is
//! explicit ([`ScheduleEvent::Replicate`]), and a read observes exactly
//! the writes applied at its serving replica when it is invoked. The
//! executor enforces the invariants every real weak store grants — a
//! write replicates only after it is invoked (causality), sessions invoke
//! their operations in program order, and a read sees its own session's
//! prior writes (read-your-writes) — so a schedule that "manifests" an
//! anomaly did so under honest store semantics, not by fiat.

use std::collections::BTreeSet;

/// One record a scheduled operation touches: table, concrete record id,
/// and the fields read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordAccess {
    /// Table (schema) name.
    pub table: String,
    /// Concrete record identifier within the table.
    pub record: u64,
    /// Fields accessed.
    pub fields: BTreeSet<String>,
}

impl RecordAccess {
    /// Do two accesses touch the same record with at least one shared
    /// field?
    pub fn overlaps(&self, other: &RecordAccess) -> bool {
        self.table == other.table
            && self.record == other.record
            && self.fields.intersection(&other.fields).next().is_some()
    }
}

/// One operation of the schedule: a command instance pinned to a session
/// and a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Session (transaction instance) index, `0..sessions`.
    pub session: usize,
    /// Transaction name the command belongs to.
    pub txn: String,
    /// Command label within the transaction.
    pub label: String,
    /// True for writes (update/insert/delete events), false for reads.
    pub is_write: bool,
    /// Replica the operation executes at: the session's home replica for
    /// writes, the serving replica for reads (weak reads may be served by
    /// any replica — that freedom is what realizes non-monotonic reads).
    pub replica: usize,
    /// Records the operation touches.
    pub accesses: Vec<RecordAccess>,
}

/// One step of the schedule's total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// Invoke operation `ops[i]` at its replica: a write applies there, a
    /// read observes the writes applied there.
    Invoke(usize),
    /// Asynchronously apply the effects of (already invoked) write op
    /// `op` at replica `to`.
    Replicate {
        /// Index of the write operation being replicated.
        op: usize,
        /// Destination replica.
        to: usize,
    },
}

/// One clause of the anomaly's observable predicate: after the run, read
/// op `read` must (or must not) have observed write op `write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisibilityCheck {
    /// Index of the read operation.
    pub read: usize,
    /// Index of the write operation.
    pub write: usize,
    /// Required outcome: `true` = the read saw the write.
    pub expect_seen: bool,
}

/// A decoded witness: a total order of per-instance commands with session
/// and replica placement, plus the visibility predicate that makes the
/// execution anomalous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteSchedule {
    /// Anomaly kind this schedule witnesses (display string, e.g.
    /// `"lost-update"`).
    pub anomaly: String,
    /// Number of sessions (transaction instances).
    pub sessions: usize,
    /// Number of replicas in the simulated cluster.
    pub replicas: usize,
    /// The operations, grouped by session in program order.
    pub ops: Vec<ScheduledOp>,
    /// The schedule itself: invocations and replication steps in
    /// arbitration order.
    pub events: Vec<ScheduleEvent>,
    /// The anomaly's observable predicate over the reads.
    pub checks: Vec<VisibilityCheck>,
}

/// What a scheduled run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// True when the run was well-formed (no store-invariant violations)
    /// and every [`VisibilityCheck`] held — i.e., the anomaly's observable
    /// predicate manifested on the cluster.
    pub manifested: bool,
    /// Checks that held.
    pub checks_passed: usize,
    /// Total checks.
    pub checks_total: usize,
    /// Store-invariant violations (empty for a well-formed schedule).
    pub violations: Vec<String>,
}

/// Runs a [`ConcreteSchedule`] deterministically on a simulated replica
/// set and evaluates its anomaly predicate.
///
/// Each replica holds the set of write operations applied to it; an
/// [`ScheduleEvent::Invoke`] of a write applies it at its home replica, a
/// [`ScheduleEvent::Replicate`] applies an already-invoked write at
/// another replica, and an invoke of a read records the applied writes
/// overlapping its accesses at its serving replica. The executor enforces
/// weak-store invariants (causal replication, per-session program order,
/// read-your-writes) and reports any breach as a violation; the outcome
/// `manifested` only when the run is violation-free **and** every
/// [`VisibilityCheck`] holds.
pub fn run_schedule(schedule: &ConcreteSchedule) -> ScheduleOutcome {
    let mut violations: Vec<String> = Vec::new();
    let n = schedule.ops.len();
    for (i, op) in schedule.ops.iter().enumerate() {
        if op.session >= schedule.sessions {
            violations.push(format!("op {i}: session {} out of range", op.session));
        }
        if op.replica >= schedule.replicas {
            violations.push(format!("op {i}: replica {} out of range", op.replica));
        }
    }

    // applied[r]: indices of write ops whose effects replica r holds.
    let mut applied: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); schedule.replicas];
    let mut invoked = vec![false; n];
    // observed[i]: for read op i, the write ops it saw at invocation.
    let mut observed: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    // Last invoked op index per session, for program-order enforcement.
    let mut last_of_session: Vec<Option<usize>> = vec![None; schedule.sessions];

    for (step, ev) in schedule.events.iter().enumerate() {
        match *ev {
            ScheduleEvent::Invoke(i) => {
                let Some(op) = schedule.ops.get(i) else {
                    violations.push(format!("step {step}: invoke of unknown op {i}"));
                    continue;
                };
                if std::mem::replace(&mut invoked[i], true) {
                    violations.push(format!("step {step}: op {i} invoked twice"));
                    continue;
                }
                if op.session < schedule.sessions {
                    // Sessions issue their commands in program order; the
                    // ops vector lists each session's commands in that
                    // order, so invocations per session must be increasing.
                    if let Some(prev) = last_of_session[op.session] {
                        if prev > i {
                            violations.push(format!(
                                "step {step}: session {} invoked op {i} after op {prev}",
                                op.session
                            ));
                        }
                    }
                    last_of_session[op.session] = Some(i);
                }
                if op.replica >= schedule.replicas {
                    continue;
                }
                if op.is_write {
                    applied[op.replica].insert(i);
                } else {
                    // Read-your-writes: the serving replica must already
                    // hold every prior own-session write overlapping this
                    // read (the decoder replicates them; a schedule that
                    // forgot is not an honest weak-store execution).
                    for (j, w) in schedule.ops.iter().enumerate() {
                        let own_prior = j < i && w.session == op.session && w.is_write;
                        if own_prior
                            && invoked[j]
                            && overlapping(w, op)
                            && !applied[op.replica].contains(&j)
                        {
                            violations.push(format!(
                                "step {step}: read op {i} misses own session's write op {j}"
                            ));
                        }
                    }
                    let seen: BTreeSet<usize> = applied[op.replica]
                        .iter()
                        .copied()
                        .filter(|&j| overlapping(&schedule.ops[j], op))
                        .collect();
                    observed[i] = seen;
                }
            }
            ScheduleEvent::Replicate { op, to } => {
                let Some(w) = schedule.ops.get(op) else {
                    violations.push(format!("step {step}: replication of unknown op {op}"));
                    continue;
                };
                if !w.is_write {
                    violations.push(format!("step {step}: replication of read op {op}"));
                    continue;
                }
                if !invoked[op] {
                    // Causality: effects travel only after they exist.
                    violations.push(format!(
                        "step {step}: op {op} replicated before it was invoked"
                    ));
                    continue;
                }
                if to >= schedule.replicas {
                    violations.push(format!("step {step}: replication to unknown replica {to}"));
                    continue;
                }
                applied[to].insert(op);
            }
        }
    }
    for (i, inv) in invoked.iter().enumerate() {
        if !inv {
            violations.push(format!("op {i} was never invoked"));
        }
    }

    let mut checks_passed = 0usize;
    for c in &schedule.checks {
        let ok = match (schedule.ops.get(c.read), schedule.ops.get(c.write)) {
            (Some(_), Some(_)) => observed[c.read].contains(&c.write) == c.expect_seen,
            _ => {
                violations.push(format!(
                    "check references unknown ops ({}, {})",
                    c.read, c.write
                ));
                false
            }
        };
        checks_passed += usize::from(ok);
    }
    ScheduleOutcome {
        manifested: violations.is_empty() && checks_passed == schedule.checks.len(),
        checks_passed,
        checks_total: schedule.checks.len(),
        violations,
    }
}

fn overlapping(w: &ScheduledOp, r: &ScheduledOp) -> bool {
    w.accesses
        .iter()
        .any(|wa| r.accesses.iter().any(|ra| wa.overlaps(ra)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(table: &str, record: u64, field: &str) -> RecordAccess {
        RecordAccess {
            table: table.into(),
            record,
            fields: BTreeSet::from([field.to_owned()]),
        }
    }

    fn op(session: usize, label: &str, is_write: bool, replica: usize) -> ScheduledOp {
        ScheduledOp {
            session,
            txn: format!("t{session}"),
            label: label.into(),
            is_write,
            replica,
            accesses: vec![access("T", 7, "v")],
        }
    }

    /// Writer session 0 (home replica 0) writes; reader session 1 reads
    /// twice, first at a replica the write reached, then at one it did
    /// not: the textbook non-monotonic read.
    fn non_monotonic() -> ConcreteSchedule {
        ConcreteSchedule {
            anomaly: "non-monotonic-read".into(),
            sessions: 2,
            replicas: 4,
            ops: vec![
                op(0, "W", true, 0),  // op 0
                op(1, "R1", false, 2), // op 1
                op(1, "R2", false, 3), // op 2
            ],
            events: vec![
                ScheduleEvent::Invoke(0),
                ScheduleEvent::Replicate { op: 0, to: 2 },
                ScheduleEvent::Invoke(1),
                ScheduleEvent::Invoke(2),
            ],
            checks: vec![
                VisibilityCheck { read: 1, write: 0, expect_seen: true },
                VisibilityCheck { read: 2, write: 0, expect_seen: false },
            ],
        }
    }

    #[test]
    fn non_monotonic_read_manifests() {
        let out = run_schedule(&non_monotonic());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!((out.checks_passed, out.checks_total), (2, 2));
        assert!(out.manifested);
    }

    #[test]
    fn extra_replication_suppresses_the_anomaly() {
        let mut s = non_monotonic();
        // Replicating the write to R2's serving replica repairs the
        // monotonicity violation — the predicate no longer holds.
        s.events.insert(3, ScheduleEvent::Replicate { op: 0, to: 3 });
        let out = run_schedule(&s);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!((out.checks_passed, out.checks_total), (1, 2));
        assert!(!out.manifested);
    }

    #[test]
    fn replication_before_invocation_is_a_violation() {
        let mut s = non_monotonic();
        s.events.swap(0, 1); // replicate W before invoking it
        let out = run_schedule(&s);
        assert!(!out.manifested);
        assert!(
            out.violations.iter().any(|v| v.contains("before it was invoked")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn sessions_invoke_in_program_order() {
        let mut s = non_monotonic();
        // R2 before R1 breaks session 1's program order.
        s.events.swap(2, 3);
        let out = run_schedule(&s);
        assert!(!out.manifested);
        assert!(
            out.violations.iter().any(|v| v.contains("after op")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn read_your_writes_is_enforced() {
        let s = ConcreteSchedule {
            anomaly: "lost-update".into(),
            sessions: 1,
            replicas: 2,
            ops: vec![op(0, "W", true, 0), op(0, "R", false, 1)],
            // W applies at replica 0, R reads replica 1, and nothing
            // replicated W there: the session misses its own write.
            events: vec![ScheduleEvent::Invoke(0), ScheduleEvent::Invoke(1)],
            checks: vec![],
        };
        let out = run_schedule(&s);
        assert!(!out.manifested);
        assert!(
            out.violations.iter().any(|v| v.contains("own session")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn uninvoked_ops_are_reported() {
        let mut s = non_monotonic();
        s.events.pop();
        let out = run_schedule(&s);
        assert!(!out.manifested);
        assert!(
            out.violations.iter().any(|v| v.contains("never invoked")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let s = non_monotonic();
        assert_eq!(
            format!("{:?}", run_schedule(&s)),
            format!("{:?}", run_schedule(&s))
        );
    }
}
