//! # atropos-sim
//!
//! A discrete-event simulator of a geo-replicated document store, standing
//! in for the paper's three-node MongoDB clusters (§7.2). It reproduces the
//! *relative* performance behaviour the evaluation depends on:
//!
//! * weak (eventually consistent) transactions execute locally and
//!   replicate asynchronously — they scale with client count until replica
//!   CPUs saturate;
//! * serializable transactions acquire record locks and pay majority-quorum
//!   round trips — their latency is dominated by the cluster's RTTs and
//!   their throughput by lock queueing on hot records.
//!
//! See `DESIGN.md` for the substitution argument (simulator vs. the paper's
//! AWS testbed).
//!
//! The simulator has two execution modes:
//!
//! * **closed-loop** ([`run_simulation`]) — the throughput/latency mode:
//!   random workload transactions driven by a client population until the
//!   configured duration elapses;
//! * **scheduled** ([`run_schedule`]) — the witness-replay mode: a
//!   [`ConcreteSchedule`] decoded from a detector SAT witness is executed
//!   deterministically (explicit invocations and replication steps, no
//!   randomness, no clock) and the anomaly's observable predicate is
//!   checked against what each read actually saw.
//!
//! # Examples
//!
//! ```
//! use atropos_sim::*;
//!
//! let workload = Workload::new(vec![TxnProfile {
//!     name: "ping".into(),
//!     weight: 1.0,
//!     serializable: true,
//!     ops: vec![OpProfile {
//!         table: "T".into(), kind: OpKind::Write,
//!         key: KeyDist::Uniform(64), fields: 1, scan_factor: 1.0,
//!     }],
//! }]);
//! let mut config = SimConfig::new(ClusterConfig::global(), 4);
//! config.duration_ms = 1_000.0;
//! let stats = run_simulation(&workload, &config);
//! // Global-cluster coordination costs well over 100 ms per transaction.
//! assert!(stats.avg_latency_ms > 100.0);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod workload;

pub use cluster::ClusterConfig;
pub use schedule::{
    run_schedule, ConcreteSchedule, RecordAccess, ScheduleEvent, ScheduleOutcome, ScheduledOp,
    VisibilityCheck,
};
pub use sim::{run_simulation, CostModel, SimConfig};
pub use stats::RunStats;
pub use workload::{ConcreteTxn, KeyDist, OpKind, OpProfile, TxnProfile, Workload};
