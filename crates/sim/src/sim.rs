//! The discrete-event simulation: closed-loop clients against a replicated
//! document store, under weak (EC) or coordinated (SC) execution.
//!
//! Model (documented as substitutions in `DESIGN.md`):
//!
//! * each replica is a FIFO CPU server; an operation occupies it for
//!   `base + per_field · fields` milliseconds (× `scan_factor` for
//!   log-aggregation reads);
//! * **weak transactions** execute all ops at the client's local replica and
//!   commit locally; their writes are then applied asynchronously at the
//!   other replicas (after a one-way network delay), consuming CPU there;
//! * **serializable transactions** first acquire FIFO locks on every
//!   accessed record (in canonical order, so no deadlocks), execute their
//!   ops, then pay two majority-quorum round trips (prepare + commit)
//!   before releasing the locks — the coordination the paper attributes to
//!   MongoDB's strongest settings;
//! * clients are closed-loop: each completes one transaction before
//!   starting the next, mirroring the paper's client processes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cluster::ClusterConfig;
use crate::stats::RunStats;
use crate::workload::{ConcreteTxn, OpKind, Workload};

/// Cost model for replica CPU work.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Base CPU milliseconds per operation.
    pub base_ms: f64,
    /// Additional milliseconds per field moved.
    pub per_field_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_ms: 0.35,
            per_field_ms: 0.03,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster topology.
    pub cluster: ClusterConfig,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Simulated duration in milliseconds (the paper runs 90 s).
    pub duration_ms: f64,
    /// Fraction of the run treated as warm-up and excluded from stats.
    pub warmup_fraction: f64,
    /// CPU cost model.
    pub cost: CostModel,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// A config with the defaults used across the experiments.
    pub fn new(cluster: ClusterConfig, clients: usize) -> SimConfig {
        SimConfig {
            cluster,
            clients,
            duration_ms: 90_000.0,
            warmup_fraction: 0.1,
            cost: CostModel::default(),
            seed: 0x0A71_2005,
        }
    }
}

/// A lock identity: the `(table, key)` pair verbatim. An earlier version
/// folded the pair into one word as `table_id · M ⊕ key`, which can map two
/// distinct records onto one lock — false contention at best, and false
/// mutual exclusion that could mask a replayed anomaly under SC at worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct LockKey(u64, u64);

fn lock_key(table_id: u64, key: u64) -> LockKey {
    LockKey(table_id, key)
}

#[derive(Debug, Default)]
struct Lock {
    held_by: Option<usize>,
    queue: VecDeque<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Acquiring lock number `n` of the sorted lock list.
    Locking(usize),
    /// Executing op number `n`.
    Executing(usize),
    /// Waiting for the coordination (quorum) delay.
    Coordinating,
}

#[derive(Debug)]
struct ClientState {
    replica: usize,
    txn: ConcreteTxn,
    locks: Vec<LockKey>,
    phase: Phase,
    start: f64,
}

/// A time-ordered future event: wake client `1` at time `0` (sequence `2`
/// breaks ties deterministically).
#[derive(Debug, PartialEq)]
struct Ev(f64, usize, u64);

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("finite times")
            .then(self.2.cmp(&other.2))
    }
}

/// Runs the simulation and returns aggregate statistics.
///
/// # Examples
///
/// ```
/// use atropos_sim::{run_simulation, ClusterConfig, SimConfig, Workload,
///                   TxnProfile, OpProfile, OpKind, KeyDist};
///
/// let w = Workload::new(vec![TxnProfile {
///     name: "read".into(),
///     weight: 1.0,
///     serializable: false,
///     ops: vec![OpProfile {
///         table: "T".into(), kind: OpKind::Read,
///         key: KeyDist::Uniform(100), fields: 2, scan_factor: 1.0,
///     }],
/// }]);
/// let mut cfg = SimConfig::new(ClusterConfig::us(), 8);
/// cfg.duration_ms = 2_000.0;
/// let stats = run_simulation(&w, &cfg);
/// assert!(stats.throughput_tps > 0.0);
/// ```
pub fn run_simulation(workload: &Workload, config: &SimConfig) -> RunStats {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let replicas = config.cluster.replicas();
    let mut busy_until = vec![0.0f64; replicas];
    let mut locks: HashMap<LockKey, Lock> = HashMap::new();
    let mut table_ids: HashMap<String, u64> = HashMap::new();

    let mut queue: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |q: &mut BinaryHeap<Reverse<Ev>>, t: f64, c: usize, seq: &mut u64| {
        q.push(Reverse(Ev(t, c, *seq)));
        *seq += 1;
    };

    let mut clients: Vec<ClientState> = (0..config.clients)
        .map(|i| ClientState {
            replica: i % replicas,
            txn: ConcreteTxn {
                profile: 0,
                keys: vec![],
            },
            locks: vec![],
            phase: Phase::Executing(0),
            start: 0.0,
        })
        .collect();

    // Start each transaction fresh for client `c` at time `t`.
    let new_txn = |clients: &mut Vec<ClientState>,
                   c: usize,
                   t: f64,
                   rng: &mut StdRng,
                   ids: &mut HashMap<String, u64>|
     -> Phase {
        let txn = workload.sample(rng);
        let profile = &workload.txns[txn.profile];
        let mut lk: Vec<LockKey> = if profile.serializable {
            profile
                .ops
                .iter()
                .zip(&txn.keys)
                .filter(|(op, _)| op.kind != OpKind::InsertFresh)
                .map(|(op, &k)| {
                    let tid = match ids.get(&op.table) {
                        Some(&t) => t,
                        None => {
                            let t = ids.len() as u64;
                            ids.insert(op.table.clone(), t);
                            t
                        }
                    };
                    lock_key(tid, k)
                })
                .collect()
        } else {
            vec![]
        };
        lk.sort();
        lk.dedup();
        clients[c].txn = txn;
        clients[c].locks = lk;
        clients[c].start = t;
        if clients[c].locks.is_empty() {
            Phase::Executing(0)
        } else {
            Phase::Locking(0)
        }
    };

    let mut committed: u64 = 0;
    let mut latencies: Vec<f64> = Vec::new();
    let warmup = config.duration_ms * config.warmup_fraction;

    // Kick off all clients at time 0 (staggered a hair for determinism).
    for c in 0..config.clients {
        clients[c].phase = new_txn(&mut clients, c, 0.0, &mut rng, &mut table_ids);
        push(&mut queue, c as f64 * 1e-6, c, &mut seq);
    }

    while let Some(Reverse(Ev(now, c, _))) = queue.pop() {
        if now > config.duration_ms {
            continue;
        }
        let phase = clients[c].phase;
        match phase {
            Phase::Locking(n) => {
                if n >= clients[c].locks.len() {
                    clients[c].phase = Phase::Executing(0);
                    push(&mut queue, now, c, &mut seq);
                    continue;
                }
                let key = clients[c].locks[n];
                let lock = locks.entry(key).or_default();
                match lock.held_by {
                    None => {
                        lock.held_by = Some(c);
                        clients[c].phase = Phase::Locking(n + 1);
                        push(&mut queue, now, c, &mut seq);
                    }
                    Some(_) => {
                        // Park; we are woken when the lock is granted.
                        lock.queue.push_back(c);
                    }
                }
            }
            Phase::Executing(n) => {
                let profile = &workload.txns[clients[c].txn.profile];
                if n >= profile.ops.len() {
                    // Ops done: weak commits immediately, serializable pays
                    // the coordination round trips.
                    if profile.serializable {
                        let delay = 2.0 * config.cluster.quorum_rtt_ms(clients[c].replica);
                        clients[c].phase = Phase::Coordinating;
                        push(&mut queue, now + delay, c, &mut seq);
                    } else {
                        // Async replication of writes to the other replicas.
                        let r = clients[c].replica;
                        for op in profile
                            .ops
                            .iter()
                            .filter(|o| o.kind != OpKind::Read)
                        {
                            let cost = (config.cost.base_ms
                                + config.cost.per_field_ms * op.fields as f64)
                                * 0.5; // applying is cheaper than executing
                            for other in 0..replicas {
                                if other != r {
                                    let arrive = now + config.cluster.one_way_ms(r, other);
                                    busy_until[other] =
                                        busy_until[other].max(arrive) + cost;
                                }
                            }
                        }
                        finish_txn(
                            &mut clients,
                            c,
                            now,
                            warmup,
                            &mut committed,
                            &mut latencies,
                        );
                        clients[c].phase =
                            new_txn(&mut clients, c, now, &mut rng, &mut table_ids);
                        push(&mut queue, now, c, &mut seq);
                    }
                } else {
                    let op = &profile.ops[n];
                    let mut cost = (config.cost.base_ms
                        + config.cost.per_field_ms * op.fields as f64)
                        * op.scan_factor.max(0.0);
                    // Serializable ops additionally wait for a majority ack
                    // per write (write-concern majority).
                    if profile.serializable && op.kind != OpKind::Read {
                        cost += config.cluster.quorum_rtt_ms(clients[c].replica);
                    }
                    let r = clients[c].replica;
                    let done = busy_until[r].max(now) + cost;
                    busy_until[r] = done;
                    clients[c].phase = Phase::Executing(n + 1);
                    push(&mut queue, done, c, &mut seq);
                }
            }
            Phase::Coordinating => {
                // Release locks, waking the heads of the wait queues.
                let held: Vec<LockKey> = clients[c].locks.clone();
                for key in held {
                    let lock = locks.get_mut(&key).expect("held lock exists");
                    debug_assert_eq!(lock.held_by, Some(c));
                    match lock.queue.pop_front() {
                        None => lock.held_by = None,
                        Some(next) => {
                            lock.held_by = Some(next);
                            // The waiter resumes its lock acquisition after
                            // this one.
                            let Phase::Locking(k) = clients[next].phase else {
                                unreachable!("parked client is locking");
                            };
                            clients[next].phase = Phase::Locking(k + 1);
                            push(&mut queue, now, next, &mut seq);
                        }
                    }
                }
                finish_txn(&mut clients, c, now, warmup, &mut committed, &mut latencies);
                clients[c].phase = new_txn(&mut clients, c, now, &mut rng, &mut table_ids);
                push(&mut queue, now, c, &mut seq);
            }
        }
    }

    let measured_ms = config.duration_ms - warmup;
    RunStats::from_latencies(committed, &latencies, measured_ms)
}

fn finish_txn(
    clients: &mut [ClientState],
    c: usize,
    now: f64,
    warmup: f64,
    committed: &mut u64,
    latencies: &mut Vec<f64>,
) {
    if now >= warmup {
        *committed += 1;
        // A transaction in flight at the warm-up boundary is attributed to
        // its completion-time side only: the part of its lifetime inside
        // the warm-up period is already excluded from the measurement
        // window, so counting it in the latency sample again would
        // double-count the boundary and skew the measured latencies.
        latencies.push(now - clients[c].start.max(warmup));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{KeyDist, OpProfile, TxnProfile};

    fn simple_workload(serializable: bool, key: KeyDist) -> Workload {
        Workload::new(vec![TxnProfile {
            name: "rmw".into(),
            weight: 1.0,
            serializable,
            ops: vec![
                OpProfile {
                    table: "T".into(),
                    kind: OpKind::Read,
                    key,
                    fields: 1,
                    scan_factor: 1.0,
                },
                OpProfile {
                    table: "T".into(),
                    kind: OpKind::Write,
                    key: KeyDist::SameAs(0),
                    fields: 1,
                    scan_factor: 1.0,
                },
            ],
        }])
    }

    fn short(cluster: ClusterConfig, clients: usize, seed: u64) -> SimConfig {
        let mut c = SimConfig::new(cluster, clients);
        c.duration_ms = 5_000.0;
        c.seed = seed;
        c
    }

    #[test]
    fn ec_outperforms_sc_on_wide_area_clusters() {
        let ec = run_simulation(
            &simple_workload(false, KeyDist::Uniform(1000)),
            &short(ClusterConfig::us(), 50, 1),
        );
        let sc = run_simulation(
            &simple_workload(true, KeyDist::Uniform(1000)),
            &short(ClusterConfig::us(), 50, 1),
        );
        assert!(
            ec.throughput_tps > 2.0 * sc.throughput_tps,
            "EC {:.0} vs SC {:.0} tps",
            ec.throughput_tps,
            sc.throughput_tps
        );
        assert!(
            sc.avg_latency_ms > 2.0 * ec.avg_latency_ms,
            "EC {:.2}ms vs SC {:.2}ms",
            ec.avg_latency_ms,
            sc.avg_latency_ms
        );
    }

    #[test]
    fn sc_contention_on_hot_keys_queues() {
        let uniform = run_simulation(
            &simple_workload(true, KeyDist::Uniform(10_000)),
            &short(ClusterConfig::us(), 40, 2),
        );
        let hot = run_simulation(
            &simple_workload(true, KeyDist::Fixed(0)),
            &short(ClusterConfig::us(), 40, 2),
        );
        assert!(
            hot.throughput_tps < uniform.throughput_tps / 2.0,
            "hot {:.0} vs uniform {:.0}",
            hot.throughput_tps,
            uniform.throughput_tps
        );
    }

    #[test]
    fn ec_throughput_scales_then_saturates() {
        let w = simple_workload(false, KeyDist::Uniform(100_000));
        let t10 = run_simulation(&w, &short(ClusterConfig::us(), 10, 3)).throughput_tps;
        let t80 = run_simulation(&w, &short(ClusterConfig::us(), 80, 3)).throughput_tps;
        assert!(t80 > t10 * 2.0, "t10={t10:.0} t80={t80:.0}");
    }

    #[test]
    fn latency_grows_with_cluster_span_under_sc() {
        let w = simple_workload(true, KeyDist::Uniform(100_000));
        let va = run_simulation(&w, &short(ClusterConfig::virginia(), 20, 4)).avg_latency_ms;
        let us = run_simulation(&w, &short(ClusterConfig::us(), 20, 4)).avg_latency_ms;
        let gl = run_simulation(&w, &short(ClusterConfig::global(), 20, 4)).avg_latency_ms;
        assert!(va < us && us < gl, "va={va:.1} us={us:.1} gl={gl:.1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let w = simple_workload(false, KeyDist::Uniform(1000));
        let a = run_simulation(&w, &short(ClusterConfig::us(), 10, 7));
        let b = run_simulation(&w, &short(ClusterConfig::us(), 10, 7));
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.avg_latency_ms, b.avg_latency_ms);
    }

    #[test]
    fn distinct_records_never_share_a_lock() {
        // Under the old `table_id · M ⊕ key` folding these two records
        // collided onto one lock word: 0 · M ⊕ M == 1 · M ⊕ 0. The tuple
        // key keeps them — and every other distinct pair — apart.
        const M: u64 = 0x9E37_79B9_7F4A_7C15;
        assert_ne!(lock_key(0, M), lock_key(1, 0));
        assert_ne!(lock_key(2, M.wrapping_mul(2) ^ 7), lock_key(3, M.wrapping_mul(3) ^ 7));
        assert_eq!(lock_key(5, 9), lock_key(5, 9));
    }

    #[test]
    fn warmup_boundary_counts_completion_side_only() {
        let mut clients = vec![ClientState {
            replica: 0,
            txn: ConcreteTxn {
                profile: 0,
                keys: vec![],
            },
            locks: vec![],
            phase: Phase::Executing(0),
            start: 60.0,
        }];
        let (mut committed, mut lat) = (0u64, Vec::new());
        // Completes inside warm-up: not counted at all.
        finish_txn(&mut clients, 0, 90.0, 100.0, &mut committed, &mut lat);
        assert_eq!((committed, lat.len()), (0, 0));
        // In flight at the boundary (started 60, warm-up ends 100,
        // completes 130): committed once, latency only the measured-window
        // share — the 40 ms spent inside warm-up is already excluded from
        // the measurement window and must not be re-counted.
        finish_txn(&mut clients, 0, 130.0, 100.0, &mut committed, &mut lat);
        assert_eq!(committed, 1);
        assert_eq!(lat, vec![30.0]);
        // Fully post-warm-up: the full latency.
        clients[0].start = 110.0;
        finish_txn(&mut clients, 0, 150.0, 100.0, &mut committed, &mut lat);
        assert_eq!(lat, vec![30.0, 40.0]);
    }

    #[test]
    fn no_lock_leaks_across_transactions() {
        // A long SC run on few keys must terminate with matching
        // commits (progress proves locks are always released).
        let stats = run_simulation(
            &simple_workload(true, KeyDist::Uniform(3)),
            &short(ClusterConfig::virginia(), 12, 9),
        );
        assert!(stats.committed > 100, "only {} commits", stats.committed);
    }
}
