//! Aggregate run statistics: throughput and latency distributions.

/// Statistics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Transactions committed after warm-up.
    pub committed: u64,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Mean latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_latency_ms: f64,
}

impl RunStats {
    /// Builds stats from raw latencies over a measurement window.
    pub fn from_latencies(committed: u64, latencies: &[f64], window_ms: f64) -> RunStats {
        let mut sorted: Vec<f64> = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let avg = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let pct = |p: f64| -> f64 {
            if sorted.is_empty() {
                0.0
            } else {
                let idx = ((sorted.len() as f64 - 1.0) * p).floor() as usize;
                sorted[idx]
            }
        };
        RunStats {
            committed,
            throughput_tps: committed as f64 / (window_ms / 1000.0).max(1e-9),
            avg_latency_ms: avg,
            p50_latency_ms: pct(0.5),
            p99_latency_ms: pct(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_throughput() {
        let lats: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = RunStats::from_latencies(100, &lats, 10_000.0);
        assert_eq!(s.throughput_tps, 10.0);
        assert!((s.avg_latency_ms - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_latency_ms, 50.0);
        assert_eq!(s.p99_latency_ms, 99.0);
    }

    #[test]
    fn empty_run_is_zeroes() {
        let s = RunStats::from_latencies(0, &[], 1000.0);
        assert_eq!(s.throughput_tps, 0.0);
        assert_eq!(s.avg_latency_ms, 0.0);
    }
}
