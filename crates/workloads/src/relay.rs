//! Relay: a 3-hop message-feed scenario (think a miniature Twitter
//! fan-out service) crafted for the **triple detection mode** — the
//! workload axis ISSUE 5 opens beyond Table 1.
//!
//! A `post` writes the canonical message row; a `relay` worker copies the
//! body into a follower's feed row; a `timeline` reader first reads the
//! feed and then backfills from the canonical message table. Every
//! *pairwise* projection of this program is anomaly-free at every
//! consistency level — no transaction read-modify-writes a shared field,
//! no transaction writes twice, no transaction reads the same record
//! twice — so the paper's two-instance oracle reports it clean. Yet under
//! eventual consistency a timeline can observe the relayed copy while
//! missing the origin write it was derived from: a causality violation
//! relayed through an observer chain, realizable only over **three**
//! instances and caught by [`atropos_detect::DetectMode::Triples`]
//! (regression-pinned in `tests/triple_vs_pair.rs`). Causal consistency
//! closes visibility through the chain, so the anomaly also witnesses the
//! EC/CC boundary.

use atropos_dsl::{parse, Program};

/// DSL source of the scenario.
pub const SOURCE: &str = r#"
schema MSG  { m_id: int key, m_body: int }
schema FEED { f_id: int key, f_body: int }

// Publish (or edit) the canonical message row.
txn post(m: int, body: int) {
    @W1 update MSG set m_body = body where m_id = m;
    return 0;
}

// Fan the message out into one follower's feed row.
txn relay(m: int, f: int) {
    @R2 x := select m_body from MSG where m_id = m;
    @W2 update FEED set f_body = x.m_body where f_id = f;
    return 0;
}

// Read the feed, then backfill from the canonical table.
txn timeline(f: int, m: int) {
    @R3 y := select f_body from FEED where f_id = f;
    @R4 z := select m_body from MSG where m_id = m;
    return y.f_body + z.m_body;
}
"#;

/// Parses the scenario program.
///
/// # Panics
///
/// Panics only if the embedded source is malformed (a bug).
pub fn program() -> Program {
    parse(SOURCE).expect("embedded Relay source parses")
}

/// Transaction mix (read-heavy, as a fan-out service is).
pub fn mix() -> Vec<(&'static str, f64)> {
    vec![("post", 10.0), ("relay", 30.0), ("timeline", 60.0)]
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses_and_checks() {
        let p = super::program();
        atropos_dsl::check_program(&p).unwrap();
        assert_eq!(p.transactions.len(), 3);
        assert_eq!(p.schemas.len(), 2);
    }
}
