//! SIBench: the snapshot-isolation micro-benchmark — one table, a reader
//! and a read-modify-write updater (2 transactions, 1 anomaly in Table 1).

use atropos_dsl::{parse, Program};

/// DSL source of the benchmark.
pub const SOURCE: &str = r#"
schema SITEM { si_id: int key, si_name: string, si_value: int }

// Read one item.
txn readItem(k: int) {
    @R1 n := select si_name from SITEM where si_id = k;
    @R2 v := select si_value from SITEM where si_id = k;
    return v.si_value + (count(n.si_name) * 0);
}

// Increment one item.
txn updateItem(k: int) {
    @U1 x := select si_value from SITEM where si_id = k;
    @U2 update SITEM set si_value = x.si_value + 1 where si_id = k;
    return 0;
}
"#;

/// Parses the benchmark program.
///
/// # Panics
///
/// Panics only if the embedded source is malformed (a bug).
pub fn program() -> Program {
    parse(SOURCE).expect("embedded SIBench source parses")
}

/// Transaction mix.
pub fn mix() -> Vec<(&'static str, f64)> {
    vec![("readItem", 50.0), ("updateItem", 50.0)]
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses_and_checks() {
        let p = super::program();
        atropos_dsl::check_program(&p).unwrap();
        assert_eq!(p.transactions.len(), 2);
        assert_eq!(p.schemas.len(), 1);
    }
}
