//! Deriving simulator workloads from DSL programs.
//!
//! Each database command of a transaction becomes one abstract
//! [`OpProfile`]: its kind from the command kind, its CPU weight from the
//! number of fields it touches, and its key distribution from the command's
//! canonical key expression — commands sharing a key expression within one
//! transaction access the *same* record (`KeyDist::SameAs`), which is what
//! creates lock contention under serializable execution. This derivation is
//! applied uniformly to original and refactored programs, so performance
//! comparisons reflect exactly the schema changes Atropos made.

use std::collections::BTreeMap;

use atropos_detect::{summarize_txn, CmdKind, KeySpec};
use atropos_dsl::Program;
use atropos_sim::{KeyDist, OpKind, OpProfile, TxnProfile, Workload};

/// Sizing/skew information for the key spaces of a benchmark.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Rows per table; tables not listed (e.g. repair-introduced logs) use
    /// [`TableSpec::default_rows`].
    pub rows: BTreeMap<String, u64>,
    /// Default row count for unlisted tables.
    pub default_rows: u64,
    /// Probability that a keyed access goes to the hot set.
    pub hot_prob: f64,
    /// Fraction of each key space that is hot.
    pub hot_fraction: f64,
    /// Read amplification of aggregation scans over log tables.
    pub log_scan_factor: f64,
}

impl Default for TableSpec {
    fn default() -> Self {
        TableSpec {
            rows: BTreeMap::new(),
            default_rows: 1_000,
            hot_prob: 0.5,
            hot_fraction: 0.1,
            log_scan_factor: 1.15,
        }
    }
}

impl TableSpec {
    /// Sets the row count of one table.
    pub fn with_rows(mut self, table: &str, rows: u64) -> TableSpec {
        self.rows.insert(table.to_owned(), rows);
        self
    }

    fn rows_of(&self, table: &str) -> u64 {
        self.rows.get(table).copied().unwrap_or(self.default_rows)
    }

    /// Is this a repair-introduced logging table?
    fn is_log(&self, table: &str) -> bool {
        table.ends_with("_LOG")
    }
}

/// Derives a simulator workload from a program, a transaction mix, and a
/// table spec. Transactions absent from the mix are skipped; mix entries
/// without a matching transaction are ignored (they may have been renamed
/// away by a refactoring — the caller should keep names stable).
pub fn derive_workload(
    program: &Program,
    mix: &[(&str, f64)],
    spec: &TableSpec,
) -> Workload {
    let mut txns = Vec::new();
    for (name, weight) in mix {
        let Some(txn) = program.transaction(name) else {
            continue;
        };
        let summary = summarize_txn(program, txn);
        let mut ops: Vec<OpProfile> = Vec::new();
        let mut key_of_expr: BTreeMap<String, usize> = BTreeMap::new();
        for cmd in &summary.commands {
            let kind = match cmd.kind {
                CmdKind::Select => OpKind::Read,
                CmdKind::Update | CmdKind::Delete => OpKind::Write,
                CmdKind::Insert => {
                    if cmd.key == KeySpec::Fresh {
                        OpKind::InsertFresh
                    } else {
                        OpKind::Write
                    }
                }
            };
            let fields = match cmd.kind {
                CmdKind::Select => cmd.reads.len().max(1) as u32,
                _ => cmd.writes.len().max(1) as u32,
            };
            let scan_factor = if cmd.kind == CmdKind::Select && spec.is_log(&cmd.schema) {
                spec.log_scan_factor
            } else {
                1.0
            };
            let key = match &cmd.key {
                KeySpec::Fresh => KeyDist::Uniform(1 << 30),
                KeySpec::Scan => {
                    // Partial-key scans (e.g. log aggregations) still target
                    // one logical entity; approximate with a uniform key.
                    KeyDist::Uniform(spec.rows_of(&cmd.schema))
                }
                KeySpec::Keyed { key, .. } => match key_of_expr.get(key) {
                    Some(&idx) => KeyDist::SameAs(idx),
                    None => {
                        key_of_expr.insert(key.clone(), ops.len());
                        KeyDist::HotSpot {
                            n: spec.rows_of(&cmd.schema),
                            hot_fraction: spec.hot_fraction,
                            hot_prob: spec.hot_prob,
                        }
                    }
                },
            };
            ops.push(OpProfile {
                table: cmd.schema.clone(),
                kind,
                key,
                fields,
                scan_factor,
            });
        }
        txns.push(TxnProfile {
            name: (*name).to_owned(),
            weight: *weight,
            serializable: false,
            ops,
        });
    }
    Workload::new(txns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallbank_profiles_share_keys_within_txn() {
        let p = crate::smallbank::program();
        let w = derive_workload(&p, &crate::smallbank::mix(), &TableSpec::default());
        let dep = w
            .txns
            .iter()
            .find(|t| t.name == "depositChecking")
            .unwrap();
        assert_eq!(dep.ops.len(), 2);
        assert_eq!(dep.ops[1].key, KeyDist::SameAs(0));
        assert_eq!(dep.ops[0].kind, OpKind::Read);
        assert_eq!(dep.ops[1].kind, OpKind::Write);
    }

    #[test]
    fn refactored_program_profiles_use_log_scans() {
        let p = crate::sibench::program();
        let report = atropos_core::repair_program(
            &p,
            atropos_detect::ConsistencyLevel::EventualConsistency,
        );
        let w = derive_workload(
            &report.repaired,
            &crate::sibench::mix(),
            &TableSpec::default(),
        );
        let reader = w.txns.iter().find(|t| t.name == "readItem").unwrap();
        assert!(
            reader.ops.iter().any(|o| o.scan_factor > 1.0),
            "expected a log-scan read: {reader:?}"
        );
    }

    #[test]
    fn fresh_inserts_map_to_insert_fresh() {
        let p = crate::twitter::program();
        let w = derive_workload(&p, &crate::twitter::mix(), &TableSpec::default());
        let post = w.txns.iter().find(|t| t.name == "postTweet").unwrap();
        assert_eq!(post.ops[0].kind, OpKind::InsertFresh);
    }
}
