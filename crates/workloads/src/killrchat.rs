//! KillrChat: the scalable chat application (users, rooms, messages) —
//! 5 transactions over 3 tables.

use atropos_dsl::{parse, Program};

/// DSL source of the benchmark.
pub const SOURCE: &str = r#"
schema CHATUSER { cu_id: int key, cu_name: string, cu_rooms: int }
schema ROOM     { rm_id: int key, rm_name: string, rm_participants: int, rm_msgcount: int }
schema MESSAGE  { ms_id: uuid key, ms_room: int, ms_text: string }

// Open a new room (counters start at their defaults).
txn createRoom(rid: int, name: string) {
    @K1 insert into ROOM values (rm_id = rid, rm_name = name);
    return 0;
}

// Join a room: bump the room's participant count and the user's room count.
txn joinRoom(uid: int, rid: int) {
    @J1 rp := select rm_participants from ROOM where rm_id = rid;
    @J2 update ROOM set rm_participants = rp.rm_participants + 1 where rm_id = rid;
    @J3 ur := select cu_rooms from CHATUSER where cu_id = uid;
    @J4 update CHATUSER set cu_rooms = ur.cu_rooms + 1 where cu_id = uid;
    return 0;
}

// Leave a room.
txn leaveRoom(uid: int, rid: int) {
    @L1 rp := select rm_participants from ROOM where rm_id = rid;
    @L2 update ROOM set rm_participants = rp.rm_participants - 1 where rm_id = rid;
    @L3 ur := select cu_rooms from CHATUSER where cu_id = uid;
    @L4 update CHATUSER set cu_rooms = ur.cu_rooms - 1 where cu_id = uid;
    return 0;
}

// Post a message and bump the room's message counter.
txn postMessage(rid: int, text: string) {
    @M1 insert into MESSAGE values (ms_id = uuid(), ms_room = rid, ms_text = text);
    @M2 mc := select rm_msgcount from ROOM where rm_id = rid;
    @M3 update ROOM set rm_msgcount = mc.rm_msgcount + 1 where rm_id = rid;
    return 0;
}

// Read a room's header and its message count.
txn readRoom(rid: int) {
    @V1 r := select rm_name from ROOM where rm_id = rid;
    @V2 c := select rm_msgcount from ROOM where rm_id = rid;
    @V3 m := select ms_text from MESSAGE where ms_room = rid;
    return c.rm_msgcount + count(m.ms_text) + count(r.rm_name);
}
"#;

/// Parses the benchmark program.
///
/// # Panics
///
/// Panics only if the embedded source is malformed (a bug).
pub fn program() -> Program {
    parse(SOURCE).expect("embedded KillrChat source parses")
}

/// Transaction mix.
pub fn mix() -> Vec<(&'static str, f64)> {
    vec![
        ("createRoom", 2.0),
        ("joinRoom", 14.0),
        ("leaveRoom", 9.0),
        ("postMessage", 45.0),
        ("readRoom", 30.0),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses_and_checks() {
        let p = super::program();
        atropos_dsl::check_program(&p).unwrap();
        assert_eq!(p.transactions.len(), 5);
        assert_eq!(p.schemas.len(), 3);
    }
}
