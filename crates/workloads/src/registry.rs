//! The benchmark registry: every program of Table 1 by name.

use atropos_dsl::Program;

/// One registered benchmark: its name, program, and transaction mix.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (matches Table 1).
    pub name: &'static str,
    /// The DSL program.
    pub program: Program,
    /// Transaction mix for dynamic experiments.
    pub mix: Vec<(&'static str, f64)>,
}

/// All nine benchmarks of the paper's Table 1, in its row order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "TPC-C",
            program: crate::tpcc::program(),
            mix: crate::tpcc::mix(),
        },
        Benchmark {
            name: "SEATS",
            program: crate::seats::program(),
            mix: crate::seats::mix(),
        },
        Benchmark {
            name: "Courseware",
            program: crate::courseware::program(),
            mix: crate::courseware::mix(),
        },
        Benchmark {
            name: "SmallBank",
            program: crate::smallbank::program(),
            mix: crate::smallbank::mix(),
        },
        Benchmark {
            name: "Twitter",
            program: crate::twitter::program(),
            mix: crate::twitter::mix(),
        },
        Benchmark {
            name: "FMKe",
            program: crate::fmke::program(),
            mix: crate::fmke::mix(),
        },
        Benchmark {
            name: "SIBench",
            program: crate::sibench::program(),
            mix: crate::sibench::mix(),
        },
        Benchmark {
            name: "Wikipedia",
            program: crate::wikipedia::program(),
            mix: crate::wikipedia::mix(),
        },
        Benchmark {
            name: "Killrchat",
            program: crate::killrchat::program(),
            mix: crate::killrchat::mix(),
        },
    ]
}

/// The chain-anomaly scenarios beyond Table 1: workloads whose
/// serializability violations need **three** transaction instances, so the
/// two-instance pair oracle reports them clean while
/// [`atropos_detect::DetectMode::Triples`] does not. Kept out of
/// [`all_benchmarks`] so Table 1's row set stays exactly the paper's.
pub fn chain_scenarios() -> Vec<Benchmark> {
    vec![Benchmark {
        name: "Relay",
        program: crate::relay::program(),
        mix: crate::relay::mix(),
    }]
}

/// Looks up one benchmark (or chain scenario) by (case-insensitive) name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .chain(chain_scenarios())
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atropos_dsl::check_program;

    #[test]
    fn all_nine_parse_and_check() {
        let bs = all_benchmarks();
        assert_eq!(bs.len(), 9);
        for b in &bs {
            check_program(&b.program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            for (t, _) in &b.mix {
                assert!(b.program.transaction(t).is_some(), "{}: {t}", b.name);
            }
        }
    }

    #[test]
    fn table_counts_match_table1() {
        let expect = [
            ("TPC-C", 5, 9),
            ("SEATS", 6, 8),
            ("Courseware", 5, 3),
            ("SmallBank", 6, 3),
            ("Twitter", 5, 4),
            ("FMKe", 7, 7),
            ("SIBench", 2, 1),
            ("Wikipedia", 5, 12),
            ("Killrchat", 5, 3),
        ];
        for (name, txns, tables) in expect {
            let b = benchmark(name).unwrap();
            assert_eq!(b.program.transactions.len(), txns, "{name} txns");
            assert_eq!(b.program.schemas.len(), tables, "{name} tables");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(benchmark("smallbank").is_some());
        assert!(benchmark("Nope").is_none());
    }
}
