//! # atropos-workloads
//!
//! The nine OLTP benchmarks of the paper's evaluation (Table 1), written in
//! the Atropos DSL from their public specifications, plus the machinery
//! that turns any DSL program — original or refactored — into an abstract
//! workload for the performance simulator.
//!
//! | Benchmark  | Txns | Tables | Source spec |
//! |------------|------|--------|-------------|
//! | TPC-C      | 5    | 9      | TPC-C v5.11 (single warehouse) |
//! | SEATS      | 6    | 8      | H-Store SEATS |
//! | Courseware | 5    | 3      | the paper's Fig. 1 running example |
//! | SmallBank  | 6    | 3      | OLTP-Bench SmallBank |
//! | Twitter    | 5    | 4      | OLTP-Bench Twitter |
//! | FMKe       | 7    | 7      | FMKe healthcare benchmark |
//! | SIBench    | 2    | 1      | snapshot-isolation microbenchmark |
//! | Wikipedia  | 5    | 12     | OLTP-Bench Wikipedia |
//! | Killrchat  | 5    | 3      | KillrChat reference app |
//!
//! # Examples
//!
//! ```
//! let bench = atropos_workloads::benchmark("SmallBank").unwrap();
//! assert_eq!(bench.program.transactions.len(), 6);
//! ```

#![warn(missing_docs)]

pub mod courseware;
pub mod fmke;
pub mod killrchat;
pub mod profiles;
pub mod registry;
pub mod relay;
pub mod seats;
pub mod sibench;
pub mod smallbank;
pub mod tpcc;
pub mod twitter;
pub mod wikipedia;

pub use profiles::{derive_workload, TableSpec};
pub use registry::{all_benchmarks, benchmark, chain_scenarios, Benchmark};
