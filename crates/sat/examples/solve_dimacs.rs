//! Solver test harness: solve a DIMACS CNF file, optionally dumping a
//! textual DRAT proof for external cross-checking (e.g. drat-trim).
//!
//! ```text
//! cargo run -p atropos_sat --example solve_dimacs -- problem.cnf \
//!     --proof-out problem.drat
//! ```
//!
//! Prints `SATISFIABLE` or `UNSATISFIABLE`. With `--proof-out`, the
//! solver runs with proof logging on and writes its clause-addition/
//! deletion log in DRAT text format; on UNSAT the dump is closed with the
//! empty clause, so `drat-trim problem.cnf problem.drat` verifies it.

use std::process::ExitCode;

use atropos_sat::dimacs::{parse_dimacs_with_proofs, to_drat};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut cnf_path: Option<String> = None;
    let mut proof_out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--proof-out" => match args.next() {
                Some(p) => proof_out = Some(p),
                None => {
                    eprintln!("--proof-out needs a path");
                    return ExitCode::from(2);
                }
            },
            _ if cnf_path.is_none() => cnf_path = Some(arg),
            _ => {
                eprintln!("unexpected argument `{arg}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(cnf_path) = cnf_path else {
        eprintln!("usage: solve_dimacs <file.cnf> [--proof-out <file.drat>]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&cnf_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {cnf_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut solver = match parse_dimacs_with_proofs(&text, proof_out.is_some()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not parse {cnf_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let sat = solver.solve().is_sat();
    println!("{}", if sat { "SATISFIABLE" } else { "UNSATISFIABLE" });
    if let Some(path) = proof_out {
        let mut drat = to_drat(solver.proof_events());
        if !sat {
            drat.push_str("0\n");
        }
        if let Err(e) = std::fs::write(&path, drat) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    // Conventional SAT-solver exit codes: 10 = SAT, 20 = UNSAT.
    ExitCode::from(if sat { 10 } else { 20 })
}
