//! Property test: the CDCL solver agrees with brute force on random small
//! formulas, and its models really satisfy the input.

use atropos_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    'outer: for m in 0u32..(1 << num_vars) {
        for c in clauses {
            if !c
                .iter()
                .any(|l| ((m >> l.var().0) & 1 == 1) == l.is_positive())
            {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdcl_agrees_with_brute_force(
        num_vars in 1usize..12,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..12, any::<bool>()), 1..4),
            0..40,
        ),
    ) {
        let clauses: Vec<Vec<Lit>> = raw
            .iter()
            .map(|c| {
                c.iter()
                    .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                    .collect()
            })
            .collect();
        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let result = solver.solve();
        prop_assert_eq!(result.is_sat(), brute_force(num_vars, &clauses));
        if let SolveResult::Sat(model) = result {
            for c in &clauses {
                prop_assert!(
                    c.iter().any(|l| model[l.var().index()] == l.is_positive()),
                    "model violates clause {:?}", c
                );
            }
        }
    }
}
