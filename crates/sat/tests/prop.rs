//! Property tests: the CDCL solver agrees with brute force on random small
//! formulas, its models really satisfy the input, and solving under
//! assumptions is equivalent to asserting the assumptions as unit clauses
//! (with a genuinely inconsistent failed-assumption core on UNSAT).

use atropos_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    'outer: for m in 0u32..(1 << num_vars) {
        for c in clauses {
            if !c
                .iter()
                .any(|l| ((m >> l.var().0) & 1 == 1) == l.is_positive())
            {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdcl_agrees_with_brute_force(
        num_vars in 1usize..12,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..12, any::<bool>()), 1..4),
            0..40,
        ),
    ) {
        let clauses: Vec<Vec<Lit>> = raw
            .iter()
            .map(|c| {
                c.iter()
                    .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                    .collect()
            })
            .collect();
        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c.iter().copied());
        }
        let result = solver.solve();
        prop_assert_eq!(result.is_sat(), brute_force(num_vars, &clauses));
        if let SolveResult::Sat(model) = result {
            for c in &clauses {
                prop_assert!(
                    c.iter().any(|l| model[l.var().index()] == l.is_positive()),
                    "model violates clause {:?}", c
                );
            }
        }
    }

    /// CLOTHO-style differential check at the solver level: for a random
    /// CNF and a random assumption set, `solve_with_assumptions` must agree
    /// with a fresh solver that carries the assumptions as unit clauses —
    /// and repeated incremental calls on one solver must keep agreeing.
    #[test]
    fn assumptions_agree_with_unit_clauses(
        num_vars in 1usize..10,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 1..4),
            0..30,
        ),
        raw_assumption_sets in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 0..5),
            1..4,
        ),
    ) {
        let clauses: Vec<Vec<Lit>> = raw
            .iter()
            .map(|c| {
                c.iter()
                    .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                    .collect()
            })
            .collect();
        let mut incremental = Solver::new();
        for _ in 0..num_vars {
            incremental.new_var();
        }
        for c in &clauses {
            incremental.add_clause(c.iter().copied());
        }
        for set in &raw_assumption_sets {
            let assumptions: Vec<Lit> = set
                .iter()
                .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                .collect();
            // Reference: a throwaway solver with the assumptions as units.
            let mut fresh = Solver::new();
            for _ in 0..num_vars {
                fresh.new_var();
            }
            for c in &clauses {
                fresh.add_clause(c.iter().copied());
            }
            for &a in &assumptions {
                fresh.add_clause([a]);
            }
            let want = fresh.solve().is_sat();
            let got = incremental.solve_with_assumptions(&assumptions);
            prop_assert_eq!(got.is_sat(), want, "assumptions {:?}", assumptions);
            if let SolveResult::Sat(model) = &got {
                for c in &clauses {
                    prop_assert!(
                        c.iter().any(|l| model[l.var().index()] == l.is_positive()),
                        "model violates clause {:?}", c
                    );
                }
                for &a in &assumptions {
                    prop_assert!(
                        model[a.var().index()] == a.is_positive(),
                        "model violates assumption {:?}", a
                    );
                }
            } else {
                // The failed core is a subset of the assumptions whose
                // re-assertion refutes the formula outright.
                let core: Vec<Lit> = incremental.failed_assumptions().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core lit {l} not assumed");
                }
                let mut check = Solver::new();
                for _ in 0..num_vars {
                    check.new_var();
                }
                for c in &clauses {
                    check.add_clause(c.iter().copied());
                }
                for &l in &core {
                    check.add_clause([l]);
                }
                prop_assert!(!check.solve().is_sat(), "core {:?} must refute", core);
            }
        }
    }
}
