//! Differential fuzz: the arena solver against the retained pre-arena
//! reference implementation (`atropos_sat::reference`). On random CNFs and
//! random assumption sequences the two must agree on SAT/UNSAT; models must
//! satisfy the formula (and the assumptions); and each solver's
//! failed-assumption core must refute the formula *in the other solver* —
//! cores need not be byte-identical (the blocker fast path legitimately
//! perturbs the search), but they must be mutually valid.

use atropos_sat::{reference, Lit, SolveResult, Var};
use proptest::prelude::*;

fn to_clauses(raw: &[Vec<(u32, bool)>], num_vars: usize) -> Vec<Vec<Lit>> {
    raw.iter()
        .map(|c| {
            c.iter()
                .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                .collect()
        })
        .collect()
}

fn arena_solver(num_vars: usize, clauses: &[Vec<Lit>]) -> atropos_sat::solver::Solver {
    let mut s = atropos_sat::solver::Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

fn reference_solver(num_vars: usize, clauses: &[Vec<Lit>]) -> reference::Solver {
    let mut s = reference::Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

fn model_satisfies(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|l| model[l.var().index()] == l.is_positive()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Plain solving: identical verdicts, valid models on both sides.
    #[test]
    fn arena_and_reference_agree_on_verdicts(
        num_vars in 1usize..12,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..12, any::<bool>()), 1..4),
            0..40,
        ),
    ) {
        let clauses = to_clauses(&raw, num_vars);
        let arena = arena_solver(num_vars, &clauses).solve();
        let refr = reference_solver(num_vars, &clauses).solve();
        prop_assert_eq!(arena.is_sat(), refr.is_sat(), "verdicts diverge");
        if let SolveResult::Sat(m) = &arena {
            prop_assert!(model_satisfies(m, &clauses), "arena model invalid");
        }
        if let SolveResult::Sat(m) = &refr {
            prop_assert!(model_satisfies(m, &clauses), "reference model invalid");
        }
    }

    /// Incremental solving under a sequence of assumption sets: verdicts
    /// agree call by call, and on UNSAT each solver's failed-assumption
    /// core refutes the formula in the *other* implementation.
    #[test]
    fn cores_are_mutually_valid_under_assumptions(
        num_vars in 1usize..10,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 1..4),
            0..30,
        ),
        raw_assumption_sets in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 0..5),
            1..4,
        ),
    ) {
        let clauses = to_clauses(&raw, num_vars);
        let mut arena = arena_solver(num_vars, &clauses);
        let mut refr = reference_solver(num_vars, &clauses);
        for set in &raw_assumption_sets {
            let assumptions: Vec<Lit> = set
                .iter()
                .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
                .collect();
            let a = arena.solve_with_assumptions(&assumptions);
            let r = refr.solve_with_assumptions(&assumptions);
            prop_assert_eq!(
                a.is_sat(), r.is_sat(),
                "verdicts diverge under {:?}", assumptions
            );
            if let SolveResult::Sat(m) = &a {
                prop_assert!(model_satisfies(m, &clauses), "arena model invalid");
                for &l in &assumptions {
                    prop_assert!(m[l.var().index()] == l.is_positive());
                }
            } else {
                // Both cores are subsets of the assumptions...
                let arena_core = arena.failed_assumptions().to_vec();
                let ref_core = refr.failed_assumptions().to_vec();
                for l in arena_core.iter().chain(&ref_core) {
                    prop_assert!(assumptions.contains(l), "core lit {l} not assumed");
                }
                // ...and each refutes the formula in the other solver.
                let mut check_ref = reference_solver(num_vars, &clauses);
                for &l in &arena_core {
                    check_ref.add_clause([l]);
                }
                prop_assert!(
                    !check_ref.solve().is_sat(),
                    "arena core {:?} must refute in the reference", arena_core
                );
                let mut check_arena = arena_solver(num_vars, &clauses);
                for &l in &ref_core {
                    check_arena.add_clause([l]);
                }
                prop_assert!(
                    !check_arena.solve().is_sat(),
                    "reference core {:?} must refute in the arena", ref_core
                );
            }
        }
    }

    /// Lemma exchange is sound across implementations: clauses the arena
    /// solver retains after a refutation, imported into a fresh *reference*
    /// solver over the same variable numbering (and vice versa), never
    /// change any verdict.
    #[test]
    fn exported_learnts_transfer_across_implementations(
        num_vars in 2usize..10,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 2..4),
            5..30,
        ),
        probe in prop::collection::vec((0u32..10, any::<bool>()), 1..4),
    ) {
        let clauses = to_clauses(&raw, num_vars);
        let probe: Vec<Lit> = probe
            .iter()
            .map(|(v, pos)| Lit::new(Var(v % num_vars as u32), *pos))
            .collect();
        let mut arena = arena_solver(num_vars, &clauses);
        let mut refr = reference_solver(num_vars, &clauses);
        let a0 = arena.solve_with_assumptions(&probe).is_sat();
        let r0 = refr.solve_with_assumptions(&probe).is_sat();
        prop_assert_eq!(a0, r0);
        // Cross-seed and re-ask: verdicts must be unchanged.
        let from_arena = arena.retained_learnts(num_vars);
        let from_ref = refr.retained_learnts(num_vars);
        let mut seeded_ref = reference_solver(num_vars, &clauses);
        seeded_ref.import_learnts(from_arena.iter().map(Vec::as_slice));
        let mut seeded_arena = arena_solver(num_vars, &clauses);
        seeded_arena.import_learnts(from_ref.iter().map(Vec::as_slice));
        prop_assert_eq!(seeded_ref.solve_with_assumptions(&probe).is_sat(), a0);
        prop_assert_eq!(seeded_arena.solve_with_assumptions(&probe).is_sat(), a0);
    }
}
