//! Deterministic unit tests for the CDCL solver on small canonical
//! instances — complementing the randomized property tests in `prop.rs`.

use atropos_sat::{CnfBuilder, Lit, SolveResult, Solver, Var};

/// Builds the pigeonhole instance PHP(p, h): p pigeons, h holes, each pigeon
/// in some hole, no two pigeons sharing a hole. UNSAT iff p > h.
fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let at: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &at {
        s.add_clause(row.iter().map(|v| v.positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause([at[p1][h].negative(), at[p2][h].negative()]);
            }
        }
    }
    s
}

#[test]
fn pigeonhole_unsat_when_overfull() {
    for (p, h) in [(2, 1), (3, 2), (4, 3), (5, 4), (6, 5)] {
        assert!(
            !pigeonhole(p, h).solve().is_sat(),
            "PHP({p},{h}) must be UNSAT"
        );
    }
}

#[test]
fn pigeonhole_sat_when_room() {
    for (p, h) in [(1, 1), (2, 2), (3, 4), (5, 5)] {
        let result = pigeonhole(p, h).solve();
        assert!(result.is_sat(), "PHP({p},{h}) must be SAT");
    }
}

#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    assert!(s.solve().is_sat());
    // Variables without constraints are still assigned in the model.
    let mut s = Solver::new();
    let v = s.new_var();
    let SolveResult::Sat(model) = s.solve() else {
        panic!("free variable must be SAT")
    };
    assert_eq!(model.len(), v.index() + 1);
}

#[test]
fn empty_clause_is_unsat() {
    let mut s = Solver::new();
    s.new_var();
    s.add_clause([]);
    assert!(!s.solve().is_sat());
}

#[test]
fn unit_propagation_chain() {
    // a, a→b, b→c, c→d forces all four true without search.
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
    s.add_clause([vars[0].positive()]);
    for w in vars.windows(2) {
        s.add_clause([w[0].negative(), w[1].positive()]);
    }
    let SolveResult::Sat(model) = s.solve() else {
        panic!("chain must be SAT")
    };
    assert!(vars.iter().all(|v| model[v.index()]), "chain forces all true");
    let stats = {
        let mut s2 = Solver::new();
        let vs: Vec<Var> = (0..4).map(|_| s2.new_var()).collect();
        s2.add_clause([vs[0].positive()]);
        for w in vs.windows(2) {
            s2.add_clause([w[0].negative(), w[1].positive()]);
        }
        s2.solve();
        s2.stats()
    };
    assert_eq!(stats.decisions, 0, "pure propagation needs no decisions");
}

#[test]
fn contradictory_units_conflict() {
    let mut s = Solver::new();
    let a = s.new_var();
    s.add_clause([a.positive()]);
    s.add_clause([a.negative()]);
    assert!(!s.solve().is_sat());
}

#[test]
fn conflict_clause_learning_on_xor_chain() {
    // An inconsistent XOR system: a⊕b, b⊕c, a⊕c with odd parity — classic
    // driver of clause learning. Encoded directly in CNF.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    let xor = |s: &mut Solver, x: Var, y: Var, parity: bool| {
        // x ⊕ y = parity
        if parity {
            s.add_clause([x.positive(), y.positive()]);
            s.add_clause([x.negative(), y.negative()]);
        } else {
            s.add_clause([x.positive(), y.negative()]);
            s.add_clause([x.negative(), y.positive()]);
        }
    };
    xor(&mut s, a, b, true);
    xor(&mut s, b, c, true);
    xor(&mut s, a, c, true); // sum of the three left sides is 0, right is 1
    assert!(!s.solve().is_sat());
    assert!(s.stats().conflicts > 0, "refutation must go through conflicts");
}

#[test]
fn duplicate_and_tautological_literals_are_harmless() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    // Tautology a ∨ ¬a constrains nothing.
    s.add_clause([a.positive(), a.negative()]);
    // Duplicates collapse: (b ∨ b ∨ b) is just b.
    s.add_clause([b.positive(), b.positive(), b.positive()]);
    let SolveResult::Sat(model) = s.solve() else {
        panic!("must be SAT")
    };
    assert!(model[b.index()]);
}

#[test]
fn model_satisfies_every_clause_on_mixed_instance() {
    // A satisfiable 3-colouring-style instance; verify the returned model
    // clause by clause rather than trusting `is_sat`.
    let mut s = Solver::new();
    let n = 9;
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for chunk in vars.chunks(3) {
        clauses.push(chunk.iter().map(|v| v.positive()).collect());
        for i in 0..chunk.len() {
            for j in (i + 1)..chunk.len() {
                clauses.push(vec![chunk[i].negative(), chunk[j].negative()]);
            }
        }
    }
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    let SolveResult::Sat(model) = s.solve() else {
        panic!("must be SAT")
    };
    for c in &clauses {
        assert!(
            c.iter().any(|l| model[l.var().index()] == l.is_positive()),
            "model violates {c:?}"
        );
    }
}

#[test]
fn cnf_builder_gates_behave() {
    // AND gate: out ↔ a ∧ b, assert out, forces both inputs.
    let mut f = CnfBuilder::new();
    let a = f.fresh();
    let b = f.fresh();
    let out = f.and([a, b]);
    f.assert_lit(out);
    let result = f.solve();
    let model = result.model().expect("sat");
    assert!(model[a.var().index()] && model[b.var().index()]);

    // EXACTLY-ONE over three: a or b or c, pairwise exclusive.
    let mut f = CnfBuilder::new();
    let lits = [f.fresh(), f.fresh(), f.fresh()];
    f.assert_exactly_one(&lits);
    let result = f.solve();
    let model = result.model().expect("sat");
    let set = lits
        .iter()
        .filter(|l| model[l.var().index()] == l.is_positive())
        .count();
    assert_eq!(set, 1);

    // IFF with forced disagreement is UNSAT.
    let mut f = CnfBuilder::new();
    let a = f.fresh();
    let b = f.fresh();
    let eq = f.iff(a, b);
    f.assert_lit(eq);
    f.assert_lit(a);
    f.assert_lit(!b);
    assert!(!f.solve().is_sat());
}

#[test]
fn assumptions_scope_to_one_call() {
    // (a ∨ b) with assumption ¬a forces b; with assumption ¬b forces a; and
    // the solver stays reusable across calls.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.positive(), b.positive()]);
    let SolveResult::Sat(m) = s.solve_with_assumptions(&[a.negative()]) else {
        panic!("SAT under ¬a")
    };
    assert!(!m[a.index()] && m[b.index()]);
    let SolveResult::Sat(m) = s.solve_with_assumptions(&[b.negative()]) else {
        panic!("SAT under ¬b")
    };
    assert!(m[a.index()] && !m[b.index()]);
    // Contradictory assumptions are UNSAT but leave the solver usable.
    assert!(!s
        .solve_with_assumptions(&[a.negative(), b.negative()])
        .is_sat());
    assert!(s.solve().is_sat());
}

#[test]
fn failed_assumption_core_is_inconsistent_subset() {
    // a→b, b→c; assuming {a, ¬c} is UNSAT and both assumptions are needed.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    let free = s.new_var();
    s.add_clause([a.negative(), b.positive()]);
    s.add_clause([b.negative(), c.positive()]);
    let result = s.solve_with_assumptions(&[free.positive(), a.positive(), c.negative()]);
    assert_eq!(result, SolveResult::Unsat);
    let core: Vec<Lit> = s.failed_assumptions().to_vec();
    assert!(core.contains(&a.positive()) && core.contains(&c.negative()));
    assert!(!core.contains(&free.positive()), "free var is not in the core");
    // Re-asserting the core as unit clauses refutes the formula outright.
    for l in &core {
        s.add_clause([*l]);
    }
    assert!(!s.solve().is_sat());
}

#[test]
fn root_unsat_reports_empty_core() {
    let mut s = Solver::new();
    let a = s.new_var();
    s.add_clause([a.positive()]);
    s.add_clause([a.negative()]);
    assert!(!s.solve_with_assumptions(&[a.positive()]).is_sat());
    assert!(s.failed_assumptions().is_empty());
}

#[test]
fn clauses_added_between_solves_take_effect() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.positive(), b.positive()]);
    assert!(s.solve().is_sat());
    s.add_clause([a.negative()]);
    let SolveResult::Sat(m) = s.solve() else {
        panic!("still SAT")
    };
    assert!(!m[a.index()] && m[b.index()]);
    s.add_clause([b.negative()]);
    assert!(!s.solve().is_sat());
    // Once root-level UNSAT, no assumptions can rescue it.
    assert!(!s.solve_with_assumptions(&[a.positive()]).is_sat());
}

#[test]
fn learnt_clauses_survive_between_assumption_calls() {
    // Solving the same hard query twice must not redo all the work: the
    // second call reuses the learnt clauses and finishes with fewer
    // additional conflicts than the first.
    let mut s = Solver::new();
    let act = s.new_var();
    let at: Vec<Vec<Var>> = (0..5)
        .map(|_| (0..4).map(|_| s.new_var()).collect())
        .collect();
    // Activation-literal-guarded pigeonhole PHP(5, 4).
    for row in &at {
        let mut c: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        c.push(act.negative());
        s.add_clause(c);
    }
    for h in 0..4 {
        for p1 in 0..5 {
            for p2 in (p1 + 1)..5 {
                s.add_clause([act.negative(), at[p1][h].negative(), at[p2][h].negative()]);
            }
        }
    }
    assert!(!s.solve_with_assumptions(&[act.positive()]).is_sat());
    let first = s.stats().conflicts;
    assert!(!s.solve_with_assumptions(&[act.positive()]).is_sat());
    let second = s.stats().conflicts - first;
    assert!(
        second < first,
        "retained clauses must shortcut the second refutation ({second} vs {first})"
    );
    // With the guard off the formula is trivially satisfiable.
    assert!(s.solve_with_assumptions(&[act.negative()]).is_sat());
}

#[test]
fn dimacs_round_trip_solves_identically() {
    let clauses: Vec<Vec<Lit>> = vec![
        vec![Var(0).positive(), Var(1).positive()],
        vec![Var(0).negative(), Var(1).positive()],
        vec![Var(1).negative(), Var(2).positive()],
    ];
    let text = atropos_sat::dimacs::to_dimacs(3, &clauses);
    let mut parsed = atropos_sat::dimacs::parse_dimacs(&text).expect("dimacs parses");
    let SolveResult::Sat(model) = parsed.solve() else {
        panic!("instance is SAT")
    };
    assert!(model[1] && model[2], "b and c are forced");
}
