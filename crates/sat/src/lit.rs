//! Variables, literals, and ternary assignment values.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation. Encoded as `var * 2 + sign`
/// where `sign == 1` means positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and a polarity.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index usable for watch lists (`0..2*num_vars`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from [`Lit::index`].
    pub fn from_index(idx: usize) -> Lit {
        Lit(idx as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Ternary truth value of a variable under a partial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Converts a concrete boolean.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Truth value of a literal whose variable has this value.
    pub fn under(self, positive: bool) -> LBool {
        match (self, positive) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(7);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn lbool_under_polarity() {
        assert_eq!(LBool::True.under(true), LBool::True);
        assert_eq!(LBool::True.under(false), LBool::False);
        assert_eq!(LBool::False.under(false), LBool::True);
        assert_eq!(LBool::Undef.under(true), LBool::Undef);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var(3).positive().to_string(), "x3");
        assert_eq!(Var(3).negative().to_string(), "!x3");
    }
}
