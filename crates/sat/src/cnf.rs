//! A CNF formula builder with Tseitin-encoded boolean gates.
//!
//! [`CnfBuilder`] accumulates clauses and fresh variables, offering gate
//! constructors (`and`, `or`, `implies`, `iff`, …) that introduce definition
//! variables, plus cardinality helpers. Finished formulas are handed to the
//! [`Solver`](crate::Solver) via [`CnfBuilder::into_solver`].

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// Incremental CNF construction with gate encodings.
///
/// # Examples
///
/// ```
/// use atropos_sat::CnfBuilder;
///
/// let mut b = CnfBuilder::new();
/// let x = b.fresh();
/// let y = b.fresh();
/// let both = b.and([x, y]);
/// b.assert_lit(both);
/// let model = b.solve().model().unwrap().to_vec();
/// assert!(model[x.var().index()] && model[y.var().index()]);
/// ```
#[derive(Debug, Default)]
pub struct CnfBuilder {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> CnfBuilder {
        CnfBuilder::default()
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn fresh(&mut self) -> Lit {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v.positive()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// A literal constrained to be true (allocated on first use).
    pub fn lit_true(&mut self) -> Lit {
        if let Some(t) = self.true_lit {
            return t;
        }
        let t = self.fresh();
        self.clauses.push(vec![t]);
        self.true_lit = Some(t);
        t
    }

    /// A literal constrained to be false.
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }

    /// Adds a raw clause.
    pub fn clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.clauses.push(lits.into_iter().collect());
    }

    /// Asserts that a literal holds.
    pub fn assert_lit(&mut self, l: Lit) {
        self.clauses.push(vec![l]);
    }

    /// Returns a literal equivalent to the conjunction of `lits`.
    pub fn and(&mut self, lits: impl IntoIterator<Item = Lit>) -> Lit {
        let lits: Vec<Lit> = lits.into_iter().collect();
        match lits.len() {
            0 => self.lit_true(),
            1 => lits[0],
            _ => {
                let g = self.fresh();
                for &l in &lits {
                    self.clauses.push(vec![!g, l]);
                }
                let mut big: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                big.push(g);
                self.clauses.push(big);
                g
            }
        }
    }

    /// Returns a literal equivalent to the disjunction of `lits`.
    pub fn or(&mut self, lits: impl IntoIterator<Item = Lit>) -> Lit {
        let lits: Vec<Lit> = lits.into_iter().collect();
        match lits.len() {
            0 => self.lit_false(),
            1 => lits[0],
            _ => {
                let g = self.fresh();
                for &l in &lits {
                    self.clauses.push(vec![g, !l]);
                }
                let mut big = lits;
                big.push(!g);
                self.clauses.push(big);
                g
            }
        }
    }

    /// Returns a literal equivalent to `a → b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or([!a, b])
    }

    /// Asserts `a → b` directly (no definition variable).
    pub fn assert_implies(&mut self, a: Lit, b: Lit) {
        self.clauses.push(vec![!a, b]);
    }

    /// Asserts `a ∧ b → c` directly.
    pub fn assert_implies2(&mut self, a: Lit, b: Lit, c: Lit) {
        self.clauses.push(vec![!a, !b, c]);
    }

    /// Returns a literal equivalent to `a ↔ b`.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        let g = self.fresh();
        self.clauses.push(vec![!g, !a, b]);
        self.clauses.push(vec![!g, a, !b]);
        self.clauses.push(vec![g, a, b]);
        self.clauses.push(vec![g, !a, !b]);
        g
    }

    /// Asserts that at most one of `lits` holds (pairwise encoding).
    pub fn assert_at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.clauses.push(vec![!lits[i], !lits[j]]);
            }
        }
    }

    /// Asserts that exactly one of `lits` holds.
    pub fn assert_exactly_one(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
        self.assert_at_most_one(lits);
    }

    /// Moves the accumulated formula into a fresh [`Solver`].
    pub fn into_solver(self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in self.clauses {
            s.add_clause(c);
        }
        s
    }

    /// Builds a solver and solves, consuming the builder.
    pub fn solve(self) -> SolveResult {
        self.into_solver().solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(b: CnfBuilder) -> Vec<bool> {
        b.solve().model().expect("expected SAT").to_vec()
    }

    fn val(m: &[bool], l: Lit) -> bool {
        m[l.var().index()] == l.is_positive()
    }

    #[test]
    fn and_gate_semantics() {
        for want in [true, false] {
            let mut b = CnfBuilder::new();
            let x = b.fresh();
            let y = b.fresh();
            let g = b.and([x, y]);
            b.assert_lit(if want { g } else { !g });
            b.assert_lit(x);
            let m = model_of(b);
            assert_eq!(val(&m, y), want);
        }
    }

    #[test]
    fn or_gate_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let g = b.or([x, y]);
        b.assert_lit(!g);
        let m = model_of(b);
        assert!(!val(&m, x) && !val(&m, y));
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let mut b = CnfBuilder::new();
        let t = b.and([]);
        let f = b.or([]);
        b.assert_lit(t);
        b.assert_lit(!f);
        assert!(b.solve().is_sat());

        let mut b = CnfBuilder::new();
        let f = b.or([]);
        b.assert_lit(f);
        assert!(!b.solve().is_sat());
    }

    #[test]
    fn iff_gate_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let g = b.iff(x, y);
        b.assert_lit(g);
        b.assert_lit(x);
        let m = model_of(b);
        assert!(val(&m, y));

        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let g = b.iff(x, y);
        b.assert_lit(!g);
        b.assert_lit(x);
        let m = model_of(b);
        assert!(!val(&m, y));
    }

    #[test]
    fn implies_assertion() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        b.assert_implies(x, y);
        b.assert_lit(x);
        b.assert_lit(!y);
        assert!(!b.solve().is_sat());
    }

    #[test]
    fn exactly_one_picks_one() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Lit> = (0..5).map(|_| b.fresh()).collect();
        b.assert_exactly_one(&xs);
        let m = model_of(b);
        assert_eq!(xs.iter().filter(|&&l| val(&m, l)).count(), 1);
    }

    #[test]
    fn at_most_one_allows_zero() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Lit> = (0..4).map(|_| b.fresh()).collect();
        b.assert_at_most_one(&xs);
        for &x in &xs {
            b.assert_lit(!x);
        }
        assert!(b.solve().is_sat());
    }

    #[test]
    fn two_true_violates_at_most_one() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Lit> = (0..3).map(|_| b.fresh()).collect();
        b.assert_at_most_one(&xs);
        b.assert_lit(xs[0]);
        b.assert_lit(xs[2]);
        assert!(!b.solve().is_sat());
    }

    #[test]
    fn nested_gates_compose() {
        // (x ∧ y) ∨ (!x ∧ z), assert !y and the whole thing; forces !x ∧ z.
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let z = b.fresh();
        let g1 = b.and([x, y]);
        let g2 = b.and([!x, z]);
        let top = b.or([g1, g2]);
        b.assert_lit(top);
        b.assert_lit(!y);
        let m = model_of(b);
        assert!(!val(&m, x) && val(&m, z));
    }
}
