//! # atropos-sat
//!
//! A from-scratch CDCL SAT solver plus CNF construction utilities.
//!
//! The paper discharges its serializability-anomaly queries with Z3; this
//! workspace grounds the same bounded first-order formulas to propositional
//! logic and decides them with this solver (see `atropos-detect`). The crate
//! is self-contained and usable independently:
//!
//! * [`Solver`] — two-watched-literal CDCL with first-UIP learning, VSIDS,
//!   phase saving, Luby restarts, learnt-clause deletion, and incremental
//!   solving under assumptions (`solve_with_assumptions`) with
//!   failed-assumption cores — the detector keeps one solver per
//!   transaction pair and dispatches every anomaly query via assumptions;
//! * [`CnfBuilder`] — fresh variables, raw clauses, Tseitin gates
//!   (`and`/`or`/`iff`/`implies`) and cardinality constraints;
//! * [`dimacs`] — DIMACS CNF import/export plus a textual DRAT dump of a
//!   solver's proof log for cross-checking with external tools;
//! * [`proof`] — the DRAT-style [`ProofEvent`] log both solver
//!   implementations emit when [`Solver::set_proof_logging`] is on, from
//!   which self-contained UNSAT certificates are assembled (checked by
//!   the independent `atropos_proof` crate).
//!
//! [`Solver`] stores clauses in a flat arena (`[header | len | lits...]`
//! records in one `u32` buffer) and propagates over blocker-literal
//! watcher lists; [`reference`] retains the previous `Vec<Clause>`
//! implementation as a differential-testing oracle and throughput
//! baseline. Building with the `baseline-solver` cargo feature swaps the
//! crate's `Solver` re-export to the reference implementation, so the
//! whole stack can be benchmarked pre-arena without code changes.
//!
//! # Examples
//!
//! ```
//! use atropos_sat::{CnfBuilder};
//!
//! // (a ∨ b) ∧ (¬a ∨ b) is satisfied only with b = true.
//! let mut f = CnfBuilder::new();
//! let a = f.fresh();
//! let b = f.fresh();
//! f.clause([a, b]);
//! f.clause([!a, b]);
//! let model = f.solve().model().unwrap().to_vec();
//! assert!(model[b.var().index()]);
//! ```

#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod lit;
pub mod proof;
pub mod reference;
pub mod solver;

pub use cnf::CnfBuilder;
pub use lit::{LBool, Lit, Var};
pub use proof::ProofEvent;
#[cfg(feature = "baseline-solver")]
pub use reference::Solver;
pub use solver::{SolveResult, SolverStats};
#[cfg(not(feature = "baseline-solver"))]
pub use solver::Solver;
