//! DRAT-style proof events emitted by the solvers while they run.
//!
//! When proof logging is enabled ([`crate::Solver::set_proof_logging`]),
//! a solver records every clause that enters or leaves its database as a
//! content-based event — literal vectors, never arena offsets, so the log
//! survives arena compaction and clause relocation unchanged:
//!
//! * [`ProofEvent::Input`] — an original clause as stored by `add_clause`
//!   (sorted, deduplicated, tautologies dropped), *before* root-level
//!   simplification strips falsified literals. The input events of a log
//!   therefore reconstruct the problem CNF, making a certificate built
//!   from the log self-contained.
//! * [`ProofEvent::Add`] — a deduced clause: a first-UIP learnt clause,
//!   or an imported pool lemma that passed the in-solver reverse-unit-
//!   propagation gate (see `import_learnts`). Every added clause is RUP
//!   with respect to the clauses alive at that point in the log, which is
//!   exactly what an independent checker re-verifies.
//! * [`ProofEvent::Delete`] — a clause removed by `simplify` or
//!   `reduce_db`, logged with its stored literal content.
//!
//! The log is cumulative over the solver's whole life: re-entrant
//! `solve_with_assumptions` calls append to it, so a certificate for the
//! n-th query is the log prefix at that query plus a per-query trailer
//! (the failed-assumption core as a RUP clause, the assumptions, and the
//! empty clause). Building that trailer is the caller's job — the solver
//! only reports events and [`crate::Solver::failed_assumptions`].

use crate::lit::Lit;

/// One clause-level event of a solver's proof log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofEvent {
    /// An original problem clause (sorted, deduplicated).
    Input(Vec<Lit>),
    /// A deduced clause, RUP over everything alive before it.
    Add(Vec<Lit>),
    /// A clause removed from the database (content as stored).
    Delete(Vec<Lit>),
}

impl ProofEvent {
    /// The event's literal payload.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofEvent::Input(l) | ProofEvent::Add(l) | ProofEvent::Delete(l) => l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn event_payload_is_uniform() {
        let l = vec![Var(0).positive(), Var(1).negative()];
        for e in [
            ProofEvent::Input(l.clone()),
            ProofEvent::Add(l.clone()),
            ProofEvent::Delete(l.clone()),
        ] {
            assert_eq!(e.lits(), &l[..]);
        }
    }
}
